//! Slab-backed TCAM storage: one contiguous bit-plane arena for a whole
//! chunk of PEs, with word-parallel kernels that process 64 PEs per ALU op.
//!
//! [`crate::array::TcamArray`] keeps each column's `is_zero`/`is_one`
//! row-blocks in their own `Vec<u64>`, so a machine of 1024 PEs × 256
//! columns owns ~half a million tiny heap allocations and a search-plan
//! column step pays a pointer chase per column per PE. Real CAM
//! accelerators are banked arrays swept in lockstep; [`TcamSlab`] gives the
//! simulator the same structure-of-arrays shape, with the innermost
//! dimension **PE-major**:
//!
//! * Cell state lives in two flat arenas indexed `[col][row][pe_word]` —
//!   bit `p` of a plane word is PE `p`'s bit for that `(row, col)` cell, so
//!   one 64-bit AND/OR processes the same cell of 64 PEs at once and a
//!   search-plan column step is a single linear sweep over one contiguous
//!   plane covering the whole chunk.
//! * Tags (and the encoder latch and data registers of higher layers) live
//!   in a matching [`TagSlab`] bit-plane indexed `[row][pe_word]` — exactly
//!   the layout of one column's plane, so search output lands with a
//!   straight `zip` and no per-PE dispatch.
//! * Wear is a flat `[col][pe]` table, so the per-column write pulse
//!   accounting of a multi-PE write is one contiguous increment sweep.
//!
//! Kernels take a *selection mask* (`sel: Option<&[u64]>`, one word per 64
//! PEs) instead of a contiguous `lo..hi` PE range: `None` means every PE of
//! the chunk and keeps all masking off the hot loops, `Some` blends results
//! into the selected lanes only, so ragged active-PE sets cost one extra
//! AND per word instead of a per-PE dispatch.
//!
//! Bits at PE positions `>= pes` in the last word of each plane row are
//! **always zero** — in the arenas, in [`TagSlab`] planes, and in every
//! `sel` mask. That invariant is what lets the write kernels run mask-free:
//! tag padding is zero, so padded lanes never program a cell.
//!
//! The fused kernels ([`TcamSlab::search_plan_multi_into`],
//! [`write_column_multi`](TcamSlab::write_column_multi),
//! [`copy_column_multi`](TcamSlab::copy_column_multi),
//! [`write_encoded_multi`](TcamSlab::write_encoded_multi), and the
//! single-sweep search→write kernels
//! [`search_write_multi`](TcamSlab::search_write_multi) /
//! [`search_narrow_multi`](TcamSlab::search_narrow_multi) behind the trace
//! peephole's fused micro-ops) are bit-identical to looping the
//! corresponding [`TcamArray`] kernel over per-PE objects (property-tested
//! in `tests/slab_properties.rs`), and
//! [`from_arrays`](TcamSlab::from_arrays) / [`to_arrays`](TcamSlab::to_arrays)
//! convert losslessly in both directions, wear included. Byte images keep
//! the historical per-PE wire layout (`[col][pe][block]`), converted at the
//! encode/decode boundary by the tile transposes in `crate::plane`.

use crate::array::TcamArray;
use crate::bit::{KeyBit, TernaryBit};
use crate::fault::{FaultError, FaultModel, FaultState, SlabFaultState};
use crate::plane;
use crate::sweep;
use crate::tags::TagVector;
use bytes::{Buf, BufMut, BytesMut};
use serde::{Deserialize, Serialize};

const EMPTY: &[u64] = &[];

/// Conservative per-column summary of one bit-line plane, maintained by
/// every mutating kernel and consulted by the match dispatch to skip
/// whole plane sweeps:
///
/// * `AllZero` — the plane provably has no set bit, so as a *miss plane*
///   it rules nothing out and the kernels skip loading it entirely.
/// * `Full` — every live lane is provably set, so any plan with this miss
///   plane matches nothing and the whole search (and its tag-driven
///   writes) collapses to "clear the tags".
/// * `Unknown` — no proof either way; load the plane.
///
/// Transitions only ever *lose* precision (conservative toward
/// `Unknown`), so a summary never claims a state the plane isn't in. The
/// payoff is workload sparsity: a fresh slab stores `0` everywhere
/// (`zeros` planes `Full`, `ones` planes `AllZero`), so searches over
/// never-written columns never touch their arenas at all.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
enum PlaneSummary {
    AllZero,
    Full,
    Unknown,
}

impl PlaneSummary {
    /// Summary after OR-ing an (unknown, live-masked) tag plane in.
    fn after_set(self) -> Self {
        match self {
            // A full plane stays full under `|=`.
            PlaneSummary::Full => PlaneSummary::Full,
            _ => PlaneSummary::Unknown,
        }
    }

    /// Summary after AND-ing an (unknown) tag plane's complement in.
    fn after_clear(self) -> Self {
        match self {
            // An empty plane stays empty under `&= !t`.
            PlaneSummary::AllZero => PlaneSummary::AllZero,
            _ => PlaneSummary::Unknown,
        }
    }
}

/// Exact summary of a plane: all-zero, exactly the live mask, or neither.
fn summarize_plane(p: &[u64], live: &[u64]) -> PlaneSummary {
    if p.iter().all(|&w| w == 0) {
        PlaneSummary::AllZero
    } else if p == live {
        PlaneSummary::Full
    } else {
        PlaneSummary::Unknown
    }
}

/// Build the selection mask for the contiguous PE range `lo..hi` of a
/// `pes`-wide slab: `pes.div_ceil(64)` words with exactly bits
/// `lo..hi` set. Pass `None` instead when the range covers every PE — the
/// kernels' mask-free path.
pub fn pe_range_mask(pes: usize, lo: usize, hi: usize) -> Vec<u64> {
    assert!(lo <= hi && hi <= pes, "PE range out of bounds");
    let mut m = vec![0u64; pes.div_ceil(64)];
    for pe in lo..hi {
        m[pe / 64] |= 1u64 << (pe % 64);
    }
    m
}

/// A contiguous multi-PE tag bit-plane: the slab counterpart of one
/// [`TagVector`] per PE.
///
/// Words are laid out `[row][pe_word]`, matching the per-column planes of
/// [`TcamSlab`], so slab search kernels write straight into this arena.
/// Bits at PE positions `>= pes` in each row's last word are always zero
/// (the padding invariant of the [module docs](self)).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TagSlab {
    pes: usize,
    rows: usize,
    /// 64-PE words per row.
    pw: usize,
    blocks: Vec<u64>,
    /// Monotonic write-tracking counter; see [`version`](Self::version).
    version: u64,
}

/// Equality covers geometry and plane contents only — the write-tracking
/// [`version`](TagSlab::version) counter is bookkeeping, not state.
impl PartialEq for TagSlab {
    fn eq(&self, other: &Self) -> bool {
        (self.pes, self.rows, self.pw, &self.blocks)
            == (other.pes, other.rows, other.pw, &other.blocks)
    }
}

impl Eq for TagSlab {}

impl TagSlab {
    /// All-clear tags for `pes` PEs of `rows` rows each.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn zeros(pes: usize, rows: usize) -> Self {
        assert!(pes > 0 && rows > 0, "tag slab dimensions must be non-zero");
        let pw = pes.div_ceil(64);
        TagSlab {
            pes,
            rows,
            pw,
            blocks: vec![0; rows * pw],
            version: 0,
        }
    }

    /// Monotonic write-tracking counter: bumped by every method that can
    /// change the plane contents (conservatively — a bump does not prove a
    /// bit actually flipped). Checkpointing compares versions to skip clean
    /// chunks; the counter is excluded from equality and from the byte
    /// image.
    pub fn version(&self) -> u64 {
        self.version
    }

    fn touch(&mut self) {
        self.version = self.version.wrapping_add(1);
    }

    /// Clear every tag bit, restoring the all-clear state of
    /// [`zeros`](Self::zeros) without reallocating the plane.
    pub fn clear(&mut self) {
        self.touch();
        self.blocks.fill(0);
    }

    /// Number of PEs in the slab.
    pub fn pes(&self) -> usize {
        self.pes
    }

    /// Rows per PE.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// 64-PE words per row of the plane.
    pub fn pe_words(&self) -> usize {
        self.pw
    }

    /// 64-row blocks per PE of the transposed (per-PE) layout — the buffer
    /// size [`pe_blocks_into`](Self::pe_blocks_into) /
    /// [`set_pe_blocks`](Self::set_pe_blocks) gather and scatter.
    pub fn blocks_per_pe(&self) -> usize {
        self.rows.div_ceil(64)
    }

    /// The whole `[row][pe_word]` plane.
    pub fn words(&self) -> &[u64] {
        &self.blocks
    }

    /// The whole `[row][pe_word]` plane, mutable. Bits at PE positions
    /// `>= pes` must be left zero.
    pub fn words_mut(&mut self) -> &mut [u64] {
        self.touch();
        &mut self.blocks
    }

    /// Multi-PE accumulate: OR `other`'s plane into this one, restricted to
    /// the PEs selected by `sel` (`None` = all) — the accumulation unit of
    /// every selected PE, fused into one linear sweep.
    ///
    /// # Panics
    ///
    /// Panics if the slabs' geometries differ.
    pub fn accumulate_from(&mut self, other: &TagSlab, sel: Option<&[u64]>) {
        assert_eq!(
            (self.pes, self.rows),
            (other.pes, other.rows),
            "tag slab geometry mismatch"
        );
        self.touch();
        match sel {
            None => {
                for (a, b) in self.blocks.iter_mut().zip(&other.blocks) {
                    *a |= b;
                }
            }
            Some(m) => {
                let pw = self.pw;
                for (i, (a, b)) in self.blocks.iter_mut().zip(&other.blocks).enumerate() {
                    *a |= b & m[i % pw];
                }
            }
        }
    }

    /// Multi-PE latch/copy: overwrite this plane's selected lanes with
    /// `other`'s (`sel = None` is one `memcpy` for the whole plane).
    ///
    /// # Panics
    ///
    /// Panics if the slabs' geometries differ.
    pub fn copy_from_masked(&mut self, other: &TagSlab, sel: Option<&[u64]>) {
        assert_eq!(
            (self.pes, self.rows),
            (other.pes, other.rows),
            "tag slab geometry mismatch"
        );
        self.touch();
        match sel {
            None => self.blocks.copy_from_slice(&other.blocks),
            Some(m) => {
                let pw = self.pw;
                for (i, (a, b)) in self.blocks.iter_mut().zip(&other.blocks).enumerate() {
                    let mm = m[i % pw];
                    *a = (*a & !mm) | (b & mm);
                }
            }
        }
    }

    /// Broadcast one [`TagVector`] into every PE selected by `sel`
    /// (`None` = all) — the slab form of writing the same register value to
    /// a whole active set.
    ///
    /// # Panics
    ///
    /// Panics if the vector's length differs from the slab's row count.
    pub fn broadcast(&mut self, tags: &TagVector, sel: Option<&[u64]>) {
        assert_eq!(tags.len(), self.rows, "tag length mismatch");
        self.touch();
        let pw = self.pw;
        let tail = if !self.pes.is_multiple_of(64) {
            (1u64 << (self.pes % 64)) - 1
        } else {
            !0
        };
        for row in 0..self.rows {
            let bit = tags.get(row);
            let w = &mut self.blocks[row * pw..(row + 1) * pw];
            match sel {
                Some(m) => {
                    if bit {
                        for (d, &mm) in w.iter_mut().zip(m) {
                            *d |= mm;
                        }
                    } else {
                        for (d, &mm) in w.iter_mut().zip(m) {
                            *d &= !mm;
                        }
                    }
                }
                None => {
                    if bit {
                        for (wi, d) in w.iter_mut().enumerate() {
                            *d = if wi + 1 < pw { !0 } else { tail };
                        }
                    } else {
                        w.fill(0);
                    }
                }
            }
        }
    }

    /// Population count of one PE's tags (the `Count` reduction) — an
    /// O(rows) column gather in the plane layout.
    pub fn count(&self, pe: usize) -> usize {
        assert!(pe < self.pes, "PE out of range");
        let (w, s) = (pe / 64, pe % 64);
        (0..self.rows)
            .filter(|&r| self.blocks[r * self.pw + w] >> s & 1 != 0)
            .count()
    }

    /// First tagged row of one PE (the `Index` priority encoder).
    pub fn first_index(&self, pe: usize) -> Option<usize> {
        assert!(pe < self.pes, "PE out of range");
        let (w, s) = (pe / 64, pe % 64);
        (0..self.rows).find(|&r| self.blocks[r * self.pw + w] >> s & 1 != 0)
    }

    /// Gather one PE's tags into per-PE 64-row blocks
    /// ([`blocks_per_pe`](Self::blocks_per_pe) words; padding bits come out
    /// zero).
    pub fn pe_blocks_into(&self, pe: usize, out: &mut [u64]) {
        assert!(pe < self.pes, "PE out of range");
        assert_eq!(out.len(), self.blocks_per_pe(), "block count mismatch");
        out.fill(0);
        let (w, s) = (pe / 64, pe % 64);
        for row in 0..self.rows {
            out[row / 64] |= (self.blocks[row * self.pw + w] >> s & 1) << (row % 64);
        }
    }

    /// Scatter per-PE 64-row blocks into one PE's plane lane — the inverse
    /// of [`pe_blocks_into`](Self::pe_blocks_into). Bits at row positions
    /// `>= rows` in the last block are ignored.
    pub fn set_pe_blocks(&mut self, pe: usize, blocks: &[u64]) {
        assert!(pe < self.pes, "PE out of range");
        assert_eq!(blocks.len(), self.blocks_per_pe(), "block count mismatch");
        self.touch();
        let (w, s) = (pe / 64, pe % 64);
        for row in 0..self.rows {
            let bit = blocks[row / 64] >> (row % 64) & 1;
            let d = &mut self.blocks[row * self.pw + w];
            *d = (*d & !(1u64 << s)) | (bit << s);
        }
    }

    /// Copy one PE's tags out as a standalone [`TagVector`].
    pub fn to_tagvector(&self, pe: usize) -> TagVector {
        let mut t = TagVector::zeros(self.rows);
        self.pe_blocks_into(pe, t.blocks_mut());
        t
    }

    /// Overwrite one PE's tags from a [`TagVector`].
    ///
    /// # Panics
    ///
    /// Panics if the vector's length differs from the slab's row count.
    pub fn set_pe(&mut self, pe: usize, tags: &TagVector) {
        assert_eq!(tags.len(), self.rows, "tag length mismatch");
        self.set_pe_blocks(pe, tags.blocks());
    }

    /// Version byte of the [`to_bytes`](Self::to_bytes) image format.
    pub const FORMAT_VERSION: u8 = 1;

    /// Serialize to a versioned byte image (header + per-PE `[pe][block]`
    /// row-blocks as big-endian words — the historical wire layout, so
    /// images written by the pre-bit-plane slab decode unchanged). The
    /// in-memory plane is transposed at this boundary.
    ///
    /// # Panics
    ///
    /// Panics if a dimension exceeds `u16::MAX`.
    pub fn to_bytes(&self) -> Vec<u8> {
        for dim in [self.pes, self.rows] {
            assert!(dim <= u16::MAX as usize, "dimension exceeds image format");
        }
        let pm = plane::plane_to_pe_major(&self.blocks, self.rows, self.pes);
        let mut buf = BytesMut::with_capacity(5 + pm.len() * 8);
        buf.put_u8(Self::FORMAT_VERSION);
        buf.put_u16(self.pes as u16);
        buf.put_u16(self.rows as u16);
        for w in &pm {
            buf.put_slice(&w.to_be_bytes());
        }
        buf.to_vec()
    }

    /// Deserialize a [`to_bytes`](Self::to_bytes) image.
    ///
    /// # Errors
    ///
    /// Returns a [`SlabDecodeError`] on truncation, version or geometry
    /// problems, trailing bytes, or set bits in a PE's row padding (the
    /// always-zero invariant the kernels rely on).
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, SlabDecodeError> {
        let mut buf = bytes;
        if buf.remaining() < 5 {
            return Err(SlabDecodeError::Truncated);
        }
        let version = buf.get_u8();
        if version != Self::FORMAT_VERSION {
            return Err(SlabDecodeError::BadVersion(version));
        }
        let pes = buf.get_u16() as usize;
        let rows = buf.get_u16() as usize;
        if pes == 0 || rows == 0 {
            return Err(SlabDecodeError::BadGeometry);
        }
        let bpp = rows.div_ceil(64);
        if buf.remaining() < pes * bpp * 8 {
            return Err(SlabDecodeError::Truncated);
        }
        let mut pm = Vec::with_capacity(pes * bpp);
        let mut word = [0u8; 8];
        for _ in 0..pes * bpp {
            buf.copy_to_slice(&mut word);
            pm.push(u64::from_be_bytes(word));
        }
        if buf.has_remaining() {
            return Err(SlabDecodeError::TrailingBytes(buf.remaining()));
        }
        let tail = rows % 64;
        if tail != 0 {
            let pad = !((1u64 << tail) - 1);
            for pe in 0..pes {
                if pm[pe * bpp + bpp - 1] & pad != 0 {
                    return Err(SlabDecodeError::BadGeometry);
                }
            }
        }
        Ok(TagSlab {
            pes,
            rows,
            pw: pes.div_ceil(64),
            blocks: plane::pe_major_to_plane(&pm, rows, pes),
            version: 0,
        })
    }
}

/// Failure modes of [`TcamSlab::from_bytes`] and [`TagSlab::from_bytes`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SlabDecodeError {
    /// The buffer is shorter than the header or the payload its header
    /// promises.
    Truncated,
    /// The version byte is not [`TcamSlab::FORMAT_VERSION`].
    BadVersion(u8),
    /// A header dimension is zero.
    BadGeometry,
    /// Bytes remain after the payload.
    TrailingBytes(usize),
}

impl std::fmt::Display for SlabDecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SlabDecodeError::Truncated => write!(f, "slab image truncated"),
            SlabDecodeError::BadVersion(v) => write!(f, "unknown slab format version {v}"),
            SlabDecodeError::BadGeometry => write!(f, "slab header has a zero dimension"),
            SlabDecodeError::TrailingBytes(n) => write!(f, "{n} trailing bytes after slab image"),
        }
    }
}

impl std::error::Error for SlabDecodeError {}

/// Whole-plane match core for one plan pre-resolved to exactly `K`
/// *miss planes* — bit-line planes whose set bits rule a lane out.
/// A `Zero` entry misses where the cell stores one (`ones[col]`), a `One`
/// entry where it stores zero (`zeros[col]`), and a `Z` entry contributes
/// **two** planes (`zeros[col]` and `ones[col]`); match semantics reduce
/// to `out = base? & Π !pₖ`, so every plane is loaded exactly once
/// (the old pair encoding loaded `One`/`Zero` planes twice).
/// Monomorphized per `K` so the whole chain is one branch-free vector
/// loop. Returns the OR of every output word — `0` means the search
/// matched nothing, letting callers skip the write RMWs entirely.
fn match_plane<const K: usize>(out: &mut [u64], base: Option<&[u64]>, e: &[&[u64]; K]) -> u64 {
    let n = out.len();
    let p: [&[u64]; K] = std::array::from_fn(|k| &e[k][..n]);
    let mut any = 0u64;
    match base {
        None => {
            for (i, d) in out.iter_mut().enumerate() {
                let mut m = !0u64;
                for pk in &p {
                    m &= !pk[i];
                }
                *d = m;
                any |= m;
            }
        }
        Some(b) => {
            let b = &b[..n];
            for (i, d) in out.iter_mut().enumerate() {
                let mut m = b[i];
                for pk in &p {
                    m &= !pk[i];
                }
                *d = m;
                any |= m;
            }
        }
    }
    any
}

/// Two-plan variant of [`match_plane`]: `out = base? & (q₁ | q₂)` with
/// `qᵢ` the miss-plane product chain of plan `i` — one fused pass for the
/// OR of two searches, the common shape of the compiled arithmetic
/// micro-code. Returns the OR of every output word, like [`match_plane`].
fn match2_plane<const K1: usize, const K2: usize>(
    out: &mut [u64],
    base: Option<&[u64]>,
    e1: &[&[u64]; K1],
    e2: &[&[u64]; K2],
) -> u64 {
    let n = out.len();
    let p1: [&[u64]; K1] = std::array::from_fn(|k| &e1[k][..n]);
    let p2: [&[u64]; K2] = std::array::from_fn(|k| &e2[k][..n]);
    let mut any = 0u64;
    match base {
        None => {
            for (i, d) in out.iter_mut().enumerate() {
                let mut q1 = !0u64;
                for pk in &p1 {
                    q1 &= !pk[i];
                }
                let mut q2 = !0u64;
                for pk in &p2 {
                    q2 &= !pk[i];
                }
                let m = q1 | q2;
                *d = m;
                any |= m;
            }
        }
        Some(bm) => {
            let bm = &bm[..n];
            for (i, d) in out.iter_mut().enumerate() {
                let mut q1 = !0u64;
                for pk in &p1 {
                    q1 &= !pk[i];
                }
                let mut q2 = !0u64;
                for pk in &p2 {
                    q2 &= !pk[i];
                }
                let m = bm[i] & (q1 | q2);
                *d = m;
                any |= m;
            }
        }
    }
    any
}

/// Resolve up to two plans into their miss-plane slices over the window
/// `[t0..t0 + n)` of each referenced column plane: `Zero` contributes
/// `ones[col]`, `One` contributes `zeros[col]`, `Z` both (see
/// [`match_plane`]). Masked and out-of-range entries are skipped. Fills
/// `bufs`/`ks` in the form [`match_dispatch`] consumes; callers must have
/// checked the four-plane cap per plan beforehand.
///
/// The per-column [`PlaneSummary`] caches prune the resolution: an
/// `AllZero` miss plane rules nothing out and is dropped from the product
/// chain (one less plane streamed per word), while a `Full` miss plane
/// (`plane == live`) vetoes every live lane — the whole plan is *dead*
/// and matches nothing. Dead plans stop resolving immediately; the
/// returned flags tell [`match_dispatch`] which plans collapsed.
#[allow(clippy::too_many_arguments)]
fn collect_miss_planes<'a>(
    plans: &[&[(usize, KeyBit)]],
    zeros: &'a [u64],
    ones: &'a [u64],
    zsum: &[PlaneSummary],
    osum: &[PlaneSummary],
    cols: usize,
    plane: usize,
    t0: usize,
    n: usize,
    bufs: &mut [[&'a [u64]; 4]; 2],
    ks: &mut [usize; 2],
) -> [bool; 2] {
    let mut dead = [false; 2];
    for (pi, plan) in plans.iter().enumerate() {
        'plan: for &(c, bit) in plan.iter() {
            if c >= cols || bit == KeyBit::Masked {
                continue;
            }
            let off = c * plane + t0;
            // (miss-plane slice, its summary) per plan entry.
            let wants: [Option<(&[u64], PlaneSummary)>; 2] = match bit {
                KeyBit::Zero => [Some((&ones[off..off + n], osum[c])), None],
                KeyBit::One => [Some((&zeros[off..off + n], zsum[c])), None],
                KeyBit::Z => [
                    Some((&zeros[off..off + n], zsum[c])),
                    Some((&ones[off..off + n], osum[c])),
                ],
                KeyBit::Masked => unreachable!("filtered above"),
            };
            for (p, s) in wants.into_iter().flatten() {
                match s {
                    // Empty miss plane: `& !0` contributes nothing.
                    PlaneSummary::AllZero => {}
                    // Miss plane covers every live lane: nothing matches.
                    PlaneSummary::Full => {
                        dead[pi] = true;
                        break 'plan;
                    }
                    PlaneSummary::Unknown => {
                        bufs[pi][ks[pi]] = p;
                        ks[pi] += 1;
                    }
                }
            }
        }
    }
    dead
}

/// Single-plan core dispatch of [`match_dispatch`], `k` planes already
/// collected (`k == 0` degenerates to the base mask). Returns the OR of
/// the output words.
fn match_one(out: &mut [u64], base: Option<&[u64]>, e: &[&[u64]; 4], k: usize) -> u64 {
    match k {
        0 => match base {
            Some(b) => {
                out.copy_from_slice(&b[..out.len()]);
                out.iter().fold(0, |a, &w| a | w)
            }
            None => {
                out.fill(!0);
                !0
            }
        },
        1 => match_plane::<1>(out, base, (&e[..1]).try_into().unwrap()),
        2 => match_plane::<2>(out, base, (&e[..2]).try_into().unwrap()),
        3 => match_plane::<3>(out, base, (&e[..3]).try_into().unwrap()),
        4 => match_plane::<4>(out, base, (&e[..4]).try_into().unwrap()),
        _ => unreachable!("fast path caps plans at four miss planes"),
    }
}

/// Dispatch one or two collected plans onto the monomorphic match cores:
/// `out = base? & (q₁ | q₂)` with `qᵢ` plan `i`'s miss-plane product. An
/// empty plan (`kᵢ == 0`) matches every live lane, so the whole result
/// degenerates to the base mask (all-ones when `base` is `None`); a
/// *dead* plan (a [`PlaneSummary::Full`] miss plane, see
/// [`collect_miss_planes`]) matches nothing and drops out of the OR.
/// Returns the OR of the output words — `0` when the step matched no
/// lane at all.
fn match_dispatch(
    out: &mut [u64],
    base: Option<&[u64]>,
    bufs: &[[&[u64]; 4]; 2],
    ks: [usize; 2],
    dead: [bool; 2],
    nplans: usize,
) -> u64 {
    let (e1, k1) = (&bufs[0], ks[0]);
    if nplans == 1 {
        if dead[0] {
            out.fill(0);
            return 0;
        }
        match_one(out, base, e1, k1)
    } else {
        let (e2, k2) = (&bufs[1], ks[1]);
        match (dead[0], dead[1]) {
            (true, true) => {
                out.fill(0);
                0
            }
            (true, false) => match_one(out, base, e2, k2),
            (false, true) => match_one(out, base, e1, k1),
            (false, false) if k1 == 0 || k2 == 0 => {
                // An empty plan matches every live row, so the OR of the
                // pair is the live set regardless of the other plan.
                match_one(out, base, e1, 0)
            }
            (false, false) => {
                macro_rules! m2 {
                    ($(($ka:literal, $kb:literal)),+ $(,)?) => {
                        match (k1, k2) {
                            $(($ka, $kb) => match2_plane::<$ka, $kb>(
                                out,
                                base,
                                (&e1[..$ka]).try_into().unwrap(),
                                (&e2[..$kb]).try_into().unwrap(),
                            ),)+
                            _ => unreachable!("fast path caps plans at four miss planes"),
                        }
                    };
                }
                m2!(
                    (1, 1),
                    (1, 2),
                    (1, 3),
                    (1, 4),
                    (2, 1),
                    (2, 2),
                    (2, 3),
                    (2, 4),
                    (3, 1),
                    (3, 2),
                    (3, 3),
                    (3, 4),
                    (4, 1),
                    (4, 2),
                    (4, 3),
                    (4, 4),
                )
            }
        }
    }
}

/// Program `value` into one window of a column's bit-planes under `tags` —
/// the raw store loop of [`TcamSlab::write_plane`], factored out so the
/// tiled segment executor can drive it per cache-resident window.
fn write_plane_seg(zeros: &mut [u64], ones: &mut [u64], tags: &[u64], value: TernaryBit) {
    match value {
        TernaryBit::Zero => {
            for ((z, o), t) in zeros.iter_mut().zip(ones.iter_mut()).zip(tags) {
                *z |= t;
                *o &= !t;
            }
        }
        TernaryBit::One => {
            for ((z, o), t) in zeros.iter_mut().zip(ones.iter_mut()).zip(tags) {
                *o |= t;
                *z &= !t;
            }
        }
        TernaryBit::X => {
            for ((z, o), t) in zeros.iter_mut().zip(ones.iter_mut()).zip(tags) {
                *z &= !t;
                *o &= !t;
            }
        }
    }
}

/// One fused search/write step of a [`TcamSlab::sweep_program`] batch —
/// the same shape as one [`TcamSlab::search_write_multi`] call: OR the
/// matches of `plans` (into the existing tags when `acc`), then program
/// every `(column, value)` of `writes` under the resulting tags.
#[derive(Debug, Clone, Copy)]
pub struct SweepOp<'a> {
    /// Search plans whose matches are OR-ed together; empty with
    /// `acc = false` clears the tags (write-under-current-tags steps use
    /// empty plans with `acc = true`).
    pub plans: &'a [&'a [(usize, KeyBit)]],
    /// Accumulate into the existing tag plane instead of replacing it.
    pub acc: bool,
    /// Columns programmed under the resulting tags, in order.
    pub writes: &'a [(usize, TernaryBit)],
}

/// One contiguous arena holding the `is_zero`/`is_one` bit-planes of every
/// PE in a chunk, laid out `[col][row][pe_word]` (see the
/// [module docs](self)).
///
/// All cells initialize to `0`, matching [`TcamArray::new`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TcamSlab {
    pes: usize,
    rows: usize,
    cols: usize,
    /// 64-PE words per plane row.
    pw: usize,
    /// Rows storing `0`, indexed `[col][row][pe_word]`.
    zeros: Vec<u64>,
    /// Rows storing `1`, indexed `[col][row][pe_word]`.
    ones: Vec<u64>,
    /// Live-PE mask, one plane row (`pw` words, bits `0..pes` set).
    pe_mask: Vec<u64>,
    /// [`pe_mask`](Self::pe_mask) replicated per row (`rows * pw` words) —
    /// the mask shape the whole-plane sweeps consume without a modulo.
    live: Vec<u64>,
    /// Associative-write pulses, indexed `[col][pe]`.
    wear: Vec<u64>,
    /// Device-fault bookkeeping; `None` (the default) is the ideal slab and
    /// keeps every kernel on its zero-fault path.
    fault: Option<Box<SlabFaultState>>,
    /// Per-column [`PlaneSummary`] of the `zeros` planes (what a `One`
    /// plan entry loads as its miss plane). Conservative cache state —
    /// excluded from equality and byte images, since two logically equal
    /// slabs can carry different summaries.
    zsum: Vec<PlaneSummary>,
    /// Per-column [`PlaneSummary`] of the `ones` planes (`Zero` entries).
    osum: Vec<PlaneSummary>,
    /// Monotonic write-tracking counter; see [`version`](Self::version).
    version: u64,
}

impl PartialEq for TcamSlab {
    fn eq(&self, other: &Self) -> bool {
        // The `*_any` summaries are cache state, not logical state: a
        // write under all-zero tags flags a plane that is still empty, so
        // equal storage can carry different summaries.
        (
            self.pes,
            self.rows,
            self.cols,
            self.pw,
            &self.zeros,
            &self.ones,
            &self.pe_mask,
            &self.live,
            &self.wear,
            &self.fault,
        ) == (
            other.pes,
            other.rows,
            other.cols,
            other.pw,
            &other.zeros,
            &other.ones,
            &other.pe_mask,
            &other.live,
            &other.wear,
            &other.fault,
        )
    }
}

impl Eq for TcamSlab {}

impl TcamSlab {
    /// Version byte of the [`to_bytes`](Self::to_bytes) image format
    /// without fault state (the original format, still decoded).
    pub const FORMAT_VERSION: u8 = 1;

    /// Version byte of the [`to_bytes`](Self::to_bytes) image format with
    /// a fault-bookkeeping payload appended.
    pub const FORMAT_VERSION_FAULT: u8 = 2;

    /// A slab of `pes` arrays of `rows` × `cols`, all cells `0`.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn new(pes: usize, rows: usize, cols: usize) -> Self {
        assert!(
            pes > 0 && rows > 0 && cols > 0,
            "slab dimensions must be non-zero"
        );
        let pw = pes.div_ceil(64);
        let pe_mask = plane::pe_mask(pes);
        let mut live = Vec::with_capacity(rows * pw);
        for _ in 0..rows {
            live.extend_from_slice(&pe_mask);
        }
        let mut zeros = Vec::with_capacity(cols * rows * pw);
        for _ in 0..cols {
            zeros.extend_from_slice(&live);
        }
        TcamSlab {
            pes,
            rows,
            cols,
            pw,
            ones: vec![0; cols * rows * pw],
            zeros,
            pe_mask,
            live,
            wear: vec![0; cols * pes],
            fault: None,
            // All cells store `0`: every `zeros` plane is exactly the live
            // mask, every `ones` plane empty.
            zsum: vec![PlaneSummary::Full; cols],
            osum: vec![PlaneSummary::AllZero; cols],
            version: 0,
        }
    }

    /// Monotonic write-tracking counter: bumped by every method that can
    /// change serialized state (storage, wear, or fault bookkeeping) —
    /// conservatively, so a bump does not prove a bit actually flipped.
    /// Checkpointing compares versions to skip clean chunks; the counter is
    /// excluded from equality and from the byte image.
    pub fn version(&self) -> u64 {
        self.version
    }

    fn touch(&mut self) {
        self.version = self.version.wrapping_add(1);
    }

    /// Reset the slab to its as-constructed state — every cell `0`, wear
    /// cleared — without reallocating the arenas. If a fault model is
    /// attached it is re-seeded from scratch (same model, same global PE
    /// base, same spare budget): remaps, retirements, the latched failure,
    /// and the epoch all return to their initial values, and the initial
    /// devices' stuck bits are re-enforced on the cleared storage. The
    /// result is indistinguishable from a fresh [`new`](Self::new) +
    /// [`attach_fault`](Self::attach_fault) slab — the serving layer's
    /// scrub-on-assign isolation guarantee rests on this.
    pub fn reset(&mut self) {
        self.touch();
        self.ones.fill(0);
        let plane = self.rows * self.pw;
        for c in 0..self.cols {
            self.zeros[c * plane..(c + 1) * plane].copy_from_slice(&self.live);
        }
        self.wear.fill(0);
        self.zsum.fill(PlaneSummary::Full);
        self.osum.fill(PlaneSummary::AllZero);
        if let Some(f) = self.fault.take() {
            self.attach_fault(f.model, f.spares, f.pe0);
        }
    }

    /// Conservatively age column `col`'s plane summaries for a tag-driven
    /// write of `value` (the transition table of [`PlaneSummary`]). Every
    /// plane-mutating kernel must route its columns through here (or
    /// [`recompute_summaries`](Self::recompute_summaries)) before or after
    /// the mutation — the summaries must never claim more than the arena
    /// holds.
    fn note_write_summary(&mut self, col: usize, value: TernaryBit) {
        match value {
            TernaryBit::Zero => {
                self.zsum[col] = self.zsum[col].after_set();
                self.osum[col] = self.osum[col].after_clear();
            }
            TernaryBit::One => {
                self.osum[col] = self.osum[col].after_set();
                self.zsum[col] = self.zsum[col].after_clear();
            }
            TernaryBit::X => {
                self.zsum[col] = self.zsum[col].after_clear();
                self.osum[col] = self.osum[col].after_clear();
            }
        }
    }

    /// Rebuild every plane summary exactly by scanning the arenas — used
    /// after bulk loads (array imports, byte-image decode) where the
    /// conservative per-write transitions would discard all precision.
    fn recompute_summaries(&mut self) {
        let plane = self.rows * self.pw;
        for c in 0..self.cols {
            self.zsum[c] = summarize_plane(&self.zeros[c * plane..(c + 1) * plane], &self.live);
            self.osum[c] = summarize_plane(&self.ones[c * plane..(c + 1) * plane], &self.live);
        }
    }

    /// Drop every plane summary to `Unknown` — the safe state after a
    /// mutation whose effect on the planes is not tracked per column
    /// (fault attach, stuck-bit enforcement, spare remaps).
    fn invalidate_summaries(&mut self) {
        self.zsum.fill(PlaneSummary::Unknown);
        self.osum.fill(PlaneSummary::Unknown);
    }

    /// Attach a device-fault model: slot `s` of this slab becomes global
    /// PE `pe0 + s`, each with `spares` spare column devices. Stuck bits of
    /// the initial devices are enforced on the storage immediately.
    pub fn attach_fault(&mut self, model: FaultModel, spares: usize, pe0: usize) {
        self.touch();
        self.fault = Some(Box::new(SlabFaultState::new(
            model, pe0, spares, self.pes, self.rows, self.cols,
        )));
        self.invalidate_summaries();
        for col in 0..self.cols {
            self.enforce_stuck_col(col, None);
        }
    }

    /// The fault bookkeeping, if a model is attached.
    pub fn fault(&self) -> Option<&SlabFaultState> {
        self.fault.as_deref()
    }

    /// Start a new run epoch across every PE (re-derives the transient
    /// search-miss sets). No-op without an attached fault model.
    pub fn advance_epoch(&mut self) {
        if let Some(f) = &mut self.fault {
            f.advance_epoch();
            self.version = self.version.wrapping_add(1);
        }
    }

    /// End-of-run endurance service for every PE of the slab, slots in
    /// ascending order and columns in ascending order within a slot — the
    /// same global order [`TcamArray::service_endurance`] produces when
    /// driven per PE. Retirement resets the column's wear and enforces the
    /// spare device's stuck bits on the copied data.
    ///
    /// # Errors
    ///
    /// [`FaultError::SparesExhausted`] at the first column that cannot be
    /// retired (global PE index); the failure is latched for fail-fast.
    pub fn service_endurance(&mut self) -> Result<(), FaultError> {
        let Some(limit) = self.fault.as_ref().and_then(|f| f.model.endurance_limit) else {
            return Ok(());
        };
        self.touch();
        let pw = self.pw;
        for pe in 0..self.pes {
            let mut lane: Option<Vec<u64>> = None;
            for col in 0..self.cols {
                let w = self.wear[col * self.pes + pe];
                if w >= limit {
                    self.fault
                        .as_mut()
                        .expect("fault state present")
                        .retire(pe, col, w)?;
                    self.wear[col * self.pes + pe] = 0;
                    let m = lane.get_or_insert_with(|| {
                        let mut v = vec![0u64; pw];
                        v[pe / 64] |= 1u64 << (pe % 64);
                        v
                    });
                    let m = m.clone();
                    self.enforce_stuck_col(col, Some(&m));
                }
            }
        }
        Ok(())
    }

    /// The `[row][pe_word]` mask searches initialize from: the live-PE
    /// mask, minus this epoch's transient misses when a fault model is
    /// attached.
    fn search_base(&self) -> &[u64] {
        match &self.fault {
            Some(f) => &f.search_mask,
            None => &self.live,
        }
    }

    /// Force column `col`'s storage over the selected PEs to agree with
    /// the backing devices' stuck bits. Idempotent; no-op without faults.
    fn enforce_stuck_col(&mut self, col: usize, sel: Option<&[u64]>) {
        let plane = self.rows * self.pw;
        if self.fault.is_none() {
            return;
        }
        // Stuck bits can set or clear either plane arbitrarily.
        self.zsum[col] = PlaneSummary::Unknown;
        self.osum[col] = PlaneSummary::Unknown;
        let Some(f) = &self.fault else { return };
        let s0 = &f.stuck0[col * plane..(col + 1) * plane];
        let s1 = &f.stuck1[col * plane..(col + 1) * plane];
        let zeros = &mut self.zeros[col * plane..(col + 1) * plane];
        let ones = &mut self.ones[col * plane..(col + 1) * plane];
        match sel {
            None => sweep::enforce_stuck(zeros, ones, s0, s1),
            Some(m) => {
                let pw = self.pw;
                for i in 0..plane {
                    let mm = m[i % pw];
                    let a0 = s0[i] & mm;
                    let a1 = s1[i] & mm;
                    let s = a0 | a1;
                    zeros[i] = (zeros[i] & !s) | a0;
                    ones[i] = (ones[i] & !s) | a1;
                }
            }
        }
    }

    /// Number of PEs in the slab.
    pub fn pes(&self) -> usize {
        self.pes
    }

    /// Rows per PE.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Columns per PE.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// 64-PE words per plane row.
    pub fn pe_words(&self) -> usize {
        self.pw
    }

    /// Words per column plane (`rows * pe_words`) — the length of every
    /// tag/latch plane the kernels consume.
    pub fn plane_words(&self) -> usize {
        self.rows * self.pw
    }

    /// Bump write-pulse counters of column `col` for the selected PEs.
    fn note_wear(&mut self, col: usize, sel: Option<&[u64]>) {
        let ws = &mut self.wear[col * self.pes..(col + 1) * self.pes];
        match sel {
            None => {
                for w in ws {
                    *w += 1;
                }
            }
            Some(m) => {
                for (wi, &mw) in m.iter().enumerate() {
                    let mut bits = mw;
                    while bits != 0 {
                        ws[wi * 64 + bits.trailing_zeros() as usize] += 1;
                        bits &= bits - 1;
                    }
                }
            }
        }
    }

    /// Program `value` into column `col` under `tags` for every PE at once
    /// (no wear, no stuck enforcement — the raw store loop).
    fn write_plane(&mut self, col: usize, value: TernaryBit, tags: &[u64]) {
        let plane = self.rows * self.pw;
        self.note_write_summary(col, value);
        let zeros = &mut self.zeros[col * plane..(col + 1) * plane];
        let ones = &mut self.ones[col * plane..(col + 1) * plane];
        write_plane_seg(zeros, ones, &tags[..plane], value);
    }

    /// Read one cell of one PE.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn cell(&self, pe: usize, row: usize, col: usize) -> TernaryBit {
        assert!(
            pe < self.pes && row < self.rows && col < self.cols,
            "cell out of range"
        );
        let idx = col * self.plane_words() + row * self.pw + pe / 64;
        let m = 1u64 << (pe % 64);
        if self.zeros[idx] & m != 0 {
            TernaryBit::Zero
        } else if self.ones[idx] & m != 0 {
            TernaryBit::One
        } else {
            TernaryBit::X
        }
    }

    /// Write one cell directly (host data-load path; no wear).
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn set_cell(&mut self, pe: usize, row: usize, col: usize, value: TernaryBit) {
        assert!(
            pe < self.pes && row < self.rows && col < self.cols,
            "cell out of range"
        );
        let idx = col * self.plane_words() + row * self.pw + pe / 64;
        let m = 1u64 << (pe % 64);
        self.touch();
        self.note_write_summary(col, value);
        self.zeros[idx] &= !m;
        self.ones[idx] &= !m;
        match value {
            TernaryBit::Zero => self.zeros[idx] |= m,
            TernaryBit::One => self.ones[idx] |= m,
            TernaryBit::X => {}
        }
        if let Some(f) = &self.fault {
            // The stuck override can set either plane regardless of `value`.
            self.zsum[col] = PlaneSummary::Unknown;
            self.osum[col] = PlaneSummary::Unknown;
            if f.stuck0[idx] & m != 0 {
                self.zeros[idx] |= m;
                self.ones[idx] &= !m;
            } else if f.stuck1[idx] & m != 0 {
                self.ones[idx] |= m;
                self.zeros[idx] &= !m;
            }
        }
    }

    /// Fused search over the selected PEs: apply a precompiled
    /// `(column, bit)` plan to every selected PE in one word pass per pair
    /// of plan entries, overwriting their lanes of `out` (a full
    /// `[row][pe_word]` plane, e.g. [`TagSlab::words_mut`]). Unselected
    /// lanes keep their previous contents; `sel = None` selects every PE
    /// and overwrites the whole plane mask-free. Masked or out-of-range
    /// plan entries are skipped — identical semantics to
    /// [`TcamArray::search_plan_into`] per PE.
    ///
    /// # Panics
    ///
    /// Panics if `out.len()` differs from [`plane_words`](Self::plane_words).
    pub fn search_plan_multi_into(
        &self,
        plan: &[(usize, KeyBit)],
        sel: Option<&[u64]>,
        out: &mut [u64],
    ) {
        let plane = self.plane_words();
        assert_eq!(out.len(), plane, "output/plane word count mismatch");
        let full = self.pes.is_multiple_of(64);
        let (zeros, ones) = (&self.zeros, &self.ones);
        match sel {
            None => {
                let mask = match &self.fault {
                    Some(f) => Some(f.search_mask.as_slice()),
                    None => (!full).then_some(self.live.as_slice()),
                };
                let col = |c: usize| {
                    (
                        &zeros[c * plane..(c + 1) * plane],
                        &ones[c * plane..(c + 1) * plane],
                    )
                };
                sweep::plan_and_into(out, plan, self.cols, &col, mask);
            }
            Some(m) => {
                const TILE: usize = 256;
                let mut s = [0u64; TILE];
                let mut w0 = 0;
                while w0 < plane {
                    let n = TILE.min(plane - w0);
                    let mask = match &self.fault {
                        Some(f) => Some(&f.search_mask[w0..w0 + n]),
                        None => (!full).then(|| &self.live[w0..w0 + n]),
                    };
                    let col = |c: usize| {
                        let off = c * plane + w0;
                        (&zeros[off..off + n], &ones[off..off + n])
                    };
                    sweep::plan_and_into(&mut s[..n], plan, self.cols, &col, mask);
                    for i in 0..n {
                        let mm = m[(w0 + i) % self.pw];
                        out[w0 + i] = (out[w0 + i] & !mm) | (s[i] & mm);
                    }
                    w0 += n;
                }
            }
        }
    }

    /// OR-accumulating form of
    /// [`search_plan_multi_into`](Self::search_plan_multi_into):
    /// `out |= match(plan)` for the selected lanes — the slab kernel behind
    /// an accumulating (`acc`) search micro-op. Unselected lanes are
    /// untouched.
    ///
    /// # Panics
    ///
    /// Panics if `out.len()` differs from [`plane_words`](Self::plane_words).
    pub fn search_plan_multi_or_into(
        &self,
        plan: &[(usize, KeyBit)],
        sel: Option<&[u64]>,
        out: &mut [u64],
    ) {
        let plane = self.plane_words();
        assert_eq!(out.len(), plane, "output/plane word count mismatch");
        let full = self.pes.is_multiple_of(64);
        let (zeros, ones) = (&self.zeros, &self.ones);
        const TILE: usize = 256;
        let mut s = [0u64; TILE];
        let mut tt = [0u64; TILE];
        let mut w0 = 0;
        while w0 < plane {
            let n = TILE.min(plane - w0);
            let mask = match &self.fault {
                Some(f) => Some(&f.search_mask[w0..w0 + n]),
                None => (!full).then(|| &self.live[w0..w0 + n]),
            };
            let col = |c: usize| {
                let off = c * plane + w0;
                (&zeros[off..off + n], &ones[off..off + n])
            };
            match sel {
                None => sweep::plan_or_into(
                    &mut out[w0..w0 + n],
                    &mut s[..n],
                    plan,
                    self.cols,
                    &col,
                    mask,
                ),
                Some(m) => {
                    sweep::plan_and_into(&mut tt[..n], plan, self.cols, &col, mask);
                    for i in 0..n {
                        out[w0 + i] |= tt[i] & m[(w0 + i) % self.pw];
                    }
                }
            }
            w0 += n;
        }
    }

    /// Fused associative write over the selected PEs: program `value` into
    /// column `col` of every tagged row of every selected PE, in one linear
    /// sweep. `tags` is a full `[row][pe_word]` plane. Each selected PE's
    /// column takes one wear pulse (the column driver fires per PE per
    /// write, whatever the tags say — identical to
    /// [`TcamArray::write_column`]).
    ///
    /// # Panics
    ///
    /// Panics if `col` is out of range or `tags` has the wrong length.
    pub fn write_column_multi(
        &mut self,
        col: usize,
        value: TernaryBit,
        tags: &[u64],
        sel: Option<&[u64]>,
    ) {
        assert!(col < self.cols, "column out of range");
        let plane = self.plane_words();
        assert_eq!(tags.len(), plane, "tag/plane word count mismatch");
        self.touch();
        self.note_wear(col, sel);
        match sel {
            None => self.write_plane(col, value, tags),
            Some(m) => {
                self.note_write_summary(col, value);
                let pw = self.pw;
                let zeros = &mut self.zeros[col * plane..(col + 1) * plane];
                let ones = &mut self.ones[col * plane..(col + 1) * plane];
                match value {
                    TernaryBit::Zero => {
                        for (i, (z, o)) in zeros.iter_mut().zip(ones.iter_mut()).enumerate() {
                            let t = tags[i] & m[i % pw];
                            *z |= t;
                            *o &= !t;
                        }
                    }
                    TernaryBit::One => {
                        for (i, (z, o)) in zeros.iter_mut().zip(ones.iter_mut()).enumerate() {
                            let t = tags[i] & m[i % pw];
                            *o |= t;
                            *z &= !t;
                        }
                    }
                    TernaryBit::X => {
                        for (i, (z, o)) in zeros.iter_mut().zip(ones.iter_mut()).enumerate() {
                            let t = tags[i] & m[i % pw];
                            *z &= !t;
                            *o &= !t;
                        }
                    }
                }
            }
        }
        self.enforce_stuck_col(col, sel);
    }

    /// Fused column copy over the selected PEs: duplicate column `src`
    /// into column `dst` for every row of every selected PE (`sel = None`
    /// is two `copy_within` calls on the arenas; no wear, like
    /// [`TcamArray::copy_column`]).
    ///
    /// # Panics
    ///
    /// Panics if either column is out of range.
    pub fn copy_column_multi(&mut self, src: usize, dst: usize, sel: Option<&[u64]>) {
        assert!(src < self.cols && dst < self.cols, "column out of range");
        if src == dst {
            return;
        }
        self.touch();
        let plane = self.plane_words();
        match sel {
            None => {
                // A whole-plane copy carries the source's summaries over.
                self.zsum[dst] = self.zsum[src];
                self.osum[dst] = self.osum[src];
                self.zeros
                    .copy_within(src * plane..(src + 1) * plane, dst * plane);
                self.ones
                    .copy_within(src * plane..(src + 1) * plane, dst * plane);
            }
            Some(m) => {
                // A masked blend proves nothing unless both sides agree.
                self.zsum[dst] = if self.zsum[dst] == self.zsum[src] {
                    self.zsum[dst]
                } else {
                    PlaneSummary::Unknown
                };
                self.osum[dst] = if self.osum[dst] == self.osum[src] {
                    self.osum[dst]
                } else {
                    PlaneSummary::Unknown
                };
                let pw = self.pw;
                for arena in [&mut self.zeros, &mut self.ones] {
                    let (s, d): (&[u64], &mut [u64]) = if src < dst {
                        let (a, b) = arena.split_at_mut(dst * plane);
                        (&a[src * plane..(src + 1) * plane], &mut b[..plane])
                    } else {
                        let (a, b) = arena.split_at_mut(src * plane);
                        let d = &mut a[dst * plane..(dst + 1) * plane];
                        (&b[..plane], d)
                    };
                    for i in 0..plane {
                        let mm = m[i % pw];
                        d[i] = (d[i] & !mm) | (s[i] & mm);
                    }
                }
            }
        }
        self.enforce_stuck_col(dst, sel);
    }

    /// Fused encoded write over the selected PEs: for **every** row of
    /// every selected PE, program the two cells at `col`, `col + 1` with
    /// the two-bit encoding of the pair `(latch bit, tag bit)` — the Fig 7
    /// encoder path of [`crate::encoding::encode_pair`], evaluated 64 PEs
    /// at a time:
    ///
    /// the first cell is `0`/`1` when the latch bit is set (value = tag
    /// bit) and `X` otherwise; the second cell mirrors it for a clear latch
    /// bit. `latch` and `tags` are full `[row][pe_word]` planes. Both
    /// columns take one wear pulse per selected PE.
    ///
    /// # Panics
    ///
    /// Panics if `col + 1` is out of range or the inputs have the wrong
    /// length.
    pub fn write_encoded_multi(
        &mut self,
        col: usize,
        latch: &[u64],
        tags: &[u64],
        sel: Option<&[u64]>,
    ) {
        assert!(col + 1 < self.cols, "encoded write needs two columns");
        let plane = self.plane_words();
        assert_eq!(latch.len(), plane, "latch/plane word count mismatch");
        assert_eq!(tags.len(), plane, "tag/plane word count mismatch");
        self.touch();
        let pw = self.pw;
        // Encoded pairs can set or clear any of the four planes.
        for c in [col, col + 1] {
            self.zsum[c] = PlaneSummary::Unknown;
            self.osum[c] = PlaneSummary::Unknown;
        }
        // First column: stored value is the tag bit where the latch bit is
        // set, X elsewhere (00->X., 01->X., 10->0., 11->1.). Latch padding
        // is zero, so the products need no live mask.
        {
            let zeros = &mut self.zeros[col * plane..(col + 1) * plane];
            let ones = &mut self.ones[col * plane..(col + 1) * plane];
            match sel {
                None => {
                    for (i, (z, o)) in zeros.iter_mut().zip(ones.iter_mut()).enumerate() {
                        let (h, t) = (latch[i], tags[i]);
                        *z = h & !t;
                        *o = h & t;
                    }
                }
                Some(m) => {
                    for (i, (z, o)) in zeros.iter_mut().zip(ones.iter_mut()).enumerate() {
                        let mm = m[i % pw];
                        let (h, t) = (latch[i], tags[i]);
                        *z = (*z & !mm) | (h & !t & mm);
                        *o = (*o & !mm) | (h & t & mm);
                    }
                }
            }
        }
        // Second column: the complementary half (00->.0, 01->.1, 10->.X,
        // 11->.X). `!h & !t` complements both operands, so the live mask
        // keeps PE padding clear.
        {
            let c1 = col + 1;
            let zeros = &mut self.zeros[c1 * plane..(c1 + 1) * plane];
            let ones = &mut self.ones[c1 * plane..(c1 + 1) * plane];
            match sel {
                None => {
                    for (i, (z, o)) in zeros.iter_mut().zip(ones.iter_mut()).enumerate() {
                        let (h, t) = (latch[i], tags[i]);
                        *z = !h & !t & self.live[i];
                        *o = !h & t;
                    }
                }
                Some(m) => {
                    for (i, (z, o)) in zeros.iter_mut().zip(ones.iter_mut()).enumerate() {
                        let mm = m[i % pw];
                        let (h, t) = (latch[i], tags[i]);
                        *z = (*z & !mm) | (!h & !t & self.live[i] & mm);
                        *o = (*o & !mm) | (!h & t & mm);
                    }
                }
            }
        }
        for c in [col, col + 1] {
            self.note_wear(c, sel);
            self.enforce_stuck_col(c, sel);
        }
    }

    /// Fused search chain plus conditional writes over the selected PEs in
    /// **one linear pass** over the arena — the slab kernel behind the
    /// trace engine's `SearchWrite`/`SearchWriteMulti` micro-ops.
    ///
    /// Per plane word: `t = (acc ? tags : 0) | match(plans[0]) | …` (each
    /// match starting from the live mask and narrowing per plan entry),
    /// blend `t` back into the selected lanes of `tags`, then program every
    /// `(column, value)` of `writes` in order under the selected lanes of
    /// `t`. No intermediate tag vector is materialized. Searches complete
    /// before stores, so the result is bit-identical to the unfused kernel
    /// sequence even when a write column appears in a plan. Each write
    /// column takes one wear pulse per selected PE, exactly like
    /// [`write_column_multi`](Self::write_column_multi).
    ///
    /// `tags` is a full `[row][pe_word]` plane (e.g.
    /// [`TagSlab::words_mut`]). Masked or out-of-range plan entries are
    /// skipped.
    ///
    /// The dominant compiled shapes — no accumulate, one or two plans of up
    /// to four effective entries, every PE selected — run a monomorphized
    /// whole-plane core (`match_plane` / `match2_plane`) with no
    /// scratch tile and no per-pass dispatch; everything else takes the
    /// general tiled path.
    ///
    /// # Panics
    ///
    /// Panics if a write column is out of range or `tags` has the wrong
    /// length.
    pub fn search_write_multi(
        &mut self,
        plans: &[&[(usize, KeyBit)]],
        acc: bool,
        writes: &[(usize, TernaryBit)],
        tags: &mut [u64],
        sel: Option<&[u64]>,
    ) {
        let plane = self.plane_words();
        assert_eq!(tags.len(), plane, "tag/plane word count mismatch");
        if !writes.is_empty() {
            self.touch();
        }
        for &(col, _) in writes {
            assert!(col < self.cols, "column out of range");
            self.note_wear(col, sel);
        }
        let full = self.pes.is_multiple_of(64);
        // Miss planes per plan: `Zero`/`One` contribute one bit-line plane
        // each, `Z` two (see [`match_plane`]).
        let eff = |plan: &[(usize, KeyBit)]| {
            plan.iter()
                .map(|&(c, b)| match b {
                    _ if c >= self.cols => 0,
                    KeyBit::Zero | KeyBit::One => 1,
                    KeyBit::Z => 2,
                    KeyBit::Masked => 0,
                })
                .sum::<usize>()
        };
        let fast = sel.is_none()
            && !acc
            && (1..=2).contains(&plans.len())
            && plans.iter().all(|p| eff(p) <= 4);
        if fast {
            let any = {
                let base = if self.fault.is_none() && full {
                    None
                } else {
                    Some(self.search_base())
                };
                let mut bufs = [[EMPTY; 4]; 2];
                let mut ks = [0usize; 2];
                let dead = collect_miss_planes(
                    plans,
                    &self.zeros,
                    &self.ones,
                    &self.zsum,
                    &self.osum,
                    self.cols,
                    plane,
                    0,
                    plane,
                    &mut bufs,
                    &mut ks,
                );
                match_dispatch(tags, base, &bufs, ks, dead, plans.len())
            };
            // All-zero tags drive no store, so the plane RMWs (and the
            // summary aging) can be skipped outright; wear was already
            // noted and stuck enforcement below still runs.
            if any != 0 {
                for &(c, value) in writes {
                    self.write_plane(c, value, tags);
                }
            }
        } else {
            // General path: tile the plane so the whole chain — plan
            // narrows, the OR-accumulate, and all the writes — runs over a
            // stack-resident window. Tiles are independent because a tile's
            // searches read only its own offsets, so writes landing in
            // earlier tiles never alias a later tile's reads.
            //
            // Summaries age once up front (the per-write transitions are
            // idempotent and this path never consumes them), since the
            // tile loop below holds plane borrows that preclude `&mut
            // self` calls.
            for &(col, value) in writes {
                self.note_write_summary(col, value);
            }
            const TILE: usize = 256;
            let mut s = [0u64; TILE];
            let mut tt = [0u64; TILE];
            let pw = self.pw;
            let mut w0 = 0;
            while w0 < plane {
                let n = TILE.min(plane - w0);
                let t = &mut tags[w0..w0 + n];
                let mask = match &self.fault {
                    // Under faults the effective mask also excludes this
                    // epoch's transient misses, so it applies even when
                    // the PE count fills every word.
                    Some(f) => Some(&f.search_mask[w0..w0 + n]),
                    None => (!full).then(|| &self.live[w0..w0 + n]),
                };
                let (zeros, ones) = (&self.zeros, &self.ones);
                let col = |c: usize| {
                    let off = c * plane + w0;
                    (&zeros[off..off + n], &ones[off..off + n])
                };
                match sel {
                    None => {
                        if !acc && plans.is_empty() {
                            t.fill(0);
                        }
                        for (pi, plan) in plans.iter().enumerate() {
                            if pi == 0 && !acc {
                                sweep::plan_and_into(t, plan, self.cols, &col, mask);
                            } else {
                                sweep::plan_or_into(t, &mut s[..n], plan, self.cols, &col, mask);
                            }
                        }
                    }
                    Some(m) => {
                        tt[..n].copy_from_slice(t);
                        if !acc && plans.is_empty() {
                            tt[..n].fill(0);
                        }
                        for (pi, plan) in plans.iter().enumerate() {
                            if pi == 0 && !acc {
                                sweep::plan_and_into(&mut tt[..n], plan, self.cols, &col, mask);
                            } else {
                                sweep::plan_or_into(
                                    &mut tt[..n],
                                    &mut s[..n],
                                    plan,
                                    self.cols,
                                    &col,
                                    mask,
                                );
                            }
                        }
                        for i in 0..n {
                            let mm = m[(w0 + i) % pw];
                            s[i] = tt[i] & mm;
                            t[i] = (t[i] & !mm) | s[i];
                        }
                    }
                }
                // Selected-lane write tags: the blended plane for `None`,
                // the masked fresh match for `Some` (unselected lanes must
                // not drive stores).
                for &(col, value) in writes {
                    let off = col * plane + w0;
                    let zero = &mut self.zeros[off..off + n];
                    let one = &mut self.ones[off..off + n];
                    let wt: &[u64] = match sel {
                        None => &tags[w0..w0 + n],
                        Some(_) => &s[..n],
                    };
                    match value {
                        TernaryBit::Zero => {
                            for ((z, o), tw) in zero.iter_mut().zip(one.iter_mut()).zip(wt) {
                                *z |= tw;
                                *o &= !tw;
                            }
                        }
                        TernaryBit::One => {
                            for ((z, o), tw) in zero.iter_mut().zip(one.iter_mut()).zip(wt) {
                                *o |= tw;
                                *z &= !tw;
                            }
                        }
                        TernaryBit::X => {
                            for ((z, o), tw) in zero.iter_mut().zip(one.iter_mut()).zip(wt) {
                                *z &= !tw;
                                *o &= !tw;
                            }
                        }
                    }
                }
                w0 += n;
            }
        }
        if self.fault.is_some() {
            // Stuck enforcement is idempotent and searches complete before
            // stores, so enforcing once per written column at kernel end
            // equals enforcing after every store — the invariant the
            // unfused engines maintain.
            for &(col, _) in writes {
                self.enforce_stuck_col(col, sel);
            }
        }
    }

    /// Execute a whole program of fused search/write steps through the
    /// monomorphic match cores, with the per-column `PlaneSummary`
    /// caches pruning the work per step: `AllZero` miss planes drop out
    /// of the product chains, a `Full` miss plane kills its whole plan,
    /// and a step whose final tag plane is provably (or measured) all
    /// zero skips its write RMWs entirely — on sparse programs most
    /// steps touch a fraction of the arena traffic the naive sweep pays.
    ///
    /// The elisions are exact, not approximate: an all-zero tag plane
    /// drives no store, so skipping the RMW pass leaves the planes
    /// bit-identical; wear is still noted once per write column per step,
    /// exactly as the per-op kernel does. The whole program is
    /// bit-identical to running
    /// [`search_write_multi`](Self::search_write_multi) once per
    /// [`SweepOp`] in order (property-tested in
    /// `tests/slab_properties.rs`).
    ///
    /// Steps fall outside the fast core — and route through the general
    /// kernel — when a fault model is attached, a selection mask is
    /// given, or the step exceeds the monomorphic match cores (more than
    /// two plans, or more than four miss planes per plan).
    ///
    /// # Panics
    ///
    /// Panics if a write column is out of range or `tags` has the wrong
    /// length.
    pub fn sweep_program(&mut self, ops: &[SweepOp<'_>], tags: &mut [u64], sel: Option<&[u64]>) {
        let plane = self.plane_words();
        assert_eq!(tags.len(), plane, "tag/plane word count mismatch");
        if ops.iter().any(|op| !op.writes.is_empty()) {
            self.touch();
        }
        if self.fault.is_some() || sel.is_some() {
            for op in ops {
                self.search_write_multi(op.plans, op.acc, op.writes, tags, sel);
            }
            return;
        }
        let ncols = self.cols;
        let eff = move |plan: &[(usize, KeyBit)]| {
            plan.iter()
                .map(|&(c, b)| match b {
                    _ if c >= ncols => 0,
                    KeyBit::Zero | KeyBit::One => 1,
                    KeyBit::Z => 2,
                    KeyBit::Masked => 0,
                })
                .sum::<usize>()
        };
        let full = self.pes.is_multiple_of(64);
        let mut buf: Vec<u64> = Vec::new();
        // Whether `tags` is *known* all-zero — lets a chain of dead steps
        // skip both the refill and the write RMWs without re-reading the
        // plane. `false` means "unknown", never "known non-zero".
        let mut tags_zero = false;
        for op in ops {
            if op.plans.len() > 2 || op.plans.iter().any(|p| eff(p) > 4) {
                self.search_write_multi(op.plans, op.acc, op.writes, tags, None);
                tags_zero = false;
                continue;
            }
            for &(col, _) in op.writes {
                assert!(col < self.cols, "column out of range");
                self.note_wear(col, None);
            }
            let base = (!full).then_some(&self.live[..]);
            let any = if op.plans.is_empty() {
                if op.acc {
                    // Write under the tags as they stand.
                    if tags_zero {
                        0
                    } else {
                        tags.iter().fold(0, |a, &w| a | w)
                    }
                } else {
                    if !tags_zero {
                        tags.fill(0);
                    }
                    0
                }
            } else {
                let mut bufs = [[EMPTY; 4]; 2];
                let mut ks = [0usize; 2];
                let dead = collect_miss_planes(
                    op.plans,
                    &self.zeros,
                    &self.ones,
                    &self.zsum,
                    &self.osum,
                    self.cols,
                    plane,
                    0,
                    plane,
                    &mut bufs,
                    &mut ks,
                );
                let fully_dead = dead[..op.plans.len()].iter().all(|&d| d);
                if op.acc {
                    let a = if fully_dead {
                        0
                    } else {
                        buf.resize(plane, 0);
                        match_dispatch(&mut buf, base, &bufs, ks, dead, op.plans.len())
                    };
                    if a != 0 {
                        for (t, &m) in tags.iter_mut().zip(buf.iter()) {
                            *t |= m;
                        }
                    }
                    // The write tags are the accumulated plane, which can
                    // be non-zero even when this step's match is empty.
                    if a != 0 || op.writes.is_empty() || tags_zero {
                        a
                    } else {
                        tags.iter().fold(0, |acc, &w| acc | w)
                    }
                } else if fully_dead {
                    if !tags_zero {
                        tags.fill(0);
                    }
                    0
                } else {
                    match_dispatch(tags, base, &bufs, ks, dead, op.plans.len())
                }
            };
            if !op.acc {
                tags_zero = any == 0;
            } else if any != 0 {
                tags_zero = false;
            }
            if any != 0 {
                for &(col, value) in op.writes {
                    self.write_plane(col, value, tags);
                }
            }
        }
    }

    /// Incremental search over the selected PEs: narrow `out`'s existing
    /// contents by `plan` without the live-mask re-initialization of
    /// [`search_plan_multi_into`](Self::search_plan_multi_into) — the slab
    /// kernel behind the trace engine's `SearchDelta` micro-op, sound when
    /// `out` already holds the match of a still-valid plan prefix.
    /// Unselected lanes are untouched.
    ///
    /// # Panics
    ///
    /// Panics if `out.len()` differs from [`plane_words`](Self::plane_words).
    pub fn search_narrow_multi(
        &self,
        plan: &[(usize, KeyBit)],
        sel: Option<&[u64]>,
        out: &mut [u64],
    ) {
        let plane = self.plane_words();
        assert_eq!(out.len(), plane, "output/plane word count mismatch");
        let (zeros, ones) = (&self.zeros, &self.ones);
        match sel {
            None => {
                let col = |c: usize| {
                    (
                        &zeros[c * plane..(c + 1) * plane],
                        &ones[c * plane..(c + 1) * plane],
                    )
                };
                sweep::plan_narrow(out, plan, self.cols, &col);
            }
            Some(m) => {
                const TILE: usize = 256;
                let mut s = [0u64; TILE];
                let mut w0 = 0;
                while w0 < plane {
                    let n = TILE.min(plane - w0);
                    s[..n].copy_from_slice(&out[w0..w0 + n]);
                    let col = |c: usize| {
                        let off = c * plane + w0;
                        (&zeros[off..off + n], &ones[off..off + n])
                    };
                    sweep::plan_narrow(&mut s[..n], plan, self.cols, &col);
                    for i in 0..n {
                        let mm = m[(w0 + i) % self.pw];
                        out[w0 + i] = (out[w0 + i] & !mm) | (s[i] & mm);
                    }
                    w0 += n;
                }
            }
        }
    }

    /// One PE's associative-write pulse counts, gathered per column (the
    /// endurance profile [`TcamArray::column_wear`] reports).
    pub fn pe_wear(&self, pe: usize) -> Vec<u64> {
        (0..self.cols)
            .map(|c| self.wear[c * self.pes + pe])
            .collect()
    }

    /// Build a slab from per-PE arrays (wear included).
    ///
    /// Arrays may have heterogeneous column counts: the slab is as wide as
    /// the widest array, each array's cells **and wear** are copied over
    /// its own width (not the narrowest), and a narrow PE's absent columns
    /// hold the all-`0`, zero-wear state of a fresh [`TcamArray`] — so
    /// [`to_array`](Self::to_array) widens narrow PEs accordingly.
    ///
    /// # Panics
    ///
    /// Panics if `arrays` is empty, row counts differ, or only some arrays
    /// carry fault state (fault state also requires uniform widths, since
    /// the remap tables are per-column).
    pub fn from_arrays(arrays: &[TcamArray]) -> Self {
        let first = arrays.first().expect("at least one array");
        let rows = first.rows();
        assert!(
            arrays.iter().all(|a| a.rows() == rows),
            "array geometry mismatch"
        );
        let cols = arrays
            .iter()
            .map(TcamArray::cols)
            .max()
            .expect("at least one array");
        let pes = arrays.len();
        let mut slab = TcamSlab::new(pes, rows, cols);
        let plane = slab.plane_words();
        let bpp = rows.div_ceil(64);
        // A fresh TcamArray column is all-`0` cells, i.e. `is_zero` = the
        // row mask — what absent columns of narrow PEs must stage as.
        let mut rm = vec![!0u64; bpp];
        if !rows.is_multiple_of(64) {
            rm[bpp - 1] = (1u64 << (rows % 64)) - 1;
        }
        let mut pm0 = vec![0u64; pes * bpp];
        let mut pm1 = vec![0u64; pes * bpp];
        for col in 0..cols {
            for (pe, array) in arrays.iter().enumerate() {
                let d0 = &mut pm0[pe * bpp..(pe + 1) * bpp];
                let d1 = &mut pm1[pe * bpp..(pe + 1) * bpp];
                if col < array.cols() {
                    let (z, o) = array.column_bits(col);
                    d0.copy_from_slice(z);
                    d1.copy_from_slice(o);
                    slab.wear[col * pes + pe] = array.column_wear()[col];
                } else {
                    d0.copy_from_slice(&rm);
                    d1.fill(0);
                }
            }
            let zp = plane::pe_major_to_plane(&pm0, rows, pes);
            slab.zeros[col * plane..(col + 1) * plane].copy_from_slice(&zp);
            let op = plane::pe_major_to_plane(&pm1, rows, pes);
            slab.ones[col * plane..(col + 1) * plane].copy_from_slice(&op);
        }
        let faulted = arrays.iter().filter(|a| a.fault().is_some()).count();
        if faulted > 0 {
            assert_eq!(
                faulted,
                arrays.len(),
                "fault state must be attached to all arrays or none"
            );
            assert!(
                arrays.iter().all(|a| a.cols() == cols),
                "fault state requires uniform column counts"
            );
            let states: Vec<&FaultState> = arrays
                .iter()
                .map(|a| a.fault().expect("checked above"))
                .collect();
            slab.fault = Some(Box::new(SlabFaultState::from_arrays(&states)));
        }
        slab.recompute_summaries();
        slab
    }

    /// Extract one PE as a standalone [`TcamArray`] (wear included).
    ///
    /// # Panics
    ///
    /// Panics if `pe` is out of range.
    pub fn to_array(&self, pe: usize) -> TcamArray {
        assert!(pe < self.pes, "PE out of range");
        let mut array = TcamArray::new(self.rows, self.cols);
        let plane = self.plane_words();
        let bpp = self.rows.div_ceil(64);
        let mut z = vec![0u64; bpp];
        let mut o = vec![0u64; bpp];
        let (w, s) = (pe / 64, pe % 64);
        for col in 0..self.cols {
            z.fill(0);
            o.fill(0);
            for row in 0..self.rows {
                let idx = col * plane + row * self.pw + w;
                z[row / 64] |= (self.zeros[idx] >> s & 1) << (row % 64);
                o[row / 64] |= (self.ones[idx] >> s & 1) << (row % 64);
            }
            array.set_column_bits(col, &z, &o);
        }
        for (col, w) in array.wear_mut().iter_mut().enumerate() {
            *w = self.wear[col * self.pes + pe];
        }
        if let Some(f) = &self.fault {
            array.set_fault(Some(Box::new(f.to_array(pe))));
        }
        array
    }

    /// Extract every PE as standalone arrays — the inverse of
    /// [`from_arrays`](Self::from_arrays).
    pub fn to_arrays(&self) -> Vec<TcamArray> {
        (0..self.pes).map(|pe| self.to_array(pe)).collect()
    }

    /// Serialize to the versioned byte image (header + `zeros`, `ones`,
    /// `wear` arenas as big-endian words, cell arenas in the historical
    /// `[col][pe][block]` wire layout — transposed from the in-memory
    /// planes at this boundary, so pre-bit-plane images stay decodable and
    /// re-encode byte-identically). The offline `serde` shim cannot produce
    /// real bytes, so snapshots go through the `bytes` buffer directly,
    /// like the ISA's instruction encoding.
    ///
    /// A fault-free slab emits [`FORMAT_VERSION`](Self::FORMAT_VERSION);
    /// with fault state attached the image is
    /// [`FORMAT_VERSION_FAULT`](Self::FORMAT_VERSION_FAULT) and appends the
    /// fault *bookkeeping* (model, remap tables, counters — stuck and
    /// search masks are recomputed on decode, since they are pure functions
    /// of the bookkeeping).
    ///
    /// # Panics
    ///
    /// Panics if a dimension exceeds `u16::MAX` (the paper-scale geometry
    /// is 256×256 with small chunks).
    pub fn to_bytes(&self) -> Vec<u8> {
        for dim in [self.pes, self.rows, self.cols] {
            assert!(dim <= u16::MAX as usize, "dimension exceeds image format");
        }
        let plane = self.plane_words();
        let words = 2 * self.cols * self.pes * self.rows.div_ceil(64) + self.wear.len();
        let mut buf = BytesMut::with_capacity(7 + words * 8);
        buf.put_u8(match self.fault {
            Some(_) => Self::FORMAT_VERSION_FAULT,
            None => Self::FORMAT_VERSION,
        });
        buf.put_u16(self.pes as u16);
        buf.put_u16(self.rows as u16);
        buf.put_u16(self.cols as u16);
        for arena in [&self.zeros, &self.ones] {
            for col in 0..self.cols {
                let pm = plane::plane_to_pe_major(
                    &arena[col * plane..(col + 1) * plane],
                    self.rows,
                    self.pes,
                );
                for w in &pm {
                    buf.put_slice(&w.to_be_bytes());
                }
            }
        }
        for w in &self.wear {
            buf.put_slice(&w.to_be_bytes());
        }
        if let Some(f) = &self.fault {
            assert!(
                f.spares <= u16::MAX as usize,
                "spare count exceeds image format"
            );
            buf.put_u64(f.model.seed);
            buf.put_u32(f.model.stuck_per_million);
            buf.put_u32(f.model.miss_per_million);
            match f.model.endurance_limit {
                Some(limit) => {
                    buf.put_u8(1);
                    buf.put_u64(limit);
                }
                None => buf.put_u8(0),
            }
            buf.put_u64(f.pe0 as u64);
            buf.put_u16(f.spares as u16);
            buf.put_u64(f.epoch);
            for pe in 0..self.pes {
                buf.put_u16(f.next_spare[pe]);
                match f.failed[pe] {
                    Some((col, wear)) => {
                        buf.put_u8(1);
                        buf.put_u16(col);
                        buf.put_u64(wear);
                    }
                    None => buf.put_u8(0),
                }
                for &r in &f.remap[pe * self.cols..(pe + 1) * self.cols] {
                    buf.put_u16(r);
                }
                buf.put_u16(f.retired[pe].len() as u16);
                for &(col, phys) in &f.retired[pe] {
                    buf.put_u16(col);
                    buf.put_u16(phys);
                }
            }
        }
        buf.to_vec()
    }

    /// Deserialize a [`to_bytes`](Self::to_bytes) image.
    ///
    /// # Errors
    ///
    /// Returns a [`SlabDecodeError`] on truncation, version or geometry
    /// problems, or trailing bytes.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, SlabDecodeError> {
        let mut buf = bytes;
        if buf.remaining() < 7 {
            return Err(SlabDecodeError::Truncated);
        }
        let version = buf.get_u8();
        if version != Self::FORMAT_VERSION && version != Self::FORMAT_VERSION_FAULT {
            return Err(SlabDecodeError::BadVersion(version));
        }
        let pes = buf.get_u16() as usize;
        let rows = buf.get_u16() as usize;
        let cols = buf.get_u16() as usize;
        if pes == 0 || rows == 0 || cols == 0 {
            return Err(SlabDecodeError::BadGeometry);
        }
        let bpp = rows.div_ceil(64);
        let arena = cols * pes * bpp;
        let words = 2 * arena + cols * pes;
        if buf.remaining() < words * 8 {
            return Err(SlabDecodeError::Truncated);
        }
        let mut read_words = |n: usize| {
            let mut v = Vec::with_capacity(n);
            let mut word = [0u8; 8];
            for _ in 0..n {
                buf.copy_to_slice(&mut word);
                v.push(u64::from_be_bytes(word));
            }
            v
        };
        let zeros_w = read_words(arena);
        let ones_w = read_words(arena);
        let wear = read_words(cols * pes);
        let fault = if version == Self::FORMAT_VERSION_FAULT {
            // Fixed part: seed + rates + limit flag + pe0 + spares + epoch.
            if buf.remaining() < 8 + 4 + 4 + 1 {
                return Err(SlabDecodeError::Truncated);
            }
            let seed = buf.get_u64();
            let stuck_per_million = buf.get_u32();
            let miss_per_million = buf.get_u32();
            let endurance_limit = match buf.get_u8() {
                0 => None,
                _ => {
                    if buf.remaining() < 8 {
                        return Err(SlabDecodeError::Truncated);
                    }
                    Some(buf.get_u64())
                }
            };
            if buf.remaining() < 8 + 2 + 8 {
                return Err(SlabDecodeError::Truncated);
            }
            let pe0 = buf.get_u64() as usize;
            let spares = buf.get_u16() as usize;
            let epoch = buf.get_u64();
            let mut next_spare = Vec::with_capacity(pes);
            let mut failed = Vec::with_capacity(pes);
            let mut remap = Vec::with_capacity(pes * cols);
            let mut retired = Vec::with_capacity(pes);
            for _ in 0..pes {
                if buf.remaining() < 2 + 1 {
                    return Err(SlabDecodeError::Truncated);
                }
                next_spare.push(buf.get_u16());
                failed.push(match buf.get_u8() {
                    0 => None,
                    _ => {
                        if buf.remaining() < 2 + 8 {
                            return Err(SlabDecodeError::Truncated);
                        }
                        Some((buf.get_u16(), buf.get_u64()))
                    }
                });
                if buf.remaining() < cols * 2 + 2 {
                    return Err(SlabDecodeError::Truncated);
                }
                for _ in 0..cols {
                    remap.push(buf.get_u16());
                }
                let n = buf.get_u16() as usize;
                if buf.remaining() < n * 4 {
                    return Err(SlabDecodeError::Truncated);
                }
                let mut log = Vec::with_capacity(n);
                for _ in 0..n {
                    let col = buf.get_u16();
                    let phys = buf.get_u16();
                    log.push((col, phys));
                }
                retired.push(log);
            }
            let model = FaultModel {
                seed,
                stuck_per_million,
                miss_per_million,
                endurance_limit,
            };
            Some(Box::new(SlabFaultState::restore(
                model, pe0, spares, pes, rows, cols, epoch, next_spare, remap, retired, failed,
            )))
        } else {
            None
        };
        if buf.has_remaining() {
            return Err(SlabDecodeError::TrailingBytes(buf.remaining()));
        }
        let mut slab = TcamSlab::new(pes, rows, cols);
        let plane = slab.plane_words();
        for col in 0..cols {
            let z = plane::pe_major_to_plane(
                &zeros_w[col * pes * bpp..(col + 1) * pes * bpp],
                rows,
                pes,
            );
            slab.zeros[col * plane..(col + 1) * plane].copy_from_slice(&z);
            let o = plane::pe_major_to_plane(
                &ones_w[col * pes * bpp..(col + 1) * pes * bpp],
                rows,
                pes,
            );
            slab.ones[col * plane..(col + 1) * plane].copy_from_slice(&o);
        }
        slab.wear = wear;
        slab.fault = fault;
        slab.recompute_summaries();
        Ok(slab)
    }
}

// ---------------------------------------------------------------------------
// CAM-native similarity search (see `crate::similarity` for the
// engine-shared semantics and DESIGN.md §11 for the hardware mapping).
// ---------------------------------------------------------------------------

/// One similarity candidate of a slab: chunk-relative PE, row, and its
/// distance to the query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct SlabHit {
    /// Distance to the query (leading field: derived ordering is
    /// ascending-distance with `(pe, row)` tie-break).
    pub distance: u32,
    /// Chunk-relative PE index.
    pub pe: u32,
    /// Row within the PE.
    pub row: u32,
}

/// Result of a progressive top-k search over one slab.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlabTopk {
    /// Every candidate within the final budget, ascending
    /// `(distance, pe, row)` — a superset of this slab's local top-k.
    pub hits: Vec<SlabHit>,
    /// Candidates within budget at each executed round. A multi-chunk
    /// machine sums these across chunks per round to recover the *global*
    /// stopping round (each chunk always runs at least as many rounds as
    /// the global controller needs; see [`TcamSlab::hamming_topk`]).
    pub round_counts: Vec<usize>,
    /// Distance budget of the final executed round.
    pub tau: u32,
    /// Maximum possible distance (in-range unmasked plan entries).
    pub active: u32,
}

/// Word-parallel Hamming counter stack for one query: `bplanes` counter
/// bits per candidate, laid out word-major (`planes[w * bplanes + b]`) so
/// the ripple-carry hot loop touches one contiguous run per plane word.
struct HammingCounters {
    planes: Vec<u64>,
    bplanes: usize,
    /// Words per counter bit-plane (`rows * pe_words`).
    words: usize,
    /// Uniform offset from columns whose miss plane was summarized `Full`.
    base: u32,
    /// Maximum possible distance (in-range unmasked plan entries).
    active: u32,
    /// Columns that actually entered the ripple-carry accumulation.
    accumulated: usize,
}

/// Ripple-carry add a miss plane into the counter stack: per word, a
/// carry chain over at most `bplanes` counter bits, exiting as soon as the
/// carry dies (the common case after the first couple of planes).
fn ripple_accumulate(planes: &mut [u64], bplanes: usize, miss: &[u64]) {
    for (w, &m) in miss.iter().enumerate() {
        let mut carry = m;
        if carry == 0 {
            continue;
        }
        let cnt = &mut planes[w * bplanes..(w + 1) * bplanes];
        for c in cnt {
            let t = *c & carry;
            *c ^= carry;
            carry = t;
            if carry == 0 {
                break;
            }
        }
        debug_assert_eq!(carry, 0, "counter stack overflow");
    }
}

/// [`ripple_accumulate`] with the miss plane formed on the fly as
/// `z | o` — the `KeyBit::Z` case (stored 0 and stored 1 both miss).
fn ripple_accumulate_pair(planes: &mut [u64], bplanes: usize, z: &[u64], o: &[u64]) {
    for (w, (&zw, &ow)) in z.iter().zip(o).enumerate() {
        let mut carry = zw | ow;
        if carry == 0 {
            continue;
        }
        let cnt = &mut planes[w * bplanes..(w + 1) * bplanes];
        for c in cnt {
            let t = *c & carry;
            *c ^= carry;
            carry = t;
            if carry == 0 {
                break;
            }
        }
        debug_assert_eq!(carry, 0, "counter stack overflow");
    }
}

impl HammingCounters {
    /// Counter value of the candidate at plane word `w`, bit `p`.
    fn value(&self, w: usize, p: usize) -> u32 {
        let cnt = &self.planes[w * self.bplanes..(w + 1) * self.bplanes];
        let mut v = 0u32;
        for (b, &c) in cnt.iter().enumerate() {
            v |= (((c >> p) & 1) as u32) << b;
        }
        v
    }

    /// Bit-sliced threshold compare: the `[row][pe_word]` mask of live
    /// candidates whose counter is ≤ `m`, written into `out`; returns the
    /// population count. One word-parallel pass over the counter stack —
    /// the hardware analog is a single multi-bit threshold search on the
    /// counter latches.
    fn le_mask_into(&self, live: &[u64], m: u32, out: &mut [u64]) -> usize {
        debug_assert_eq!(live.len(), self.words);
        let mut count = 0usize;
        if self.bplanes == 0 || m as u64 >= (1u64 << self.bplanes) - 1 {
            for (o, &l) in out.iter_mut().zip(live) {
                *o = l;
                count += l.count_ones() as usize;
            }
            return count;
        }
        for (w, (o, &l)) in out.iter_mut().zip(live).enumerate() {
            let cnt = &self.planes[w * self.bplanes..(w + 1) * self.bplanes];
            let mut eq = l;
            let mut gt = 0u64;
            for b in (0..self.bplanes).rev() {
                let c = cnt[b];
                if (m >> b) & 1 == 0 {
                    gt |= eq & c;
                    eq &= !c;
                } else {
                    eq &= c;
                }
            }
            let le = l & !gt;
            *o = le;
            count += le.count_ones() as usize;
        }
        count
    }
}

impl TcamSlab {
    /// Accumulate per-candidate miss counts for `plan` over the first
    /// `rows` rows into a word-parallel counter stack.
    ///
    /// Column pruning reuses the [`PlaneSummary`] caches: an `AllZero`
    /// miss plane contributes nothing and is skipped outright; a `Full`
    /// miss plane misses on *every* live candidate and becomes a uniform
    /// `+1` base offset — neither ever enters the ripple-carry product.
    /// The counter stack is sized by the columns that survive pruning.
    fn hamming_counters(&self, plan: &[(usize, KeyBit)], rows: usize) -> HammingCounters {
        assert!(rows <= self.rows, "row limit exceeds slab");
        let pw = self.pw;
        let words = rows * pw;
        let plane = self.plane_words();
        // Miss-plane source per surviving column: the `ones` plane for a
        // key `0`, the `zeros` plane for a key `1`, both for `Z`.
        enum Src {
            Zeros(usize),
            Ones(usize),
            Both(usize),
        }
        let mut srcs: Vec<Src> = Vec::new();
        let mut base = 0u32;
        let mut active = 0u32;
        for &(col, bit) in plan {
            if col >= self.cols || bit == KeyBit::Masked {
                continue;
            }
            active += 1;
            match bit {
                KeyBit::Zero => match self.osum[col] {
                    PlaneSummary::AllZero => {}
                    PlaneSummary::Full => base += 1,
                    PlaneSummary::Unknown => srcs.push(Src::Ones(col)),
                },
                KeyBit::One => match self.zsum[col] {
                    PlaneSummary::AllZero => {}
                    PlaneSummary::Full => base += 1,
                    PlaneSummary::Unknown => srcs.push(Src::Zeros(col)),
                },
                KeyBit::Z => match (self.zsum[col], self.osum[col]) {
                    (PlaneSummary::AllZero, PlaneSummary::AllZero) => {}
                    (PlaneSummary::Full, _) | (_, PlaneSummary::Full) => base += 1,
                    (PlaneSummary::AllZero, _) => srcs.push(Src::Ones(col)),
                    (_, PlaneSummary::AllZero) => srcs.push(Src::Zeros(col)),
                    _ => srcs.push(Src::Both(col)),
                },
                KeyBit::Masked => unreachable!("masked entries filtered above"),
            }
        }
        let bplanes = (usize::BITS - srcs.len().leading_zeros()) as usize;
        let mut planes = vec![0u64; words * bplanes];
        for s in &srcs {
            match *s {
                Src::Zeros(c) => ripple_accumulate(
                    &mut planes,
                    bplanes,
                    &self.zeros[c * plane..c * plane + words],
                ),
                Src::Ones(c) => ripple_accumulate(
                    &mut planes,
                    bplanes,
                    &self.ones[c * plane..c * plane + words],
                ),
                Src::Both(c) => ripple_accumulate_pair(
                    &mut planes,
                    bplanes,
                    &self.zeros[c * plane..c * plane + words],
                    &self.ones[c * plane..c * plane + words],
                ),
            }
        }
        HammingCounters {
            planes,
            bplanes,
            words,
            base,
            active,
            accumulated: srcs.len(),
        }
    }

    /// Word-parallel distances of every candidate `(pe, row)` in the first
    /// `rows` rows to the compiled plan, written to `out[pe * rows + row]`
    /// — bit-identical to [`crate::similarity::scalar_distances`] on each
    /// PE's array view.
    ///
    /// Distance is a function of *stored* state only (stuck-at bits are
    /// already enforced there); transient search misses do not apply — see
    /// the [`crate::similarity`] module docs.
    ///
    /// # Panics
    ///
    /// Panics if `rows` exceeds the slab's rows or `out` is not
    /// `pes * rows` long.
    pub fn hamming_into(&self, plan: &[(usize, KeyBit)], rows: usize, out: &mut [u32]) {
        assert_eq!(out.len(), self.pes * rows, "distance buffer size");
        let hc = self.hamming_counters(plan, rows);
        let pw = self.pw;
        for row in 0..rows {
            for wp in 0..pw {
                let w = row * pw + wp;
                let mut bits = self.live[w];
                while bits != 0 {
                    let p = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    let pe = wp * 64 + p;
                    out[pe * rows + row] = hc.base + hc.value(w, p);
                }
            }
        }
    }

    /// Progressive masked top-k search over the first `rows` rows: run
    /// threshold rounds with the engine-shared widening schedule
    /// ([`crate::similarity::round_tau`]) until at least `k` candidates
    /// fall within budget or the budget covers the maximum distance, then
    /// read the winners out of the final threshold mask only.
    ///
    /// Each round is one word-parallel counter-threshold pass plus a
    /// population count — low counter bits below the budget boundary are
    /// effectively `Masked`, which is what lets a round cost one search.
    /// The returned [`SlabTopk::hits`] hold *every* candidate within the
    /// final budget (at least `min(k, candidates)` of them), so a caller
    /// merging several slabs keeps exact global top-k semantics.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `rows` exceeds the slab's rows.
    pub fn hamming_topk(&self, plan: &[(usize, KeyBit)], rows: usize, k: usize) -> SlabTopk {
        assert!(k > 0, "top-k requires k >= 1");
        let hc = self.hamming_counters(plan, rows);
        let live = &self.live[..hc.words];
        let mut mask = vec![0u64; hc.words];
        let mut round_counts = Vec::new();
        let mut r = 1;
        let tau = loop {
            let tau = crate::similarity::round_tau(r);
            let count = if tau < hc.base {
                mask.fill(0);
                0
            } else {
                hc.le_mask_into(live, tau - hc.base, &mut mask)
            };
            round_counts.push(count);
            if count >= k || tau >= hc.active {
                break tau;
            }
            r += 1;
        };
        let pw = self.pw;
        let mut hits = Vec::new();
        for row in 0..rows {
            for wp in 0..pw {
                let w = row * pw + wp;
                let mut bits = mask[w];
                while bits != 0 {
                    let p = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    hits.push(SlabHit {
                        distance: hc.base + hc.value(w, p),
                        pe: (wp * 64 + p) as u32,
                        row: row as u32,
                    });
                }
            }
        }
        hits.sort_unstable();
        SlabTopk {
            hits,
            round_counts,
            tau,
            active: hc.active,
        }
    }

    /// Host words swept per column accumulation at this geometry and row
    /// limit — the denominator benchmarks use to report the distance
    /// kernel's words-per-nanosecond throughput.
    pub fn hamming_words_per_col(&self, rows: usize) -> usize {
        assert!(rows <= self.rows, "row limit exceeds slab");
        rows * self.pw
    }

    /// Columns of `plan` that survive `PlaneSummary` pruning and
    /// actually enter the ripple-carry accumulation — the column count
    /// benchmarks multiply by [`hamming_words_per_col`](Self::hamming_words_per_col)
    /// to report real words swept (pruned columns cost nothing on the
    /// host, though hardware still drives them; see the accounting note on
    /// `hyperap-arch`'s similarity module).
    pub fn hamming_accumulated_cols(&self, plan: &[(usize, KeyBit)], rows: usize) -> usize {
        self.hamming_counters(plan, rows).accumulated
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::SearchKey;

    /// A small slab + the equivalent per-PE arrays, with a mixed cell
    /// pattern loaded into both.
    fn seeded(pes: usize, rows: usize, cols: usize) -> (TcamSlab, Vec<TcamArray>) {
        let mut arrays: Vec<TcamArray> = (0..pes).map(|_| TcamArray::new(rows, cols)).collect();
        for (pe, array) in arrays.iter_mut().enumerate() {
            for row in 0..rows {
                for col in 0..cols {
                    let v = match (pe + 3 * row + 7 * col) % 3 {
                        0 => TernaryBit::Zero,
                        1 => TernaryBit::One,
                        _ => TernaryBit::X,
                    };
                    array.set_cell(row, col, v);
                }
            }
        }
        (TcamSlab::from_arrays(&arrays), arrays)
    }

    fn tag_pattern(slab: &TcamSlab, salt: usize) -> TagSlab {
        let mut t = TagSlab::zeros(slab.pes(), slab.rows());
        for pe in 0..slab.pes() {
            let tv =
                TagVector::from_bools((0..slab.rows()).map(|r| (r + pe + salt).is_multiple_of(3)));
            t.set_pe(pe, &tv);
        }
        t
    }

    #[test]
    fn pe_range_mask_sets_exactly_the_range() {
        assert_eq!(pe_range_mask(5, 1, 4), vec![0b1110]);
        assert_eq!(pe_range_mask(64, 0, 64), vec![!0]);
        assert_eq!(pe_range_mask(70, 60, 70), vec![!0 << 60, 0b111111]);
        assert_eq!(pe_range_mask(70, 0, 0), vec![0, 0]);
    }

    #[test]
    fn new_slab_is_all_zero() {
        let s = TcamSlab::new(3, 70, 5);
        for pe in 0..3 {
            for row in 0..70 {
                for col in 0..5 {
                    assert_eq!(s.cell(pe, row, col), TernaryBit::Zero);
                }
            }
        }
        assert_eq!(
            s,
            TcamSlab::from_arrays(&[
                TcamArray::new(70, 5),
                TcamArray::new(70, 5),
                TcamArray::new(70, 5)
            ])
        );
    }

    #[test]
    fn set_cell_round_trips_and_matches_array() {
        let mut s = TcamSlab::new(2, 66, 3);
        s.set_cell(1, 65, 2, TernaryBit::X);
        s.set_cell(0, 0, 0, TernaryBit::One);
        assert_eq!(s.cell(1, 65, 2), TernaryBit::X);
        assert_eq!(s.cell(0, 0, 0), TernaryBit::One);
        assert_eq!(s.cell(1, 64, 2), TernaryBit::Zero, "neighbor untouched");
        let arrays = s.to_arrays();
        assert_eq!(arrays[1].cell(65, 2), TernaryBit::X);
        assert_eq!(arrays[0].cell(0, 0), TernaryBit::One);
    }

    #[test]
    fn search_plan_multi_matches_per_array_search() {
        for pes in [4, 67] {
            let (slab, arrays) = seeded(pes, 70, 9);
            for key in ["10-1Z----", "---------", "ZZZZZZZZZ", "001-1-0Z1"] {
                let key = SearchKey::parse(key).unwrap();
                let plan = key.compile_plan();
                let mut out = TagSlab::zeros(pes, 70);
                slab.search_plan_multi_into(&plan, None, out.words_mut());
                for (pe, array) in arrays.iter().enumerate() {
                    assert_eq!(
                        out.to_tagvector(pe),
                        array.search(&key),
                        "pes {pes} pe {pe} key {key}"
                    );
                }
            }
        }
    }

    #[test]
    fn search_plan_multi_respects_pe_subranges() {
        let (slab, arrays) = seeded(5, 33, 6);
        let key = SearchKey::parse("1-0Z--").unwrap();
        let plan = key.compile_plan();
        let mut out = TagSlab::zeros(5, 33);
        let sel = pe_range_mask(5, 1, 4);
        slab.search_plan_multi_into(&plan, Some(&sel), out.words_mut());
        for (pe, array) in arrays.iter().enumerate().take(4).skip(1) {
            assert_eq!(out.to_tagvector(pe), array.search(&key));
        }
        assert_eq!(out.count(0), 0, "PE 0 outside the range stays clear");
        assert_eq!(out.count(4), 0, "PE 4 outside the range stays clear");
    }

    #[test]
    fn search_plan_multi_skips_masked_and_out_of_range_entries() {
        let (slab, _) = seeded(2, 16, 4);
        let mut out = TagSlab::zeros(2, 16);
        slab.search_plan_multi_into(
            &[(9, KeyBit::One), (0, KeyBit::Masked)],
            None,
            out.words_mut(),
        );
        assert_eq!(out.count(0) + out.count(1), 32, "no-op plan matches all");
    }

    #[test]
    fn search_plan_multi_or_into_accumulates_per_array() {
        let (slab, arrays) = seeded(5, 70, 9);
        let k1 = SearchKey::parse("10-1Z----").unwrap();
        let k2 = SearchKey::parse("-----01--").unwrap();
        let mut out = tag_pattern(&slab, 3);
        let before = out.clone();
        let sel = pe_range_mask(5, 1, 4);
        slab.search_plan_multi_or_into(&k1.compile_plan(), Some(&sel), out.words_mut());
        slab.search_plan_multi_or_into(&k2.compile_plan(), None, out.words_mut());
        for (pe, array) in arrays.iter().enumerate() {
            let mut expect = before.to_tagvector(pe);
            if (1..4).contains(&pe) {
                expect.accumulate(&array.search(&k1));
            }
            expect.accumulate(&array.search(&k2));
            assert_eq!(out.to_tagvector(pe), expect, "pe {pe}");
        }
    }

    #[test]
    fn tag_slab_clear_restores_zeros() {
        let mut t = TagSlab::zeros(70, 9);
        t.words_mut()[0] = 0x5555;
        t.words_mut()[5] = 1;
        t.clear();
        assert_eq!(t, TagSlab::zeros(70, 9));
    }

    #[test]
    fn reset_restores_fresh_state() {
        let (mut slab, _) = seeded(4, 70, 5);
        let tags = tag_pattern(&slab, 1);
        slab.write_column_multi(3, TernaryBit::One, tags.words(), None);
        slab.write_column_multi(0, TernaryBit::X, tags.words(), None);
        slab.reset();
        let fresh = TcamSlab::new(4, 70, 5);
        assert_eq!(slab, fresh);
        // The summaries are back to the exact fresh state too: a search on
        // a reset slab takes the same pruned paths as on a new one.
        let plan = SearchKey::parse("1-0Z-").unwrap().compile_plan();
        let mut out = TagSlab::zeros(4, 70);
        slab.search_plan_multi_into(&plan, None, out.words_mut());
        let mut out_fresh = TagSlab::zeros(4, 70);
        fresh.search_plan_multi_into(&plan, None, out_fresh.words_mut());
        assert_eq!(out, out_fresh);
    }

    #[test]
    fn reset_reseeds_fault_state() {
        let model = FaultModel {
            seed: 77,
            stuck_per_million: 20_000,
            miss_per_million: 1_000,
            endurance_limit: Some(4),
        };
        let mut slab = TcamSlab::new(3, 40, 6);
        slab.attach_fault(model, 2, 64);
        let mut fresh = TcamSlab::new(3, 40, 6);
        fresh.attach_fault(model, 2, 64);
        // Mutate storage, wear, and fault bookkeeping past the initial
        // state, including a latched failure.
        let tags = tag_pattern(&slab, 2);
        for _ in 0..5 {
            slab.write_column_multi(1, TernaryBit::One, tags.words(), None);
        }
        slab.advance_epoch();
        assert!(slab.service_endurance().is_err() || slab.fault().is_some());
        slab.reset();
        assert_eq!(slab, fresh);
        assert_eq!(slab.fault().unwrap().epoch, 0);
        assert!(slab.fault().unwrap().failed.iter().all(|f| f.is_none()));
    }

    #[test]
    fn write_column_multi_matches_per_array_write() {
        for value in [TernaryBit::Zero, TernaryBit::One, TernaryBit::X] {
            let (mut slab, mut arrays) = seeded(4, 70, 5);
            let tags = tag_pattern(&slab, 1);
            let sel = pe_range_mask(4, 1, 4);
            slab.write_column_multi(3, value, tags.words(), Some(&sel));
            for (pe, array) in arrays.iter_mut().enumerate().skip(1) {
                array.write_column(3, value, &tags.to_tagvector(pe));
            }
            assert_eq!(slab.to_arrays(), arrays, "value {value:?}");
            assert_eq!(slab.pe_wear(0)[3], 0, "PE outside the range unworn");
            assert_eq!(slab.pe_wear(2)[3], 1);
        }
    }

    #[test]
    fn write_column_multi_wears_even_with_empty_tags() {
        let (mut slab, _) = seeded(2, 16, 4);
        let empty = TagSlab::zeros(2, 16);
        slab.write_column_multi(1, TernaryBit::One, empty.words(), None);
        assert_eq!(slab.pe_wear(0)[1], 1);
        assert_eq!(slab.pe_wear(1)[1], 1);
    }

    #[test]
    fn copy_column_multi_matches_per_array_copy() {
        let (mut slab, mut arrays) = seeded(3, 66, 7);
        slab.copy_column_multi(2, 5, None);
        for array in &mut arrays {
            array.copy_column(2, 5);
        }
        assert_eq!(slab.to_arrays(), arrays);
        slab.copy_column_multi(4, 4, None); // src == dst: no-op
        assert_eq!(slab.to_arrays(), arrays);
    }

    #[test]
    fn copy_column_multi_respects_pe_subranges() {
        let (mut slab, arrays) = seeded(3, 20, 4);
        let sel = pe_range_mask(3, 1, 2);
        slab.copy_column_multi(0, 3, Some(&sel));
        // Copy downward too, to exercise the src > dst split.
        slab.copy_column_multi(3, 1, Some(&pe_range_mask(3, 2, 3)));
        for row in 0..20 {
            assert_eq!(slab.cell(1, row, 3), arrays[1].cell(row, 0));
            assert_eq!(
                slab.cell(0, row, 3),
                arrays[0].cell(row, 3),
                "PE 0 untouched"
            );
            assert_eq!(
                slab.cell(2, row, 3),
                arrays[2].cell(row, 3),
                "PE 2 untouched"
            );
            assert_eq!(
                slab.cell(2, row, 1),
                arrays[2].cell(row, 3),
                "downward copy"
            );
        }
    }

    #[test]
    fn write_encoded_multi_matches_cell_by_cell_encoder() {
        let (mut slab, arrays) = seeded(3, 70, 6);
        let latch = tag_pattern(&slab, 0);
        let tags = tag_pattern(&slab, 5);
        slab.write_encoded_multi(2, latch.words(), tags.words(), None);
        // Reference: the per-row encoder of HyperPe::write_encoded.
        for (pe, array) in arrays.iter().enumerate() {
            let mut expect = array.clone();
            for row in 0..70 {
                let cells = crate::encoding::encode_pair(
                    latch.to_tagvector(pe).get(row),
                    tags.to_tagvector(pe).get(row),
                );
                expect.set_cell(row, 2, cells[0]);
                expect.set_cell(row, 3, cells[1]);
            }
            expect.note_write(2);
            expect.note_write(3);
            assert_eq!(slab.to_array(pe), expect, "pe {pe}");
        }
    }

    #[test]
    fn write_encoded_multi_respects_selection() {
        let (mut slab, arrays) = seeded(5, 33, 6);
        let latch = tag_pattern(&slab, 0);
        let tags = tag_pattern(&slab, 5);
        let sel = pe_range_mask(5, 2, 4);
        slab.write_encoded_multi(1, latch.words(), tags.words(), Some(&sel));
        for (pe, array) in arrays.iter().enumerate() {
            if !(2..4).contains(&pe) {
                assert_eq!(slab.to_array(pe), *array, "unselected pe {pe} untouched");
                continue;
            }
            let mut expect = array.clone();
            for row in 0..33 {
                let cells = crate::encoding::encode_pair(
                    latch.to_tagvector(pe).get(row),
                    tags.to_tagvector(pe).get(row),
                );
                expect.set_cell(row, 1, cells[0]);
                expect.set_cell(row, 2, cells[1]);
            }
            expect.note_write(1);
            expect.note_write(2);
            assert_eq!(slab.to_array(pe), expect, "pe {pe}");
        }
    }

    #[test]
    fn conversion_round_trips_with_wear() {
        let (mut slab, _) = seeded(4, 33, 5);
        let tags = tag_pattern(&slab, 2);
        slab.write_column_multi(0, TernaryBit::One, tags.words(), None);
        slab.write_column_multi(
            0,
            TernaryBit::X,
            tags.words(),
            Some(&pe_range_mask(4, 2, 3)),
        );
        let arrays = slab.to_arrays();
        assert_eq!(arrays[0].column_wear()[0], 1);
        assert_eq!(arrays[2].column_wear()[0], 2);
        assert_eq!(TcamSlab::from_arrays(&arrays), slab);
    }

    /// Every kernel on a slab wider than one 64-PE word, with a ragged
    /// (non-contiguous) selection, against the per-array reference.
    #[test]
    fn wide_slab_kernels_match_per_array_with_ragged_selection() {
        let (mut slab, mut arrays) = seeded(67, 70, 9);
        let mut sel = vec![0u64; 2];
        let picked: Vec<usize> = (0..67).filter(|pe| pe % 3 != 1).collect();
        for &pe in &picked {
            sel[pe / 64] |= 1u64 << (pe % 64);
        }
        let key = SearchKey::parse("10-1Z----").unwrap();
        let plan = key.compile_plan();
        let mut tags = tag_pattern(&slab, 1);
        slab.search_plan_multi_into(&plan, Some(&sel), tags.words_mut());
        slab.write_column_multi(2, TernaryBit::One, tags.words(), Some(&sel));
        slab.copy_column_multi(6, 3, Some(&sel));
        let latch = tag_pattern(&slab, 4);
        slab.write_encoded_multi(4, latch.words(), tags.words(), Some(&sel));
        slab.search_write_multi(
            &[&plan],
            false,
            &[(7, TernaryBit::Zero)],
            tags.words_mut(),
            Some(&sel),
        );
        let reference = tag_pattern(&TcamSlab::new(67, 70, 9), 1);
        for (pe, array) in arrays.iter_mut().enumerate() {
            if picked.binary_search(&pe).is_err() {
                continue;
            }
            let mut t = array.search(&key);
            array.write_column(2, TernaryBit::One, &t);
            array.copy_column(6, 3);
            let lv = latch.to_tagvector(pe);
            for row in 0..70 {
                let cells = crate::encoding::encode_pair(lv.get(row), t.get(row));
                array.set_cell(row, 4, cells[0]);
                array.set_cell(row, 5, cells[1]);
            }
            array.note_write(4);
            array.note_write(5);
            array.search_write_multi(&[&plan], false, &[(7, TernaryBit::Zero)], &mut t);
            assert_eq!(tags.to_tagvector(pe), t, "pe {pe} tags");
        }
        for (pe, array) in arrays.iter().enumerate() {
            if picked.binary_search(&pe).is_ok() {
                assert_eq!(slab.to_array(pe), *array, "selected pe {pe}");
            } else {
                assert_eq!(slab.to_array(pe), *array, "unselected pe {pe} untouched");
                assert_eq!(
                    tags.to_tagvector(pe),
                    reference.to_tagvector(pe),
                    "unselected pe {pe} tags untouched"
                );
            }
        }
    }

    #[test]
    fn bytes_round_trip() {
        for pes in [3, 67] {
            let (mut slab, _) = seeded(pes, 70, 4);
            let tags = tag_pattern(&slab, 3);
            slab.write_column_multi(1, TernaryBit::Zero, tags.words(), None);
            let bytes = slab.to_bytes();
            assert_eq!(TcamSlab::from_bytes(&bytes), Ok(slab), "pes {pes}");
        }
    }

    #[test]
    fn from_bytes_rejects_malformed_images() {
        let slab = TcamSlab::new(2, 16, 3);
        let bytes = slab.to_bytes();
        assert_eq!(
            TcamSlab::from_bytes(&bytes[..3]),
            Err(SlabDecodeError::Truncated)
        );
        assert_eq!(
            TcamSlab::from_bytes(&bytes[..bytes.len() - 1]),
            Err(SlabDecodeError::Truncated)
        );
        let mut versioned = bytes.clone();
        versioned[0] = 9;
        assert_eq!(
            TcamSlab::from_bytes(&versioned),
            Err(SlabDecodeError::BadVersion(9))
        );
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert_eq!(
            TcamSlab::from_bytes(&trailing),
            Err(SlabDecodeError::TrailingBytes(1))
        );
        let mut zeroed = bytes;
        zeroed[1] = 0;
        zeroed[2] = 0;
        assert_eq!(
            TcamSlab::from_bytes(&zeroed),
            Err(SlabDecodeError::BadGeometry)
        );
    }

    /// The single-sweep fused kernel must equal the unfused composition:
    /// searches (first overwriting, rest accumulating), then per-column
    /// writes — state, tags, and wear.
    #[test]
    fn search_write_multi_matches_unfused_kernel_sequence() {
        for acc in [false, true] {
            let (mut fused, _) = seeded(4, 70, 9);
            let mut unfused = fused.clone();
            let k1 = SearchKey::parse("10-1Z----").unwrap().compile_plan();
            let k2 = SearchKey::parse("-----01--").unwrap().compile_plan();
            let writes = [(2usize, TernaryBit::One), (7usize, TernaryBit::X)];
            let sel = pe_range_mask(4, 1, 4);
            let mut tags = tag_pattern(&fused, 1);
            let mut expect_tags = tags.clone();

            fused.search_write_multi(&[&k1, &k2], acc, &writes, tags.words_mut(), Some(&sel));

            let mut scratch = TagSlab::zeros(4, 70);
            unfused.search_plan_multi_into(&k1, Some(&sel), scratch.words_mut());
            if acc {
                expect_tags.accumulate_from(&scratch, Some(&sel));
            } else {
                expect_tags.copy_from_masked(&scratch, Some(&sel));
            }
            unfused.search_plan_multi_into(&k2, Some(&sel), scratch.words_mut());
            expect_tags.accumulate_from(&scratch, Some(&sel));
            for (col, value) in writes {
                unfused.write_column_multi(col, value, expect_tags.words(), Some(&sel));
            }
            assert_eq!(tags, expect_tags, "acc {acc}");
            assert_eq!(fused, unfused, "acc {acc}");
            assert_eq!(fused.pe_wear(2)[2], 1);
            assert_eq!(fused.pe_wear(0)[2], 0, "outside the PE range");
        }
    }

    /// The monomorphized fast path (no accumulate, full selection, one or
    /// two plans of ≤ 4 entries) across every dispatch arm, against the
    /// unfused sequence — on both a full 64-PE slab and a ragged 67-PE one.
    #[test]
    fn search_write_multi_fast_path_matches_unfused_for_all_shapes() {
        let keys = [
            "---------",
            "1--------",
            "10-------",
            "10-1-----",
            "10-1Z----",
        ];
        for pes in [64, 67] {
            for n1 in 0..=4usize {
                for n2 in 0..=4usize {
                    let (mut fused, _) = seeded(pes, 70, 9);
                    let mut unfused = fused.clone();
                    let k1 = SearchKey::parse(keys[n1]).unwrap().compile_plan();
                    let k2 = SearchKey::parse(keys[n2]).unwrap().compile_plan();
                    let plans: Vec<&[(usize, KeyBit)]> = if n2 == 0 && n1 % 2 == 0 {
                        vec![&k1] // exercise single-plan arms too
                    } else {
                        vec![&k1, &k2]
                    };
                    let writes = [(3usize, TernaryBit::One), (8usize, TernaryBit::Zero)];
                    let mut tags = tag_pattern(&fused, 2);
                    fused.search_write_multi(&plans, false, &writes, tags.words_mut(), None);

                    let mut expect = TagSlab::zeros(pes, 70);
                    let mut scratch = TagSlab::zeros(pes, 70);
                    for (pi, plan) in plans.iter().enumerate() {
                        unfused.search_plan_multi_into(plan, None, scratch.words_mut());
                        if pi == 0 {
                            expect.copy_from_masked(&scratch, None);
                        } else {
                            expect.accumulate_from(&scratch, None);
                        }
                    }
                    for (col, value) in writes {
                        unfused.write_column_multi(col, value, expect.words(), None);
                    }
                    assert_eq!(tags, expect, "pes {pes} n1 {n1} n2 {n2}");
                    assert_eq!(fused, unfused, "pes {pes} n1 {n1} n2 {n2}");
                }
            }
        }
    }

    /// A write column that also appears in a plan must behave like the
    /// unfused sequence (search completes before the store).
    #[test]
    fn search_write_multi_handles_write_column_in_plan() {
        let (mut fused, _) = seeded(3, 33, 5);
        let mut unfused = fused.clone();
        let plan = vec![(1usize, KeyBit::Zero), (3usize, KeyBit::One)];
        let mut tags = TagSlab::zeros(3, 33);
        fused.search_write_multi(
            &[&plan],
            false,
            &[(1, TernaryBit::One)],
            tags.words_mut(),
            None,
        );
        let mut expect = TagSlab::zeros(3, 33);
        unfused.search_plan_multi_into(&plan, None, expect.words_mut());
        unfused.write_column_multi(1, TernaryBit::One, expect.words(), None);
        assert_eq!(tags, expect);
        assert_eq!(fused, unfused);
    }

    #[test]
    fn search_narrow_multi_equals_init_free_plan_search() {
        let (slab, _) = seeded(3, 70, 6);
        let full = SearchKey::parse("1-0Z--").unwrap().compile_plan();
        let (prefix, rest) = full.split_at(1);
        let mut whole = TagSlab::zeros(3, 70);
        slab.search_plan_multi_into(&full, None, whole.words_mut());
        let mut narrowed = TagSlab::zeros(3, 70);
        slab.search_plan_multi_into(prefix, None, narrowed.words_mut());
        slab.search_narrow_multi(rest, None, narrowed.words_mut());
        assert_eq!(narrowed, whole);
    }

    #[test]
    fn tag_slab_bytes_round_trip() {
        let slab = TcamSlab::new(3, 70, 2);
        let tags = tag_pattern(&slab, 6);
        assert_eq!(TagSlab::from_bytes(&tags.to_bytes()), Ok(tags));
    }

    #[test]
    fn tag_slab_from_bytes_rejects_malformed_images() {
        let slab = TcamSlab::new(2, 70, 2);
        let tags = tag_pattern(&slab, 0);
        let bytes = tags.to_bytes();
        assert_eq!(
            TagSlab::from_bytes(&bytes[..2]),
            Err(SlabDecodeError::Truncated)
        );
        assert_eq!(
            TagSlab::from_bytes(&bytes[..bytes.len() - 1]),
            Err(SlabDecodeError::Truncated)
        );
        let mut versioned = bytes.clone();
        versioned[0] = 7;
        assert_eq!(
            TagSlab::from_bytes(&versioned),
            Err(SlabDecodeError::BadVersion(7))
        );
        let mut trailing = bytes.clone();
        trailing.push(1);
        assert_eq!(
            TagSlab::from_bytes(&trailing),
            Err(SlabDecodeError::TrailingBytes(1))
        );
        let mut zeroed = bytes.clone();
        zeroed[1] = 0;
        zeroed[2] = 0;
        assert_eq!(
            TagSlab::from_bytes(&zeroed),
            Err(SlabDecodeError::BadGeometry)
        );
        // 70 rows → the last 58 bits of each PE's second block are padding
        // and must decode as zero.
        let mut padded = bytes;
        let last = padded.len() - 1;
        padded[last] |= 0x80;
        assert_eq!(
            TagSlab::from_bytes(&padded),
            Err(SlabDecodeError::BadGeometry)
        );
    }

    #[test]
    fn tag_slab_reductions_match_tagvector() {
        let slab = TcamSlab::new(3, 70, 2);
        let tags = tag_pattern(&slab, 4);
        for pe in 0..3 {
            let tv = tags.to_tagvector(pe);
            assert_eq!(tags.count(pe), tv.count());
            assert_eq!(tags.first_index(pe), tv.first_index());
        }
        let empty = TagSlab::zeros(3, 70);
        assert_eq!(empty.first_index(1), None);
    }

    #[test]
    fn tag_slab_accumulate_and_copy_masked() {
        let slab = TcamSlab::new(4, 40, 2);
        let a0 = tag_pattern(&slab, 0);
        let b = tag_pattern(&slab, 1);
        let mut acc = a0.clone();
        acc.accumulate_from(&b, Some(&pe_range_mask(4, 1, 3)));
        for pe in [1, 2] {
            let mut expect = a0.to_tagvector(pe);
            expect.accumulate(&b.to_tagvector(pe));
            assert_eq!(acc.to_tagvector(pe), expect);
        }
        assert_eq!(acc.to_tagvector(0), a0.to_tagvector(0), "outside range");
        assert_eq!(acc.to_tagvector(3), a0.to_tagvector(3), "outside range");
        let mut copy = a0.clone();
        copy.copy_from_masked(&b, Some(&pe_range_mask(4, 0, 2)));
        assert_eq!(copy.to_tagvector(0), b.to_tagvector(0));
        assert_eq!(copy.to_tagvector(2), a0.to_tagvector(2));
    }

    #[test]
    fn tag_slab_broadcast_matches_per_pe_set() {
        for pes in [5, 67] {
            let slab = TcamSlab::new(pes, 40, 2);
            let mut t = tag_pattern(&slab, 0);
            let tv = TagVector::from_bools((0..40).map(|r| r % 4 == 1));
            let sel = pe_range_mask(pes, 1, pes - 1);
            let mut expect = t.clone();
            for pe in 1..pes - 1 {
                expect.set_pe(pe, &tv);
            }
            t.broadcast(&tv, Some(&sel));
            assert_eq!(t, expect, "pes {pes} masked broadcast");
            t.broadcast(&tv, None);
            for pe in 0..pes {
                assert_eq!(t.to_tagvector(pe), tv, "pes {pes} pe {pe} full broadcast");
            }
        }
    }

    #[test]
    fn tag_slab_pe_blocks_round_trip() {
        let slab = TcamSlab::new(67, 70, 2);
        let t = tag_pattern(&slab, 3);
        let mut blocks = vec![0u64; t.blocks_per_pe()];
        let mut copy = TagSlab::zeros(67, 70);
        for pe in 0..67 {
            t.pe_blocks_into(pe, &mut blocks);
            assert_eq!(blocks, t.to_tagvector(pe).blocks());
            copy.set_pe_blocks(pe, &blocks);
        }
        assert_eq!(copy, t);
    }

    #[test]
    #[should_panic(expected = "word count mismatch")]
    fn search_output_size_mismatch_panics() {
        let slab = TcamSlab::new(2, 16, 2);
        let mut out = vec![0u64; 1];
        slab.search_plan_multi_into(&[], None, &mut out);
    }

    #[test]
    #[should_panic(expected = "geometry mismatch")]
    fn from_arrays_rejects_mixed_rows() {
        TcamSlab::from_arrays(&[TcamArray::new(4, 4), TcamArray::new(5, 4)]);
    }

    /// Regression: converting heterogeneous-width arrays into a slab used
    /// to clamp every PE's wear copy to the narrowest width, silently
    /// dropping wear (and cells) beyond it on the wider PEs.
    #[test]
    fn from_arrays_keeps_wear_beyond_the_narrowest_pe() {
        let mut narrow = TcamArray::new(40, 4);
        let mut wide = TcamArray::new(40, 6);
        narrow.set_cell(3, 3, TernaryBit::One);
        wide.set_cell(7, 5, TernaryBit::X);
        narrow.note_write(3);
        for _ in 0..5 {
            wide.note_write(5);
        }
        let slab = TcamSlab::from_arrays(&[narrow.clone(), wide.clone()]);
        assert_eq!(slab.cols(), 6, "slab width is the widest PE");
        assert_eq!(slab.pe_wear(0)[3], 1);
        assert_eq!(slab.pe_wear(1)[5], 5, "wear beyond the narrow PE survives");
        assert_eq!(slab.cell(1, 7, 5), TernaryBit::X);
        let back = slab.to_arrays();
        assert_eq!(back[1], wide);
        // The narrow PE comes back widened; its original columns are intact
        // and the padding columns are fresh.
        assert_eq!(back[0].cols(), 6);
        assert_eq!(back[0].cell(3, 3), TernaryBit::One);
        assert_eq!(back[0].column_wear()[3], 1);
        assert_eq!(back[0].column_wear()[4], 0);
        assert_eq!(back[0].cell(0, 5), TernaryBit::Zero);
        assert_eq!(TcamSlab::from_arrays(&back), slab, "round trip is stable");
    }

    /// A faulty model attached at matching PE offsets must leave the slab
    /// kernels bit-identical to the per-array kernels: same cells, same
    /// tags, same wear, same remap bookkeeping after endurance service.
    #[test]
    fn fault_kernels_match_per_array_fault_kernels() {
        let model = FaultModel {
            seed: 0xFA111,
            stuck_per_million: 40_000,
            miss_per_million: 30_000,
            endurance_limit: Some(2),
        };
        let (mut slab, mut arrays) = seeded(3, 70, 6);
        slab.attach_fault(model, 2, 0);
        for (pe, array) in arrays.iter_mut().enumerate() {
            array.attach_fault(model, 2, pe);
        }
        assert_eq!(slab.to_arrays(), arrays, "attachment alone is identical");

        let key = SearchKey::parse("10-1Z-").unwrap();
        let plan = key.compile_plan();
        let mut tags = TagSlab::zeros(3, 70);
        slab.search_plan_multi_into(&plan, None, tags.words_mut());
        for (pe, array) in arrays.iter().enumerate() {
            assert_eq!(tags.to_tagvector(pe), array.search(&key), "pe {pe}");
        }

        slab.write_column_multi(2, TernaryBit::One, tags.words(), None);
        slab.search_write_multi(
            &[&plan],
            false,
            &[(4, TernaryBit::Zero)],
            tags.words_mut(),
            None,
        );
        for (pe, array) in arrays.iter_mut().enumerate() {
            let tv = tags.to_tagvector(pe);
            let mut search = array.search(&key);
            array.write_column(2, TernaryBit::One, &search);
            array.search_write_multi(&[&plan], false, &[(4, TernaryBit::Zero)], &mut search);
            assert_eq!(tv, search, "pe {pe} fused tags");
        }
        assert_eq!(slab.to_arrays(), arrays, "after fault-gated kernels");

        // New epoch re-derives the transient miss set on both backends.
        slab.advance_epoch();
        for array in &mut arrays {
            array.advance_epoch();
        }
        let mut tags2 = TagSlab::zeros(3, 70);
        slab.search_plan_multi_into(&plan, None, tags2.words_mut());
        for (pe, array) in arrays.iter().enumerate() {
            assert_eq!(
                tags2.to_tagvector(pe),
                array.search(&key),
                "pe {pe} epoch 1"
            );
        }

        // Endurance service retires worn columns identically.
        let slab_res = slab.service_endurance();
        let mut array_res = Ok(());
        for array in &mut arrays {
            if let Err(e) = array.service_endurance() {
                array_res = Err(e);
                break;
            }
        }
        assert_eq!(slab_res, array_res);
        assert_eq!(slab.to_arrays(), arrays, "after endurance service");
    }

    #[test]
    fn fault_bytes_round_trip_uses_version_two() {
        let (mut slab, _) = seeded(2, 70, 4);
        assert_eq!(slab.to_bytes()[0], TcamSlab::FORMAT_VERSION);
        slab.attach_fault(
            FaultModel {
                seed: 99,
                stuck_per_million: 25_000,
                miss_per_million: 10_000,
                endurance_limit: Some(1),
            },
            1,
            5,
        );
        let tags = tag_pattern(&slab, 2);
        slab.write_column_multi(1, TernaryBit::One, tags.words(), None);
        slab.service_endurance().expect("one spare per PE");
        assert!(
            slab.fault().unwrap().retired.iter().any(|r| !r.is_empty()),
            "the write plus limit 1 must retire a column"
        );
        let bytes = slab.to_bytes();
        assert_eq!(bytes[0], TcamSlab::FORMAT_VERSION_FAULT);
        assert_eq!(TcamSlab::from_bytes(&bytes), Ok(slab));
        // A truncated fault payload is rejected, not misread.
        assert_eq!(
            TcamSlab::from_bytes(&bytes[..bytes.len() - 3]),
            Err(SlabDecodeError::Truncated)
        );
    }

    /// Distances of every `(pe, row)` candidate from the scalar per-PE
    /// reference, in the `hamming_into` layout.
    fn reference_distances(
        arrays: &[TcamArray],
        plan: &[(usize, KeyBit)],
        rows: usize,
    ) -> Vec<u32> {
        arrays
            .iter()
            .flat_map(|a| crate::similarity::scalar_distances(a, plan, rows))
            .collect()
    }

    #[test]
    fn hamming_matches_scalar_reference_across_word_boundary() {
        let (slab, arrays) = seeded(70, 20, 24);
        let key = SearchKey::parse("01Z-01Z-01Z-01Z-01Z-01Z-").unwrap();
        let plan = key.compile_plan();
        for rows in [1, 7, 20] {
            let mut got = vec![u32::MAX; 70 * rows];
            slab.hamming_into(&plan, rows, &mut got);
            assert_eq!(got, reference_distances(&arrays, &plan, rows));
        }
    }

    #[test]
    fn hamming_pruning_paths_stay_exact() {
        // A fresh slab stores all zeros: `zsum` is Full and `osum` is
        // AllZero for every column, so a key of 1s rides the base-offset
        // path and a key of 0s the skip path — neither touches a counter.
        let slab = TcamSlab::new(3, 5, 8);
        let ones_plan = SearchKey::parse("11111111").unwrap().compile_plan();
        let zeros_plan = SearchKey::parse("00000000").unwrap().compile_plan();
        let mut d = vec![0u32; 3 * 5];
        slab.hamming_into(&ones_plan, 5, &mut d);
        assert!(d.iter().all(|&x| x == 8), "all-ones key misses every cell");
        slab.hamming_into(&zeros_plan, 5, &mut d);
        assert!(
            d.iter().all(|&x| x == 0),
            "all-zeros key matches every cell"
        );
        // The top-k on the base-offset path still reports exact distances
        // and a schedule consistent with the shared rule.
        let topk = slab.hamming_topk(&ones_plan, 5, 2);
        assert_eq!(topk.hits.len(), 15, "uniform distances: all within τ");
        assert!(topk.hits.iter().all(|h| h.distance == 8));
        assert_eq!(topk.round_counts, vec![0, 0, 0, 0, 15]);
        assert_eq!(topk.tau, 15);
    }

    #[test]
    fn topk_agrees_with_shared_schedule_and_distances() {
        let (slab, arrays) = seeded(70, 20, 24);
        let key = SearchKey::parse("0101Z-0101Z-0101Z-0101Z-").unwrap();
        let plan = key.compile_plan();
        let rows = 20;
        let all = reference_distances(&arrays, &plan, rows);
        let active = crate::similarity::active_entries(&plan, 24);
        for k in [1, 3, 64, 2000] {
            let topk = slab.hamming_topk(&plan, rows, k);
            let sched = crate::similarity::topk_schedule(&all, active, k);
            assert_eq!(topk.round_counts.len(), sched.rounds);
            assert_eq!(topk.tau, sched.tau);
            assert_eq!(topk.active, active);
            // Hits are exactly the candidates within the final budget,
            // sorted ascending with the (pe, row) tie-break.
            let mut expect: Vec<SlabHit> = all
                .iter()
                .enumerate()
                .filter(|&(_, &d)| d <= sched.tau)
                .map(|(i, &d)| SlabHit {
                    distance: d,
                    pe: (i / rows) as u32,
                    row: (i % rows) as u32,
                })
                .collect();
            expect.sort_unstable();
            assert_eq!(topk.hits, expect);
            assert!(topk.hits.len() >= k.min(all.len()));
        }
    }

    #[test]
    fn zero_distance_agrees_with_search() {
        // A candidate is at distance 0 exactly when a plain search of the
        // same plan tags it (fault-free: searches start from `live`).
        let (slab, _) = seeded(5, 16, 12);
        let key = SearchKey::parse("01Z-01Z-01Z-").unwrap();
        let plan = key.compile_plan();
        let mut d = vec![0u32; 5 * 16];
        slab.hamming_into(&plan, 16, &mut d);
        let mut tags = vec![0u64; slab.plane_words()];
        slab.search_plan_multi_into(&plan, None, &mut tags);
        for pe in 0..5 {
            for row in 0..16 {
                let tagged = tags[row * slab.pe_words() + pe / 64] >> (pe % 64) & 1 == 1;
                assert_eq!(d[pe * 16 + row] == 0, tagged, "pe {pe} row {row}");
            }
        }
    }

    #[test]
    fn stuck_cells_perturb_distances_identically() {
        let model = FaultModel {
            seed: 0xD157,
            stuck_per_million: 150_000,
            miss_per_million: 250_000, // transient misses must NOT affect distances
            endurance_limit: None,
        };
        let pes = 70;
        let (rows, cols) = (12, 16);
        let mut slab = TcamSlab::new(pes, rows, cols);
        slab.attach_fault(model, 2, 9);
        let mut arrays: Vec<TcamArray> = (0..pes).map(|_| TcamArray::new(rows, cols)).collect();
        for (s, a) in arrays.iter_mut().enumerate() {
            a.attach_fault(model, 2, 9 + s);
        }
        for (pe, array) in arrays.iter_mut().enumerate() {
            for row in 0..rows {
                for col in 0..cols {
                    let v = match (5 * pe + 3 * row + 7 * col) % 3 {
                        0 => TernaryBit::Zero,
                        1 => TernaryBit::One,
                        _ => TernaryBit::X,
                    };
                    slab.set_cell(pe, row, col, v);
                    array.set_cell(row, col, v);
                }
            }
        }
        let key = SearchKey::parse("01Z-01Z-01Z-01Z-").unwrap();
        let plan = key.compile_plan();
        let mut got = vec![0u32; pes * rows];
        slab.hamming_into(&plan, rows, &mut got);
        assert_eq!(got, reference_distances(&arrays, &plan, rows));
        // The stuck pattern is dense enough that it actually moved some
        // distance away from the fault-free value.
        let (ideal_slab, ideal_arrays) = {
            let mut s = TcamSlab::new(pes, rows, cols);
            let mut ars: Vec<TcamArray> = (0..pes).map(|_| TcamArray::new(rows, cols)).collect();
            for (pe, ar) in ars.iter_mut().enumerate() {
                for row in 0..rows {
                    for col in 0..cols {
                        let v = match (5 * pe + 3 * row + 7 * col) % 3 {
                            0 => TernaryBit::Zero,
                            1 => TernaryBit::One,
                            _ => TernaryBit::X,
                        };
                        s.set_cell(pe, row, col, v);
                        ar.set_cell(row, col, v);
                    }
                }
            }
            (s, ars)
        };
        let mut ideal = vec![0u32; pes * rows];
        ideal_slab.hamming_into(&plan, rows, &mut ideal);
        assert_eq!(ideal, reference_distances(&ideal_arrays, &plan, rows));
        assert_ne!(got, ideal, "seeded stuck cells must perturb distances");
    }
}
