//! Atomic, incremental, crash-safe checkpoint/restore for
//! [`SlabMachine`] state — the durability substrate for sharded scale-out
//! and long-horizon wear studies (DESIGN.md §12, ROADMAP item 4).
//!
//! # Commit protocol
//!
//! A checkpoint under a prefix `p` is a set of content-addressed chunk
//! files `p c-<fnv64>-<len>.bin` plus one manifest `p m-<epoch>.ckpt`
//! naming them. Every file is written as `p tmp-<name>`, `sync`ed, then
//! `rename`d into place; the manifest rename is the **commit point** — a
//! crash anywhere before it leaves the previous epoch fully intact, and a
//! crash anywhere after it leaves the new epoch fully intact. Resume scans
//! manifests newest-first and applies the first one that passes its
//! self-checksum and whose chunk files all verify; torn leftovers are
//! skipped (and garbage-collected by the next commit). There is no state
//! in between: the crash-injection suite (`tests/checkpoint_crash.rs`)
//! proves every kill point lands on exactly the prior or the new epoch.
//!
//! # Incremental snapshots
//!
//! Chunks are the dirty-tracking granule. [`Checkpointer`] records each
//! chunk's write-tracking fingerprint
//! ([`SlabMachine::chunk_fingerprint`]) at commit; a later commit skips
//! re-encoding chunks whose fingerprints are unchanged, and content
//! addressing skips re-writing chunk bytes that already exist under any
//! epoch. Fingerprints are conservative — an over-bump costs one encode,
//! never correctness.
//!
//! # Migration
//!
//! The manifest witnesses the machine **geometry** (groups, PEs, rows,
//! cols, mesh, timing) and the fault model, not the chunk width: a
//! checkpoint written by one chunking restores into any other via the
//! lossless per-PE conversions ([`SlabMachine::restore_chunks`]), which is
//! how a shard migrates across processes with different host widths.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod manifest;
pub mod sink;
pub mod testing;

use std::collections::{HashMap, HashSet};

use hyperap_arch::SlabMachine;

pub use manifest::{fnv1a64, ChunkEntry, CkptError, FaultWitness, Manifest};
pub use sink::{CheckpointSink, DirSink, MemSink, SinkError};

use manifest::{decode_chunk, encode_chunk};

/// What one [`Checkpointer::checkpoint`] commit did — the
/// checkpoint-cost numbers the bench harness reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CheckpointStats {
    /// The epoch this commit created.
    pub epoch: u64,
    /// Chunks in the machine.
    pub chunks_total: usize,
    /// Chunks skipped by fingerprint (dirty tracking hit).
    pub chunks_clean: usize,
    /// Chunk files physically written (dirty and not already stored).
    pub chunks_written: usize,
    /// Total payload bytes across every chunk (the full image size).
    pub payload_bytes: u64,
    /// Bytes physically written this commit (chunk files + manifest).
    pub bytes_written: u64,
    /// Size of the manifest blob.
    pub manifest_bytes: u64,
}

/// Drives the commit protocol over a [`CheckpointSink`], tracking per-chunk
/// fingerprints for incremental snapshots. One `Checkpointer` per machine
/// per prefix; several (e.g. one per shard) may share a sink under
/// different prefixes.
#[derive(Debug)]
pub struct Checkpointer<S> {
    sink: S,
    prefix: String,
    keep: usize,
    next_epoch: u64,
    /// Per-chunk `(fingerprint, payload hash, payload len)` as of the last
    /// successful commit. Only updated after the manifest rename lands, so
    /// a failed commit never poisons dirty tracking.
    committed: HashMap<usize, ([u64; 5], u64, u64)>,
}

impl<S: CheckpointSink> Checkpointer<S> {
    /// A checkpointer over `sink` with an empty prefix, keeping the last 2
    /// epochs.
    pub fn new(sink: S) -> Self {
        Self::with_prefix(sink, "")
    }

    /// A checkpointer whose files all start with `prefix` — the namespace
    /// for one shard inside a shared sink.
    pub fn with_prefix(sink: S, prefix: impl Into<String>) -> Self {
        Checkpointer {
            sink,
            prefix: prefix.into(),
            keep: 2,
            next_epoch: 0,
            committed: HashMap::new(),
        }
    }

    /// Keep the newest `keep` epochs at garbage collection (minimum 1).
    pub fn set_keep(&mut self, keep: usize) {
        self.keep = keep.max(1);
    }

    /// The underlying sink.
    pub fn sink(&self) -> &S {
        &self.sink
    }

    /// The underlying sink, mutable (test setup / fixture surgery).
    pub fn sink_mut(&mut self) -> &mut S {
        &mut self.sink
    }

    /// Consume the checkpointer, returning its sink.
    pub fn into_sink(self) -> S {
        self.sink
    }

    fn manifest_name(&self, epoch: u64) -> String {
        format!("{}m-{epoch:020}.ckpt", self.prefix)
    }

    fn chunk_name(&self, hash: u64, len: u64) -> String {
        format!("{}c-{hash:016x}-{len}.bin", self.prefix)
    }

    fn tmp_name(&self, suffix: &str) -> String {
        format!("{}tmp-{suffix}", self.prefix)
    }

    /// `(epoch, name)` of every manifest under the prefix, newest first.
    fn manifest_epochs(&self, names: &[String]) -> Vec<(u64, String)> {
        let mut out: Vec<(u64, String)> = names
            .iter()
            .filter_map(|n| {
                let tail = n.strip_prefix(&self.prefix)?.strip_prefix("m-")?;
                let digits = tail.strip_suffix(".ckpt")?;
                digits.parse::<u64>().ok().map(|e| (e, n.clone()))
            })
            .collect();
        out.sort_by_key(|&(epoch, _)| std::cmp::Reverse(epoch));
        out
    }

    /// Write `data` as `name` through the atomic temp-write + sync + rename
    /// sequence.
    fn put_atomic(&mut self, name: &str, data: &[u8]) -> Result<(), CkptError> {
        let tmp = self.tmp_name(name.strip_prefix(&self.prefix).unwrap_or(name));
        self.sink.write(&tmp, data)?;
        self.sink.sync(&tmp)?;
        self.sink.rename(&tmp, name)?;
        Ok(())
    }

    /// Commit one epoch of `machine`'s state. Incremental: chunks whose
    /// fingerprints are unchanged since the last successful commit are not
    /// re-encoded, and chunk bytes already stored (under any epoch — the
    /// content address) are not re-written. Returns what was done.
    ///
    /// # Errors
    ///
    /// Any [`CkptError::Sink`] failure aborts the commit; the previous
    /// epoch remains the restore target (atomicity is property-tested
    /// against every kill point in `tests/checkpoint_crash.rs`).
    pub fn checkpoint(&mut self, machine: &SlabMachine) -> Result<CheckpointStats, CkptError> {
        let names = self.sink.list()?;
        let mut existing: HashSet<String> = names.iter().cloned().collect();
        // A fresh checkpointer over a populated sink must not reuse epochs.
        if let Some((newest, _)) = self.manifest_epochs(&names).first() {
            self.next_epoch = self.next_epoch.max(newest + 1);
        }
        let epoch = self.next_epoch;
        let mut stats = CheckpointStats {
            epoch,
            chunks_total: machine.num_chunks(),
            ..CheckpointStats::default()
        };
        let mut entries = Vec::with_capacity(machine.num_chunks());
        let mut fresh: HashMap<usize, ([u64; 5], u64, u64)> = HashMap::new();
        for i in 0..machine.num_chunks() {
            let fp = machine.chunk_fingerprint(i);
            let state = machine.chunk_state(i);
            let clean = self
                .committed
                .get(&i)
                .filter(|(old, hash, len)| {
                    *old == fp && existing.contains(&self.chunk_name(*hash, *len))
                })
                .copied();
            let (hash, len) = match clean {
                Some((_, hash, len)) => {
                    stats.chunks_clean += 1;
                    (hash, len)
                }
                None => {
                    let payload = encode_chunk(&state);
                    let (hash, len) = (fnv1a64(&payload), payload.len() as u64);
                    let name = self.chunk_name(hash, len);
                    if !existing.contains(&name) {
                        self.put_atomic(&name, &payload)?;
                        existing.insert(name);
                        stats.chunks_written += 1;
                        stats.bytes_written += len;
                    }
                    (hash, len)
                }
            };
            stats.payload_bytes += len;
            fresh.insert(i, (fp, hash, len));
            entries.push(ChunkEntry {
                base: state.global_base as u64,
                pes: state.pes as u32,
                len,
                hash,
            });
        }
        let manifest = Manifest {
            epoch,
            geometry: machine.config().geometry_fields(),
            fault: FaultWitness::of(machine.config()),
            extras: machine.machine_extras(),
            chunks: entries,
        };
        let blob = manifest.encode();
        stats.manifest_bytes = blob.len() as u64;
        stats.bytes_written += blob.len() as u64;
        // The commit point: this rename makes the new epoch the newest
        // valid manifest. Everything before it is invisible to resume.
        self.put_atomic(&self.manifest_name(epoch), &blob)?;
        self.committed = fresh;
        self.next_epoch = epoch + 1;
        self.collect_garbage()?;
        Ok(stats)
    }

    /// Remove manifests beyond the newest `keep`, chunk files none of the
    /// kept manifests reference, and stale temp files. Crash-safe in any
    /// interleaving: the newest manifest's files are never candidates, and
    /// resume ignores everything it doesn't need.
    fn collect_garbage(&mut self) -> Result<(), CkptError> {
        let names = self.sink.list()?;
        let manifests = self.manifest_epochs(&names);
        let (kept, dropped) = manifests.split_at(self.keep.min(manifests.len()));
        let mut referenced: HashSet<String> = HashSet::new();
        let mut chunks_known = true;
        for (_, name) in kept {
            match self
                .sink
                .read(name)
                .map_err(CkptError::from)
                .and_then(|b| Manifest::decode(&b))
            {
                Ok(man) => {
                    for c in &man.chunks {
                        referenced.insert(self.chunk_name(c.hash, c.len));
                    }
                }
                // A kept manifest we cannot decode might reference
                // anything: skip chunk GC rather than guess.
                Err(_) => chunks_known = false,
            }
        }
        for (_, name) in dropped {
            self.sink.remove(name)?;
        }
        for name in &names {
            let Some(tail) = name.strip_prefix(&self.prefix) else {
                continue;
            };
            let stale_tmp = tail.starts_with("tmp-");
            let orphan_chunk = chunks_known && tail.starts_with("c-") && !referenced.contains(name);
            if stale_tmp || orphan_chunk {
                self.sink.remove(name)?;
            }
        }
        Ok(())
    }

    /// The epoch of the newest manifest under the prefix, by name only (no
    /// content verification).
    pub fn latest_epoch(&self) -> Result<Option<u64>, CkptError> {
        let names = self.sink.list()?;
        Ok(self.manifest_epochs(&names).first().map(|(e, _)| *e))
    }

    /// Restore `machine` from the newest committed epoch that verifies:
    /// manifests are tried newest-first, and one is applied only if its
    /// self-checksum holds and every referenced chunk file is present,
    /// hash-verified, and decodable — torn leftovers of an interrupted
    /// commit fall through to the previous epoch. Returns the restored
    /// epoch.
    ///
    /// Dirty tracking restarts from scratch: the next
    /// [`checkpoint`](Self::checkpoint) re-encodes every chunk, but content
    /// addressing still skips re-writing unchanged bytes.
    ///
    /// # Errors
    ///
    /// [`CkptError::NoCheckpoint`] when no manifest verifies;
    /// [`CkptError::BadVersion`] when an intact manifest or chunk uses an
    /// unknown future format; [`CkptError::GeometryMismatch`] when an
    /// intact manifest describes a different machine or fault universe.
    pub fn resume(&mut self, machine: &mut SlabMachine) -> Result<u64, CkptError> {
        let names = self.sink.list()?;
        let manifests = self.manifest_epochs(&names);
        if manifests.is_empty() {
            return Err(CkptError::NoCheckpoint);
        }
        for (_, name) in &manifests {
            let blob = match self.sink.read(name) {
                Ok(b) => b,
                Err(SinkError::NotFound) => continue,
                Err(e) => return Err(e.into()),
            };
            let man = match Manifest::decode(&blob) {
                Ok(m) => m,
                // Torn or bit-rotted: fall back to the previous epoch.
                Err(CkptError::Truncated) | Err(CkptError::BadChecksum) => continue,
                // Intact but unreadable-by-design: surface it.
                Err(e) => return Err(e),
            };
            if man.geometry != machine.config().geometry_fields()
                || man.fault != FaultWitness::of(machine.config())
            {
                return Err(CkptError::GeometryMismatch);
            }
            let mut parts = Vec::with_capacity(man.chunks.len());
            let mut damaged = false;
            for entry in &man.chunks {
                let cname = self.chunk_name(entry.hash, entry.len);
                let payload = match self.sink.read(&cname) {
                    Ok(p) => p,
                    Err(SinkError::NotFound) => {
                        damaged = true;
                        break;
                    }
                    Err(e) => return Err(e.into()),
                };
                if payload.len() as u64 != entry.len || fnv1a64(&payload) != entry.hash {
                    damaged = true;
                    break;
                }
                let part = match decode_chunk(&payload) {
                    Ok(p) => p,
                    Err(CkptError::BadVersion(v)) => return Err(CkptError::BadVersion(v)),
                    Err(_) => {
                        damaged = true;
                        break;
                    }
                };
                if part.global_base as u64 != entry.base || part.storage.pes() as u32 != entry.pes {
                    damaged = true;
                    break;
                }
                parts.push(part);
            }
            if damaged {
                continue;
            }
            machine.restore_chunks(parts)?;
            machine.set_machine_extras(man.extras.clone())?;
            self.committed.clear();
            self.next_epoch = man.epoch + 1;
            return Ok(man.epoch);
        }
        Err(CkptError::NoCheckpoint)
    }
}

/// Checkpoint methods on the machine itself — sugar over
/// [`Checkpointer`], matching the API named in ROADMAP item 4.
pub trait MachineCheckpoint {
    /// Commit this machine's state as one epoch.
    ///
    /// # Errors
    ///
    /// See [`Checkpointer::checkpoint`].
    fn checkpoint_to<S: CheckpointSink>(
        &self,
        ck: &mut Checkpointer<S>,
    ) -> Result<CheckpointStats, CkptError>;

    /// Restore this machine from the newest committed epoch.
    ///
    /// # Errors
    ///
    /// See [`Checkpointer::resume`].
    fn resume_from<S: CheckpointSink>(
        &mut self,
        ck: &mut Checkpointer<S>,
    ) -> Result<u64, CkptError>;
}

impl MachineCheckpoint for SlabMachine {
    fn checkpoint_to<S: CheckpointSink>(
        &self,
        ck: &mut Checkpointer<S>,
    ) -> Result<CheckpointStats, CkptError> {
        ck.checkpoint(self)
    }

    fn resume_from<S: CheckpointSink>(
        &mut self,
        ck: &mut Checkpointer<S>,
    ) -> Result<u64, CkptError> {
        ck.resume(self)
    }
}
