//! Semantic analysis: type checking, width inference, loop unrolling,
//! branch flattening (Fig 13b), struct flattening, and constant folding —
//! lowering the AST into a [`Dfg`].

use crate::ast::*;
use crate::dfg::{Dfg, DfgNode, DfgOp, NodeId};
use std::collections::HashMap;

/// Semantic error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SemaError {
    /// Description.
    pub message: String,
}

impl std::fmt::Display for SemaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for SemaError {}

fn err(msg: impl Into<String>) -> SemaError {
    SemaError {
        message: msg.into(),
    }
}

/// Result of lowering: the DFG plus the flattened input/output signatures.
#[derive(Debug, Clone)]
pub struct Lowered {
    /// The dataflow graph.
    pub dfg: Dfg,
    /// Flattened scalar input names (structs expand to `name.field`).
    pub input_names: Vec<String>,
    /// Flattened scalar output names (for struct returns; a scalar return
    /// is the single name `result`).
    pub output_names: Vec<String>,
}

/// Lower a parsed program to a DFG (entry point: `main`).
///
/// # Errors
///
/// Returns [`SemaError`] on type errors, unsupported constructs (pointer
/// chasing does not parse; data-dependent shift amounts and loop bounds are
/// rejected here), or missing returns.
pub fn lower(program: &Program) -> Result<Lowered, SemaError> {
    let main = program
        .function("main")
        .ok_or_else(|| err("missing main"))?;
    let mut ctx = Ctx {
        program,
        dfg: Dfg::default(),
        env: HashMap::new(),
        consts: HashMap::new(),
        var_types: HashMap::new(),
        input_names: Vec::new(),
        returned: None,
    };
    // Bind parameters (structs flatten to one input per field).
    for (ty, name) in &main.params {
        ctx.bind_param(ty, name)?;
    }
    ctx.run_block(&main.body)?;
    let ret = ctx
        .returned
        .take()
        .ok_or_else(|| err("main must return a value"))?;
    let ret_ty = main.ret.clone();
    // Coerce the returned value to the declared return type.
    let outputs: Vec<NodeId> = match &ret_ty {
        Type::Struct(sname) => {
            let def = program
                .struct_def(sname)
                .ok_or_else(|| err(format!("unknown struct `{sname}`")))?;
            let Value::Struct(fields) = ret else {
                return Err(err("return type is a struct but a scalar was returned"));
            };
            def.fields
                .iter()
                .map(|(fname, fty)| {
                    let v = fields
                        .get(fname)
                        .copied()
                        .ok_or_else(|| err(format!("missing struct field `{fname}`")))?;
                    let w = fty.scalar_width().ok_or_else(|| err("nested structs"))?;
                    Ok(ctx.resize(v, w, fty.is_signed()))
                })
                .collect::<Result<_, SemaError>>()?
        }
        scalar => {
            let w = scalar.scalar_width().expect("scalar return");
            let Value::Scalar(node) = ret else {
                return Err(err("return type is scalar but a struct was returned"));
            };
            vec![ctx.resize(node, w, scalar.is_signed())]
        }
    };
    let output_names = match &ret_ty {
        Type::Struct(sname) => program
            .struct_def(sname)
            .expect("checked above")
            .fields
            .iter()
            .map(|(f, _)| format!("result.{f}"))
            .collect(),
        _ => vec!["result".to_string()],
    };
    ctx.dfg.outputs = outputs;
    Ok(Lowered {
        dfg: ctx.dfg,
        input_names: ctx.input_names,
        output_names,
    })
}

/// A value: a scalar DFG node or a flattened struct.
#[derive(Debug, Clone)]
enum Value {
    Scalar(NodeId),
    Struct(HashMap<String, NodeId>),
}

struct Ctx<'a> {
    program: &'a Program,
    dfg: Dfg,
    /// Variable environment (struct members stored flat as `base.field`
    /// inside Struct values).
    env: HashMap<String, Value>,
    /// Loop induction variables (compile-time constants).
    consts: HashMap<String, u64>,
    /// Declared (width, signed) of scalar variables and struct members
    /// (members keyed as `base.field`) — assignments coerce to these.
    var_types: HashMap<String, (usize, bool)>,
    input_names: Vec<String>,
    returned: Option<Value>,
}

impl<'a> Ctx<'a> {
    fn bind_param(&mut self, ty: &Type, name: &str) -> Result<(), SemaError> {
        match ty {
            Type::Struct(sname) => {
                let def = self
                    .program
                    .struct_def(sname)
                    .ok_or_else(|| err(format!("unknown struct `{sname}`")))?
                    .clone();
                let mut fields = HashMap::new();
                for (fname, fty) in &def.fields {
                    let w = fty
                        .scalar_width()
                        .ok_or_else(|| err("nested structs are not supported"))?;
                    let idx = self.dfg.input_widths.len();
                    self.dfg.input_widths.push(w);
                    self.input_names.push(format!("{name}.{fname}"));
                    let node = self.dfg.push(DfgNode {
                        op: DfgOp::Input { index: idx },
                        inputs: vec![],
                        width: w,
                        signed: fty.is_signed(),
                    });
                    self.var_types
                        .insert(format!("{name}.{fname}"), (w, fty.is_signed()));
                    fields.insert(fname.clone(), node);
                }
                self.env.insert(name.to_string(), Value::Struct(fields));
            }
            scalar => {
                let w = scalar.scalar_width().expect("scalar param");
                let idx = self.dfg.input_widths.len();
                self.dfg.input_widths.push(w);
                self.input_names.push(name.to_string());
                let node = self.dfg.push(DfgNode {
                    op: DfgOp::Input { index: idx },
                    inputs: vec![],
                    width: w,
                    signed: scalar.is_signed(),
                });
                self.var_types
                    .insert(name.to_string(), (w, scalar.is_signed()));
                self.env.insert(name.to_string(), Value::Scalar(node));
            }
        }
        Ok(())
    }

    fn constant(&mut self, value: u64, width: usize) -> NodeId {
        self.dfg.push(DfgNode {
            op: DfgOp::Const {
                value: value & mask(width),
            },
            inputs: vec![],
            width,
            signed: false,
        })
    }

    /// Coerce to a declared variable type; unlike [`resize`](Self::resize)
    /// this marks even folded constants with the declared signedness so
    /// later operations (abs, compares) see the right type.
    fn resize_declared(&mut self, node: NodeId, width: usize, signed: bool) -> NodeId {
        let id = self.resize(node, width, signed);
        if signed {
            // Signedness is a property of the node; retag in place.
            self.dfg.nodes[id].signed = true;
        }
        id
    }

    fn resize(&mut self, node: NodeId, width: usize, signed: bool) -> NodeId {
        let n = self.dfg.node(node);
        if n.width == width && n.signed == signed {
            return node;
        }
        // Fold constant resizes immediately (operand embedding).
        if let DfgOp::Const { value } = n.op {
            return self.constant(value, width);
        }
        self.dfg.push(DfgNode {
            op: DfgOp::Resize,
            inputs: vec![node],
            width,
            signed,
        })
    }

    fn run_block(&mut self, stmts: &[Stmt]) -> Result<(), SemaError> {
        for stmt in stmts {
            if self.returned.is_some() {
                break; // code after return is dead
            }
            self.run_stmt(stmt)?;
        }
        Ok(())
    }

    fn run_stmt(&mut self, stmt: &Stmt) -> Result<(), SemaError> {
        match stmt {
            Stmt::Decl { ty, name, init } => {
                let value = match ty {
                    Type::Struct(sname) => {
                        if init.is_some() {
                            return Err(err("struct initializers are not supported"));
                        }
                        let def = self
                            .program
                            .struct_def(sname)
                            .ok_or_else(|| err(format!("unknown struct `{sname}`")))?
                            .clone();
                        let mut fields = HashMap::new();
                        for (fname, fty) in &def.fields {
                            let w = fty.scalar_width().ok_or_else(|| err("nested structs"))?;
                            let zero = self.constant(0, w);
                            self.var_types
                                .insert(format!("{name}.{fname}"), (w, fty.is_signed()));
                            fields.insert(fname.clone(), zero);
                        }
                        Value::Struct(fields)
                    }
                    scalar => {
                        let w = scalar.scalar_width().expect("scalar decl");
                        let node = match init {
                            Some(e) => {
                                let v = self.eval_expr(e)?;
                                self.resize(v, w, scalar.is_signed())
                            }
                            None => self.constant(0, w),
                        };
                        self.var_types.insert(name.clone(), (w, scalar.is_signed()));
                        Value::Scalar(node)
                    }
                };
                self.env.insert(name.clone(), value);
            }
            Stmt::Assign { target, value } => {
                let v = self.eval_expr(value)?;
                match target {
                    LValue::Var(name) => {
                        let Some(old) = self.env.get(name) else {
                            return Err(err(format!("assignment to undeclared `{name}`")));
                        };
                        if !matches!(old, Value::Scalar(_)) {
                            return Err(err(format!("cannot assign whole struct `{name}`")));
                        }
                        let (w, s) = *self
                            .var_types
                            .get(name)
                            .ok_or_else(|| err(format!("unknown type of `{name}`")))?;
                        let coerced = self.resize_declared(v, w, s);
                        self.env.insert(name.clone(), Value::Scalar(coerced));
                    }
                    LValue::Member(base, field) => {
                        let Some(Value::Struct(fields)) = self.env.get(base) else {
                            return Err(err(format!("`{base}` is not a struct")));
                        };
                        if fields.get(field).is_none() {
                            return Err(err(format!("no field `{field}` on `{base}`")));
                        }
                        let (w, s) = *self
                            .var_types
                            .get(&format!("{base}.{field}"))
                            .ok_or_else(|| err(format!("unknown type of `{base}.{field}`")))?;
                        let coerced = self.resize_declared(v, w, s);
                        if let Some(Value::Struct(fields)) = self.env.get_mut(base) {
                            fields.insert(field.clone(), coerced);
                        }
                    }
                }
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                let pred = self.eval_expr(cond)?;
                let pred = self.resize(pred, 1, false);
                // Execute both branches on snapshots (Fig 13b), then select.
                let before = self.env.clone();
                let before_ret = self.returned.clone();
                self.run_block(then_body)?;
                if self.returned.is_some() != before_ret.is_some() {
                    return Err(err("return inside `if` is not supported"));
                }
                let then_env = std::mem::replace(&mut self.env, before);
                self.run_block(else_body)?;
                let else_env = self.env.clone();
                // Merge: any variable differing between branches selects.
                let mut merged = HashMap::new();
                for (name, then_v) in &then_env {
                    let else_v = else_env.get(name).unwrap_or(then_v);
                    merged.insert(name.clone(), self.merge_values(pred, then_v, else_v)?);
                }
                // Variables declared only in the else branch survive as-is.
                for (name, else_v) in else_env {
                    merged.entry(name).or_insert(else_v);
                }
                self.env = merged;
            }
            Stmt::For {
                var,
                start,
                end,
                body,
            } => {
                if end < start {
                    return Err(err("loop bound below start"));
                }
                if end - start > 4096 {
                    return Err(err("loop unrolls to more than 4096 iterations"));
                }
                for i in *start..*end {
                    self.consts.insert(var.clone(), i);
                    self.run_block(body)?;
                    if self.returned.is_some() {
                        break;
                    }
                }
                self.consts.remove(var);
            }
            Stmt::Return(e) => {
                let v = self.eval_expr_value(e)?;
                self.returned = Some(v);
            }
        }
        Ok(())
    }

    fn merge_values(&mut self, pred: NodeId, t: &Value, f: &Value) -> Result<Value, SemaError> {
        match (t, f) {
            (Value::Scalar(a), Value::Scalar(b)) => {
                if a == b {
                    return Ok(Value::Scalar(*a));
                }
                let w = self.dfg.node(*a).width.max(self.dfg.node(*b).width);
                let signed = self.dfg.node(*a).signed;
                let sel = self.dfg.push(DfgNode {
                    op: DfgOp::Select,
                    inputs: vec![pred, *a, *b],
                    width: w,
                    signed,
                });
                Ok(Value::Scalar(sel))
            }
            (Value::Struct(ta), Value::Struct(fb)) => {
                let mut out = HashMap::new();
                for (name, &a) in ta {
                    let b = fb.get(name).copied().unwrap_or(a);
                    let Value::Scalar(m) =
                        self.merge_values(pred, &Value::Scalar(a), &Value::Scalar(b))?
                    else {
                        unreachable!()
                    };
                    out.insert(name.clone(), m);
                }
                Ok(Value::Struct(out))
            }
            _ => Err(err("branches assign incompatible values")),
        }
    }

    fn eval_expr(&mut self, e: &Expr) -> Result<NodeId, SemaError> {
        match self.eval_expr_value(e)? {
            Value::Scalar(n) => Ok(n),
            Value::Struct(_) => Err(err("expected a scalar expression")),
        }
    }

    /// Fold to a constant if possible.
    fn const_of(&self, node: NodeId) -> Option<u64> {
        match self.dfg.node(node).op {
            DfgOp::Const { value } => Some(value),
            _ => None,
        }
    }

    fn eval_expr_value(&mut self, e: &Expr) -> Result<Value, SemaError> {
        match e {
            Expr::Lit(v) => {
                let width = (64 - v.leading_zeros()).max(1) as usize;
                Ok(Value::Scalar(self.constant(*v, width)))
            }
            Expr::Var(name) => {
                if let Some(&c) = self.consts.get(name) {
                    let width = (64 - c.leading_zeros()).max(1) as usize;
                    return Ok(Value::Scalar(self.constant(c, width)));
                }
                self.env
                    .get(name)
                    .cloned()
                    .ok_or_else(|| err(format!("undeclared variable `{name}`")))
            }
            Expr::Member(base, field) => {
                let base_v = self.eval_expr_value(base)?;
                let Value::Struct(fields) = base_v else {
                    return Err(err("member access on non-struct"));
                };
                fields
                    .get(field)
                    .copied()
                    .map(Value::Scalar)
                    .ok_or_else(|| err(format!("no field `{field}`")))
            }
            Expr::Un(op, inner) => {
                let v = self.eval_expr(inner)?;
                let n = self.dfg.node(v).clone();
                if let Some(c) = self.const_of(v) {
                    let folded = match op {
                        UnOp::Not => !c & mask(n.width),
                        UnOp::Neg => c.wrapping_neg() & mask(n.width),
                        UnOp::LNot => (c == 0) as u64,
                    };
                    let w = if *op == UnOp::LNot { 1 } else { n.width };
                    return Ok(Value::Scalar(self.constant(folded, w)));
                }
                let node = match op {
                    UnOp::Not => DfgNode {
                        op: DfgOp::Not,
                        inputs: vec![v],
                        width: n.width,
                        signed: n.signed,
                    },
                    UnOp::Neg => DfgNode {
                        op: DfgOp::Neg,
                        inputs: vec![v],
                        width: n.width,
                        signed: true,
                    },
                    UnOp::LNot => {
                        let zero = self.constant(0, n.width);
                        DfgNode {
                            op: DfgOp::Eq,
                            inputs: vec![v, zero],
                            width: 1,
                            signed: false,
                        }
                    }
                };
                Ok(Value::Scalar(self.dfg.push(node)))
            }
            Expr::Bin(op, lhs, rhs) => self.eval_bin(*op, lhs, rhs),
            Expr::Call(name, args) => self.eval_call(name, args),
        }
    }

    fn eval_bin(&mut self, op: BinOp, lhs: &Expr, rhs: &Expr) -> Result<Value, SemaError> {
        let a = self.eval_expr(lhs)?;
        let b = self.eval_expr(rhs)?;
        let (wa, sa) = {
            let n = self.dfg.node(a);
            (n.width, n.signed)
        };
        let (wb, sb) = {
            let n = self.dfg.node(b);
            (n.width, n.signed)
        };
        // Constant folding (operand embedding starts here).
        if let (Some(ca), Some(cb)) = (self.const_of(a), self.const_of(b)) {
            if let Some((v, w)) = fold_bin(op, ca, cb, wa, wb) {
                return Ok(Value::Scalar(self.constant(v, w)));
            }
        }
        // Shifts require constant amounts (no barrel shifter in AP).
        if matches!(op, BinOp::Shl | BinOp::Shr) {
            let Some(amount) = self.const_of(b) else {
                return Err(err("shift amounts must be compile-time constants"));
            };
            let amount = amount as usize;
            let (dop, w) = match op {
                BinOp::Shl => (DfgOp::Shl { amount }, (wa + amount).min(64)),
                _ => (DfgOp::Shr { amount }, wa),
            };
            return Ok(Value::Scalar(self.dfg.push(DfgNode {
                op: dop,
                inputs: vec![a],
                width: w,
                signed: sa,
            })));
        }
        let signed = sa || sb;
        let (dop, width) = match op {
            BinOp::Add => (DfgOp::Add, wa.max(wb) + 1),
            BinOp::Sub => (DfgOp::Sub, wa.max(wb).max(1)),
            BinOp::Mul => (DfgOp::Mul, (wa + wb).min(64)),
            BinOp::Div => (DfgOp::Div, wa),
            BinOp::Rem => (DfgOp::Rem, wa.min(wb).max(1)),
            BinOp::And => (DfgOp::And, wa.max(wb)),
            BinOp::Or => (DfgOp::Or, wa.max(wb)),
            BinOp::Xor => (DfgOp::Xor, wa.max(wb)),
            BinOp::Eq => (DfgOp::Eq, 1),
            BinOp::Ne => (DfgOp::Ne, 1),
            BinOp::Lt => (DfgOp::Lt, 1),
            BinOp::Le => (DfgOp::Le, 1),
            BinOp::Gt => (DfgOp::Gt, 1),
            BinOp::Ge => (DfgOp::Ge, 1),
            BinOp::LAnd => (DfgOp::And, 1),
            BinOp::LOr => (DfgOp::Or, 1),
            BinOp::Shl | BinOp::Shr => unreachable!("handled above"),
        };
        let width = width.min(64);
        let (a, b) = if matches!(op, BinOp::LAnd | BinOp::LOr) {
            (self.resize(a, 1, false), self.resize(b, 1, false))
        } else {
            (a, b)
        };
        // Signed arithmetic: sign-extend operands to the RESULT width so
        // wrap-around matches two's-complement semantics (a zero-extended
        // negative operand would otherwise lose its sign weight).
        let (a, b) = if signed && !matches!(op, BinOp::LAnd | BinOp::LOr) {
            let w = if matches!(op, BinOp::Add | BinOp::Sub) {
                width
            } else {
                wa.max(wb)
            };
            (self.resize(a, w, sa), self.resize(b, w, sb))
        } else {
            (a, b)
        };
        let result_signed = signed
            && !matches!(
                op,
                BinOp::Eq
                    | BinOp::Ne
                    | BinOp::Lt
                    | BinOp::Le
                    | BinOp::Gt
                    | BinOp::Ge
                    | BinOp::LAnd
                    | BinOp::LOr
            );
        Ok(Value::Scalar(self.dfg.push(DfgNode {
            op: dop,
            inputs: vec![a, b],
            width,
            signed: result_signed,
        })))
    }

    fn eval_call(&mut self, name: &str, args: &[Expr]) -> Result<Value, SemaError> {
        let need = |n: usize| -> Result<(), SemaError> {
            if args.len() != n {
                Err(err(format!("`{name}` expects {n} argument(s)")))
            } else {
                Ok(())
            }
        };
        match name {
            "sqrt" => {
                need(1)?;
                let a = self.eval_expr(&args[0])?;
                let w = self.dfg.node(a).width;
                Ok(Value::Scalar(self.dfg.push(DfgNode {
                    op: DfgOp::Sqrt,
                    inputs: vec![a],
                    width: w.div_ceil(2),
                    signed: false,
                })))
            }
            "exp" => {
                // exp(x, frac_bits): Q(w-f).f fixed point.
                need(2)?;
                let a = self.eval_expr(&args[0])?;
                let f = self
                    .eval_expr(&args[1])
                    .ok()
                    .and_then(|n| self.const_of(n))
                    .ok_or_else(|| err("exp() fraction bits must be constant"))?;
                let w = self.dfg.node(a).width;
                if f as usize >= w {
                    return Err(err("exp() needs at least one integer bit"));
                }
                Ok(Value::Scalar(self.dfg.push(DfgNode {
                    op: DfgOp::Exp {
                        frac_bits: f as u32,
                    },
                    inputs: vec![a],
                    width: w,
                    signed: false,
                })))
            }
            "min" | "max" => {
                need(2)?;
                let a = self.eval_expr(&args[0])?;
                let b = self.eval_expr(&args[1])?;
                let w = self.dfg.node(a).width.max(self.dfg.node(b).width);
                let signed = self.dfg.node(a).signed || self.dfg.node(b).signed;
                let cmp_op = if name == "min" { DfgOp::Lt } else { DfgOp::Gt };
                let pred = self.dfg.push(DfgNode {
                    op: cmp_op,
                    inputs: vec![a, b],
                    width: 1,
                    signed: false,
                });
                Ok(Value::Scalar(self.dfg.push(DfgNode {
                    op: DfgOp::Select,
                    inputs: vec![pred, a, b],
                    width: w,
                    signed,
                })))
            }
            "abs" => {
                need(1)?;
                let a = self.eval_expr(&args[0])?;
                let n = self.dfg.node(a).clone();
                if !n.signed {
                    return Ok(Value::Scalar(a));
                }
                let zero = self.constant(0, n.width);
                let pred = self.dfg.push(DfgNode {
                    op: DfgOp::Lt,
                    inputs: vec![a, zero],
                    width: 1,
                    signed: false,
                });
                let neg = self.dfg.push(DfgNode {
                    op: DfgOp::Neg,
                    inputs: vec![a],
                    width: n.width,
                    signed: true,
                });
                Ok(Value::Scalar(self.dfg.push(DfgNode {
                    op: DfgOp::Select,
                    inputs: vec![pred, neg, a],
                    width: n.width,
                    signed: false,
                })))
            }
            other => Err(err(format!("unknown builtin `{other}`"))),
        }
    }
}

fn mask(w: usize) -> u64 {
    if w >= 64 {
        u64::MAX
    } else {
        (1u64 << w) - 1
    }
}

fn fold_bin(op: BinOp, a: u64, b: u64, wa: usize, wb: usize) -> Option<(u64, usize)> {
    let w = wa.max(wb);
    Some(match op {
        BinOp::Add => (a.wrapping_add(b), w + 1),
        BinOp::Sub => (a.wrapping_sub(b) & mask(w), w),
        BinOp::Mul => (a.wrapping_mul(b), (wa + wb).min(64)),
        BinOp::Div => (a.checked_div(b).unwrap_or(mask(wa)), wa),
        BinOp::Rem => (if b == 0 { a } else { a % b }, wb.max(1)),
        BinOp::And => (a & b, w),
        BinOp::Or => (a | b, w),
        BinOp::Xor => (a ^ b, w),
        BinOp::Shl => (a << b.min(63), (wa + b as usize).min(64)),
        BinOp::Shr => (a >> b.min(63), wa),
        BinOp::Eq => ((a == b) as u64, 1),
        BinOp::Ne => ((a != b) as u64, 1),
        BinOp::Lt => ((a < b) as u64, 1),
        BinOp::Le => ((a <= b) as u64, 1),
        BinOp::Gt => ((a > b) as u64, 1),
        BinOp::Ge => ((a >= b) as u64, 1),
        BinOp::LAnd => ((a != 0 && b != 0) as u64, 1),
        BinOp::LOr => ((a != 0 || b != 0) as u64, 1),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;

    fn lower_src(src: &str) -> Lowered {
        lower(&parse(src).unwrap()).unwrap()
    }

    #[test]
    fn fig8_program_lowers_and_evaluates() {
        let l = lower_src(
            "unsigned int (6) main(unsigned int (5) a, unsigned int (5) b) {
                 unsigned int (6) c; c = a + b; return c;
             }",
        );
        assert_eq!(l.dfg.eval(&[30, 31]), vec![61]);
        assert_eq!(l.input_names, vec!["a", "b"]);
    }

    #[test]
    fn loops_unroll() {
        let l = lower_src(
            "unsigned int (8) main(unsigned int (4) a) {
                 unsigned int (8) s; s = 0;
                 for (i = 0; i < 5; i += 1) { s = s + a; }
                 return s;
             }",
        );
        assert_eq!(l.dfg.eval(&[7]), vec![35]);
    }

    #[test]
    fn induction_variable_is_a_constant() {
        let l = lower_src(
            "unsigned int (8) main(unsigned int (4) a) {
                 unsigned int (8) s; s = 0;
                 for (i = 0; i < 4; i += 1) { s = s + i; }
                 return s;
             }",
        );
        assert_eq!(l.dfg.eval(&[0]), vec![6]);
    }

    #[test]
    fn conditionals_flatten_to_select() {
        let l = lower_src(
            "unsigned int (8) main(unsigned int (8) a) {
                 unsigned int (8) b;
                 if (a > 10) { b = a - 10; } else { b = a + 1; }
                 return b;
             }",
        );
        assert!(l.dfg.nodes.iter().any(|n| n.op == DfgOp::Select));
        assert_eq!(l.dfg.eval(&[20]), vec![10]);
        assert_eq!(l.dfg.eval(&[5]), vec![6]);
    }

    #[test]
    fn struct_params_flatten() {
        let l = lower_src(
            "struct pt { unsigned int (8) x; unsigned int (8) y; };
             unsigned int (9) main(struct pt p) { return p.x + p.y; }",
        );
        assert_eq!(l.input_names, vec!["p.x", "p.y"]);
        assert_eq!(l.dfg.eval(&[3, 4]), vec![7]);
    }

    #[test]
    fn struct_returns_flatten() {
        let l = lower_src(
            "struct pair { unsigned int (8) lo; unsigned int (8) hi; };
             struct pair main(unsigned int (8) a) {
                 struct pair r;
                 r.lo = a + 1;
                 r.hi = a - 1;
                 return r;
             }",
        );
        assert_eq!(l.output_names, vec!["result.lo", "result.hi"]);
        assert_eq!(l.dfg.eval(&[10]), vec![11, 9]);
    }

    #[test]
    fn constants_fold() {
        let l = lower_src("unsigned int (8) main(unsigned int (8) a) { return a + (2 * 3); }");
        assert!(l
            .dfg
            .nodes
            .iter()
            .any(|n| matches!(n.op, DfgOp::Const { value: 6 })));
        assert!(!l.dfg.nodes.iter().any(|n| n.op == DfgOp::Mul));
    }

    #[test]
    fn rejects_variable_shift() {
        let e = lower(
            &parse(
                "unsigned int (8) main(unsigned int (8) a, unsigned int (3) k) { return a << k; }",
            )
            .unwrap(),
        )
        .unwrap_err();
        assert!(e.to_string().contains("compile-time"));
    }

    #[test]
    fn rejects_undeclared() {
        let e = lower(&parse("unsigned int (8) main() { return q; }").unwrap()).unwrap_err();
        assert!(e.to_string().contains("undeclared"));
    }

    #[test]
    fn signed_compare_and_abs() {
        let l = lower_src(
            "unsigned int (8) main(int (8) a, int (8) b) {
                 int (8) d;
                 d = a - b;
                 return abs(d);
             }",
        );
        // a = 3, b = 10 -> |3-10| = 7.
        assert_eq!(l.dfg.eval(&[3, 10]), vec![7]);
        assert_eq!(l.dfg.eval(&[10, 3]), vec![7]);
    }

    #[test]
    fn min_max_builtin() {
        let l = lower_src(
            "unsigned int (8) main(unsigned int (8) a, unsigned int (8) b) {
                 return min(a, b) + max(a, b);
             }",
        );
        assert_eq!(l.dfg.eval(&[3, 9]), vec![12]);
    }
}
