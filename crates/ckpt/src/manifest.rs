//! Checkpoint wire formats: the versioned manifest and the per-chunk
//! payload, both hand-encoded big-endian (the workspace's `serde` is a
//! no-op shim; every durable format in this repo is explicit bytes).
//!
//! # Manifest (`m-<epoch>.ckpt`)
//!
//! ```text
//! magic "HAPC" | version u8 | epoch u64
//! geometry witness: 10 × u64 (ArchConfig::geometry_fields order)
//! fault witness: seed u64 | stuck u32 | miss u32 | limit flag u8 (+ u64) | spares u64
//! extras, per group: key bits (u32 len + KeyBit bytes)
//!                    key plan (u32 len + (u32 col, u8 bit) entries)
//!                    bank mask u8
//!                    data buffer (u32 rows + row-blocks as u64)
//! chunks: u32 count, each { base u64 | pes u32 | payload len u64 | fnv64 }
//! trailing fnv64 checksum of everything above
//! ```
//!
//! The manifest is **deterministic** — no timestamps, no absolute paths —
//! so a frozen fixture stays byte-stable and content-addressed chunk reuse
//! works across processes.
//!
//! # Chunk payload (`c-<fnv64>-<len>.bin`)
//!
//! ```text
//! version u8 | global base u64
//! 4 × length-prefixed blob (u64 len + bytes):
//!     TcamSlab::to_bytes | tags | latch | regs (TagSlab::to_bytes)
//! ops: u32 count + count × OpCounts::ENCODED_LEN records
//! ```

use bytes::{Buf, BufMut, BytesMut};
use hyperap_arch::slab::{ChunkPayload, ChunkState, MachineExtras, RestoreError};
use hyperap_arch::ArchConfig;
use hyperap_model::timing::OpCounts;
use hyperap_tcam::bit::KeyBit;
use hyperap_tcam::key::SearchKey;
use hyperap_tcam::slab::{SlabDecodeError, TagSlab, TcamSlab};
use hyperap_tcam::tags::TagVector;

use crate::sink::SinkError;

/// Magic bytes opening every manifest.
pub const MANIFEST_MAGIC: [u8; 4] = *b"HAPC";
/// Version byte of the manifest format.
pub const MANIFEST_VERSION: u8 = 1;
/// Version byte of the chunk payload format.
pub const CHUNK_VERSION: u8 = 1;

/// Failure modes of checkpoint commit, decode, and resume.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CkptError {
    /// No committed checkpoint exists under the prefix.
    NoCheckpoint,
    /// A manifest or chunk carries an unknown format version.
    BadVersion(u8),
    /// A structurally valid manifest describes a different machine geometry
    /// or fault configuration than the resuming machine's.
    GeometryMismatch,
    /// A manifest or chunk ends before its format promises.
    Truncated,
    /// The manifest's trailing checksum does not match its contents.
    BadChecksum,
    /// A chunk file referenced by the manifest is missing.
    MissingChunk,
    /// A chunk file's bytes do not hash to the manifest's entry.
    ChunkHashMismatch,
    /// A chunk payload's embedded slab image failed to decode.
    ChunkDecode(SlabDecodeError),
    /// The decoded chunks do not tile the machine (via
    /// [`hyperap_arch::slab::RestoreError`]).
    Restore(RestoreError),
    /// The storage backend failed.
    Sink(SinkError),
}

impl std::fmt::Display for CkptError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CkptError::NoCheckpoint => write!(f, "no committed checkpoint found"),
            CkptError::BadVersion(v) => write!(f, "unknown checkpoint format version {v}"),
            CkptError::GeometryMismatch => {
                write!(
                    f,
                    "checkpoint geometry/fault witness contradicts the machine"
                )
            }
            CkptError::Truncated => write!(f, "checkpoint record truncated"),
            CkptError::BadChecksum => write!(f, "manifest checksum mismatch"),
            CkptError::MissingChunk => write!(f, "manifest references a missing chunk file"),
            CkptError::ChunkHashMismatch => write!(f, "chunk content does not match manifest hash"),
            CkptError::ChunkDecode(e) => write!(f, "chunk payload decode failed: {e}"),
            CkptError::Restore(e) => write!(f, "restore rejected decoded chunks: {e}"),
            CkptError::Sink(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CkptError {}

impl From<SinkError> for CkptError {
    fn from(e: SinkError) -> Self {
        CkptError::Sink(e)
    }
}

impl From<RestoreError> for CkptError {
    fn from(e: RestoreError) -> Self {
        CkptError::Restore(e)
    }
}

impl From<SlabDecodeError> for CkptError {
    fn from(e: SlabDecodeError) -> Self {
        CkptError::ChunkDecode(e)
    }
}

/// FNV-1a 64 over a byte slice — the content hash for chunk addressing and
/// the manifest's self-checksum (same constants as
/// [`ArchConfig::geometry_hash`]).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// The fault-model witness embedded in every manifest: resuming into a
/// machine with a different seeded fault universe would silently change
/// results, so it is part of the geometry check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultWitness {
    /// Fault model seed.
    pub seed: u64,
    /// Stuck cells per million.
    pub stuck_per_million: u32,
    /// Transient misses per million.
    pub miss_per_million: u32,
    /// Endurance retirement limit.
    pub endurance_limit: Option<u64>,
    /// Spare columns per PE.
    pub spare_cols: u64,
}

impl FaultWitness {
    /// The witness of a machine config.
    pub fn of(config: &ArchConfig) -> Self {
        FaultWitness {
            seed: config.faults.model.seed,
            stuck_per_million: config.faults.model.stuck_per_million,
            miss_per_million: config.faults.model.miss_per_million,
            endurance_limit: config.faults.model.endurance_limit,
            spare_cols: config.faults.spare_cols as u64,
        }
    }
}

/// One chunk reference inside a manifest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkEntry {
    /// Global index of the chunk's first PE.
    pub base: u64,
    /// PEs in the chunk.
    pub pes: u32,
    /// Payload length in bytes.
    pub len: u64,
    /// FNV-1a 64 of the payload bytes (also its content address).
    pub hash: u64,
}

/// A decoded manifest: everything needed to locate, verify, and re-apply
/// one committed epoch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// Monotonic commit epoch.
    pub epoch: u64,
    /// [`ArchConfig::geometry_fields`] of the writing machine.
    pub geometry: [u64; 10],
    /// Fault-model witness of the writing machine.
    pub fault: FaultWitness,
    /// Controller state outside the chunk arenas.
    pub extras: MachineExtras,
    /// Chunk references, ascending by `base`.
    pub chunks: Vec<ChunkEntry>,
}

fn key_bit_to_u8(b: KeyBit) -> u8 {
    match b {
        KeyBit::Zero => 0,
        KeyBit::One => 1,
        KeyBit::Z => 2,
        KeyBit::Masked => 3,
    }
}

fn key_bit_from_u8(v: u8) -> Option<KeyBit> {
    match v {
        0 => Some(KeyBit::Zero),
        1 => Some(KeyBit::One),
        2 => Some(KeyBit::Z),
        3 => Some(KeyBit::Masked),
        _ => None,
    }
}

/// Checked sequential reader: every accessor verifies length first, so a
/// truncated blob surfaces as [`CkptError::Truncated`] instead of a panic.
struct Cursor<'a>(&'a [u8]);

impl<'a> Cursor<'a> {
    fn need(&self, n: usize) -> Result<(), CkptError> {
        if self.0.remaining() < n {
            Err(CkptError::Truncated)
        } else {
            Ok(())
        }
    }

    fn u8(&mut self) -> Result<u8, CkptError> {
        self.need(1)?;
        Ok(self.0.get_u8())
    }

    fn u32(&mut self) -> Result<u32, CkptError> {
        self.need(4)?;
        Ok(self.0.get_u32())
    }

    fn u64(&mut self) -> Result<u64, CkptError> {
        self.need(8)?;
        Ok(self.0.get_u64())
    }

    fn bytes(&mut self, n: usize) -> Result<&'a [u8], CkptError> {
        self.need(n)?;
        let (head, tail) = self.0.split_at(n);
        self.0 = tail;
        Ok(head)
    }
}

impl Manifest {
    /// Serialize, appending the trailing self-checksum.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = BytesMut::new();
        buf.put_slice(&MANIFEST_MAGIC);
        buf.put_u8(MANIFEST_VERSION);
        buf.put_u64(self.epoch);
        for field in self.geometry {
            buf.put_u64(field);
        }
        buf.put_u64(self.fault.seed);
        buf.put_u32(self.fault.stuck_per_million);
        buf.put_u32(self.fault.miss_per_million);
        match self.fault.endurance_limit {
            Some(limit) => {
                buf.put_u8(1);
                buf.put_u64(limit);
            }
            None => buf.put_u8(0),
        }
        buf.put_u64(self.fault.spare_cols);
        let groups = self.extras.keys.len();
        debug_assert_eq!(groups, self.geometry[0] as usize, "extras/geometry groups");
        for g in 0..groups {
            let key = &self.extras.keys[g];
            buf.put_u32(key.bits().len() as u32);
            for &b in key.bits() {
                buf.put_u8(key_bit_to_u8(b));
            }
            let plan = &self.extras.key_plans[g];
            buf.put_u32(plan.len() as u32);
            for &(col, b) in plan {
                buf.put_u32(col as u32);
                buf.put_u8(key_bit_to_u8(b));
            }
            buf.put_u8(self.extras.bank_masks[g]);
            let db = &self.extras.data_buffers[g];
            buf.put_u32(db.len() as u32);
            for &w in db.blocks() {
                buf.put_u64(w);
            }
        }
        buf.put_u32(self.chunks.len() as u32);
        for c in &self.chunks {
            buf.put_u64(c.base);
            buf.put_u32(c.pes);
            buf.put_u64(c.len);
            buf.put_u64(c.hash);
        }
        let mut out = buf.to_vec();
        let sum = fnv1a64(&out);
        out.extend_from_slice(&sum.to_be_bytes());
        out
    }

    /// Decode and verify a manifest blob.
    ///
    /// # Errors
    ///
    /// [`CkptError::Truncated`] / [`CkptError::BadChecksum`] for damaged
    /// blobs (a resume falls back to an older epoch on these);
    /// [`CkptError::BadVersion`] for an intact blob from an unknown future
    /// format (a hard error — falling back would silently ignore newer
    /// state).
    pub fn decode(bytes: &[u8]) -> Result<Manifest, CkptError> {
        if bytes.len() < MANIFEST_MAGIC.len() + 8 {
            return Err(CkptError::Truncated);
        }
        let (body, sum_bytes) = bytes.split_at(bytes.len() - 8);
        let want = u64::from_be_bytes(sum_bytes.try_into().expect("8-byte checksum"));
        if fnv1a64(body) != want {
            return Err(CkptError::BadChecksum);
        }
        let mut cur = Cursor(body);
        if cur.bytes(4)? != MANIFEST_MAGIC {
            return Err(CkptError::BadChecksum);
        }
        let version = cur.u8()?;
        if version != MANIFEST_VERSION {
            return Err(CkptError::BadVersion(version));
        }
        let epoch = cur.u64()?;
        let mut geometry = [0u64; 10];
        for field in &mut geometry {
            *field = cur.u64()?;
        }
        let fault = FaultWitness {
            seed: cur.u64()?,
            stuck_per_million: cur.u32()?,
            miss_per_million: cur.u32()?,
            endurance_limit: match cur.u8()? {
                0 => None,
                1 => Some(cur.u64()?),
                _ => return Err(CkptError::Truncated),
            },
            spare_cols: cur.u64()?,
        };
        let groups = geometry[0] as usize;
        let mut extras = MachineExtras {
            keys: Vec::with_capacity(groups),
            key_plans: Vec::with_capacity(groups),
            bank_masks: Vec::with_capacity(groups),
            data_buffers: Vec::with_capacity(groups),
        };
        for _ in 0..groups {
            let width = cur.u32()? as usize;
            let mut bits = Vec::with_capacity(width);
            for _ in 0..width {
                bits.push(key_bit_from_u8(cur.u8()?).ok_or(CkptError::Truncated)?);
            }
            extras.keys.push(SearchKey::from_bits(bits));
            let plen = cur.u32()? as usize;
            let mut plan = Vec::with_capacity(plen);
            for _ in 0..plen {
                let col = cur.u32()? as usize;
                plan.push((col, key_bit_from_u8(cur.u8()?).ok_or(CkptError::Truncated)?));
            }
            extras.key_plans.push(plan);
            extras.bank_masks.push(cur.u8()?);
            let rows = cur.u32()? as usize;
            if rows == 0 {
                return Err(CkptError::Truncated);
            }
            let mut db = TagVector::zeros(rows);
            for w in db.blocks_mut() {
                *w = cur.u64()?;
            }
            extras.data_buffers.push(db);
        }
        let nchunks = cur.u32()? as usize;
        let mut chunks = Vec::with_capacity(nchunks);
        for _ in 0..nchunks {
            chunks.push(ChunkEntry {
                base: cur.u64()?,
                pes: cur.u32()?,
                len: cur.u64()?,
                hash: cur.u64()?,
            });
        }
        if cur.0.has_remaining() {
            return Err(CkptError::Truncated);
        }
        Ok(Manifest {
            epoch,
            geometry,
            fault,
            extras,
            chunks,
        })
    }
}

/// Serialize one chunk's state into a payload blob.
pub fn encode_chunk(state: &ChunkState<'_>) -> Vec<u8> {
    let mut buf = BytesMut::new();
    buf.put_u8(CHUNK_VERSION);
    buf.put_u64(state.global_base as u64);
    for blob in [
        state.storage.to_bytes(),
        state.tags.to_bytes(),
        state.latch.to_bytes(),
        state.regs.to_bytes(),
    ] {
        buf.put_u64(blob.len() as u64);
        buf.put_slice(&blob);
    }
    buf.put_u32(state.ops.len() as u32);
    let mut ops = Vec::with_capacity(state.ops.len() * OpCounts::ENCODED_LEN);
    for o in state.ops {
        o.encode_into(&mut ops);
    }
    buf.put_slice(&ops);
    buf.to_vec()
}

/// Decode one chunk payload blob.
///
/// # Errors
///
/// [`CkptError::Truncated`] on short blobs, [`CkptError::BadVersion`] on
/// unknown payload versions, [`CkptError::ChunkDecode`] when an embedded
/// slab image is damaged.
pub fn decode_chunk(bytes: &[u8]) -> Result<ChunkPayload, CkptError> {
    let mut cur = Cursor(bytes);
    let version = cur.u8()?;
    if version != CHUNK_VERSION {
        return Err(CkptError::BadVersion(version));
    }
    let global_base = cur.u64()? as usize;
    let mut blobs: Vec<&[u8]> = Vec::with_capacity(4);
    for _ in 0..4 {
        let len = cur.u64()? as usize;
        blobs.push(cur.bytes(len)?);
    }
    let storage = TcamSlab::from_bytes(blobs[0])?;
    let tags = TagSlab::from_bytes(blobs[1])?;
    let latch = TagSlab::from_bytes(blobs[2])?;
    let regs = TagSlab::from_bytes(blobs[3])?;
    let nops = cur.u32()? as usize;
    let mut ops = Vec::with_capacity(nops);
    for _ in 0..nops {
        let rec = cur.bytes(OpCounts::ENCODED_LEN)?;
        ops.push(OpCounts::decode(rec).expect("exact-length record"));
    }
    if cur.0.has_remaining() {
        return Err(CkptError::Truncated);
    }
    Ok(ChunkPayload {
        global_base,
        storage,
        tags,
        latch,
        regs,
        ops,
    })
}
