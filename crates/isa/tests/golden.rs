//! Golden-vector conformance: `tests/golden/instructions.json` freezes the
//! exact byte image, Table-I byte length, and RRAM/CMOS cycle cost of every
//! instruction. Any encoding or timing drift fails here **naming the exact
//! instruction**, instead of surfacing as a distant downstream stats mismatch.
//!
//! The JSON is read with a minimal recursive-descent parser — the workspace
//! vendors no JSON dependency, and the golden file is the only JSON these
//! tests consume.

use hyperap_isa::{decode_stream, encode, Direction, Instruction, KEY_COLUMNS};
use hyperap_model::TechParams;
use hyperap_tcam::bit::KeyBit;
use hyperap_tcam::key::SearchKey;
use std::collections::BTreeMap;

// ---------------------------------------------------------------------------
// Minimal JSON reader (objects, arrays, strings, integers).
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Json {
    Object(BTreeMap<String, Json>),
    Array(Vec<Json>),
    String(String),
    Number(i64),
}

impl Json {
    fn get(&self, key: &str) -> &Json {
        match self {
            Json::Object(m) => m.get(key).unwrap_or_else(|| panic!("missing key {key:?}")),
            other => panic!("expected object with {key:?}, got {other:?}"),
        }
    }

    fn str(&self, key: &str) -> &str {
        match self.get(key) {
            Json::String(s) => s,
            other => panic!("key {key:?} is not a string: {other:?}"),
        }
    }

    fn num(&self, key: &str) -> i64 {
        match self.get(key) {
            Json::Number(n) => *n,
            other => panic!("key {key:?} is not a number: {other:?}"),
        }
    }

    fn array(&self, key: &str) -> &[Json] {
        match self.get(key) {
            Json::Array(v) => v,
            other => panic!("key {key:?} is not an array: {other:?}"),
        }
    }
}

struct Parser<'a> {
    src: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.src.len() && self.src[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> u8 {
        self.skip_ws();
        *self.src.get(self.pos).expect("unexpected end of JSON")
    }

    fn expect(&mut self, b: u8) {
        let got = self.peek();
        assert_eq!(got as char, b as char, "at byte {}", self.pos);
        self.pos += 1;
    }

    fn value(&mut self) -> Json {
        match self.peek() {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Json::String(self.string()),
            _ => self.number(),
        }
    }

    fn object(&mut self) -> Json {
        self.expect(b'{');
        let mut map = BTreeMap::new();
        if self.peek() == b'}' {
            self.pos += 1;
            return Json::Object(map);
        }
        loop {
            let key = self.string();
            self.expect(b':');
            map.insert(key, self.value());
            match self.peek() {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Json::Object(map);
                }
                other => panic!("expected ',' or '}}', got {:?}", other as char),
            }
        }
    }

    fn array(&mut self) -> Json {
        self.expect(b'[');
        let mut out = Vec::new();
        if self.peek() == b']' {
            self.pos += 1;
            return Json::Array(out);
        }
        loop {
            out.push(self.value());
            match self.peek() {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Json::Array(out);
                }
                other => panic!("expected ',' or ']', got {:?}", other as char),
            }
        }
    }

    fn string(&mut self) -> String {
        self.expect(b'"');
        let start = self.pos;
        while self.src[self.pos] != b'"' {
            assert_ne!(self.src[self.pos], b'\\', "escapes not used in golden file");
            self.pos += 1;
        }
        let s = std::str::from_utf8(&self.src[start..self.pos])
            .expect("golden file is UTF-8")
            .to_string();
        self.pos += 1;
        s
    }

    fn number(&mut self) -> Json {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.src.len()
            && (self.src[self.pos].is_ascii_digit() || self.src[self.pos] == b'-')
        {
            self.pos += 1;
        }
        Json::Number(
            std::str::from_utf8(&self.src[start..self.pos])
                .unwrap()
                .parse()
                .expect("integer"),
        )
    }
}

fn parse_json(src: &str) -> Json {
    let mut p = Parser {
        src: src.as_bytes(),
        pos: 0,
    };
    let v = p.value();
    p.skip_ws();
    assert_eq!(p.pos, p.src.len(), "trailing bytes after JSON document");
    v
}

fn parse_hex(s: &str) -> Vec<u8> {
    assert!(s.len().is_multiple_of(2), "odd-length hex string {s:?}");
    (0..s.len() / 2)
        .map(|i| u8::from_str_radix(&s[2 * i..2 * i + 2], 16).expect("hex byte"))
        .collect()
}

// ---------------------------------------------------------------------------
// The instruction each named vector freezes.
// ---------------------------------------------------------------------------

fn vector_instruction(name: &str) -> Instruction {
    match name {
        "search_plain" => Instruction::Search {
            acc: false,
            encode: false,
        },
        "search_acc_enc" => Instruction::Search {
            acc: true,
            encode: true,
        },
        "write_plain" => Instruction::Write {
            col: 7,
            encode: false,
        },
        "write_encoded" => Instruction::Write {
            col: 200,
            encode: true,
        },
        "setkey" => {
            // Column 0 = 1, column 1 = 0, column 2 = Z, the rest masked.
            let mut key = SearchKey::masked(KEY_COLUMNS);
            key.set_bit(0, KeyBit::One);
            key.set_bit(1, KeyBit::Zero);
            key.set_bit(2, KeyBit::Z);
            Instruction::SetKey { key }
        }
        "count" => Instruction::Count,
        "index" => Instruction::Index,
        "movr_right" => Instruction::MovR {
            dir: Direction::Right,
        },
        "readr_high_addr" => Instruction::ReadR { addr: 0x1ABCD },
        "writer_imm" => Instruction::WriteR {
            addr: 0x0FF00,
            imm: (0..64).collect(),
        },
        "settag" => Instruction::SetTag,
        "readtag" => Instruction::ReadTag,
        "broadcast" => Instruction::Broadcast {
            group_mask: 0b1010_0101,
        },
        "wait_99" => Instruction::Wait { cycles: 99 },
        other => panic!("golden vector {other:?} has no instruction constructor"),
    }
}

fn instructions_equal(a: &Instruction, b: &Instruction) -> bool {
    match (a, b) {
        (Instruction::SetKey { key: ka }, Instruction::SetKey { key: kb }) => {
            (0..KEY_COLUMNS).all(|c| ka.bit(c) == kb.bit(c))
        }
        _ => a == b,
    }
}

fn load_vectors() -> Vec<(String, Instruction, Vec<u8>, usize, u64, u64)> {
    let src = include_str!("golden/instructions.json");
    let doc = parse_json(src);
    doc.array("vectors")
        .iter()
        .map(|v| {
            (
                v.str("name").to_string(),
                vector_instruction(v.str("name")),
                parse_hex(v.str("bytes")),
                v.num("length") as usize,
                v.num("cycles_rram") as u64,
                v.num("cycles_cmos") as u64,
            )
        })
        .collect()
}

#[test]
fn golden_file_covers_every_mnemonic() {
    let vectors = load_vectors();
    assert!(vectors.len() >= 14, "vector list shrank");
    let mut mnemonics: Vec<&'static str> = vectors.iter().map(|(_, i, ..)| i.mnemonic()).collect();
    mnemonics.sort_unstable();
    mnemonics.dedup();
    assert_eq!(
        mnemonics,
        vec![
            "broadcast",
            "count",
            "index",
            "movr",
            "readr",
            "readtag",
            "search",
            "setkey",
            "settag",
            "wait",
            "write",
            "writer",
        ],
        "every Table I mnemonic must appear in the golden file"
    );
    // The JSON-declared mnemonic must agree with the constructed one.
    let src = include_str!("golden/instructions.json");
    let doc = parse_json(src);
    for v in doc.array("vectors") {
        assert_eq!(
            vector_instruction(v.str("name")).mnemonic(),
            v.str("mnemonic"),
            "vector {} declares the wrong mnemonic",
            v.str("name")
        );
    }
}

#[test]
fn encoding_matches_golden_bytes() {
    for (name, inst, bytes, length, _, _) in load_vectors() {
        let got = encode(std::slice::from_ref(&inst));
        assert_eq!(
            got,
            bytes,
            "`{}` vector {name}: encoding drifted",
            inst.mnemonic()
        );
        assert_eq!(
            inst.length(),
            length,
            "`{}` vector {name}: Table I length drifted",
            inst.mnemonic()
        );
        assert_eq!(
            got.len(),
            length,
            "`{}` vector {name}: encoded size disagrees with Table I length",
            inst.mnemonic()
        );
    }
}

#[test]
fn decoding_matches_golden_bytes() {
    for (name, inst, bytes, _, _, _) in load_vectors() {
        let decoded = decode_stream(&bytes)
            .unwrap_or_else(|e| panic!("`{}` vector {name}: {e}", inst.mnemonic()));
        assert_eq!(decoded.len(), 1, "`{}` vector {name}", inst.mnemonic());
        assert!(
            instructions_equal(&decoded[0], &inst),
            "`{}` vector {name}: decode drifted: {:?}",
            inst.mnemonic(),
            decoded[0]
        );
    }
}

#[test]
fn cycle_costs_match_golden_table1() {
    let rram = TechParams::rram();
    let cmos = TechParams::cmos();
    for (name, inst, _, _, cycles_rram, cycles_cmos) in load_vectors() {
        assert_eq!(
            inst.cycles(&rram),
            cycles_rram,
            "`{}` vector {name}: RRAM cycle cost drifted",
            inst.mnemonic()
        );
        assert_eq!(
            inst.cycles(&cmos),
            cycles_cmos,
            "`{}` vector {name}: CMOS cycle cost drifted",
            inst.mnemonic()
        );
    }
}

#[test]
fn golden_stream_concatenation_round_trips() {
    // All vectors concatenated decode as one stream — offsets stay aligned
    // across variable-length instructions.
    let vectors = load_vectors();
    let all_bytes: Vec<u8> = vectors.iter().flat_map(|(_, _, b, ..)| b.clone()).collect();
    let decoded = decode_stream(&all_bytes).expect("concatenated golden stream decodes");
    assert_eq!(decoded.len(), vectors.len());
    for (d, (name, inst, ..)) in decoded.iter().zip(&vectors) {
        assert!(
            instructions_equal(d, inst),
            "`{}` vector {name} misdecoded in stream context",
            inst.mnemonic()
        );
    }
}
