//! Language-level integration tests: every operator and construct of the
//! C-like language (§V-A) compiles and executes with C semantics, validated
//! exhaustively at small widths against the DFG interpreter and Rust.

use hyperap_compiler::{compile, CompileError, CompileOptions};

fn run(src: &str, inputs: &[&[u64]]) -> Vec<u64> {
    compile(src, &CompileOptions::default())
        .unwrap_or_else(|e| panic!("{e}\n{src}"))
        .run_rows(inputs)
        .unwrap()
}

#[test]
fn every_binary_operator_small_width_exhaustive() {
    type BinRef = fn(u64, u64) -> u64;
    let cases: &[(&str, BinRef, usize)] = &[
        ("a + b", |a, b| (a + b) & 0x1F, 5),
        ("a - b", |a, b| a.wrapping_sub(b) & 0xF, 4),
        ("a & b", |a, b| a & b, 4),
        ("a | b", |a, b| a | b, 4),
        ("a ^ b", |a, b| a ^ b, 4),
        ("a == b", |a, b| (a == b) as u64, 1),
        ("a != b", |a, b| (a != b) as u64, 1),
        ("a < b", |a, b| (a < b) as u64, 1),
        ("a <= b", |a, b| (a <= b) as u64, 1),
        ("a > b", |a, b| (a > b) as u64, 1),
        ("a >= b", |a, b| (a >= b) as u64, 1),
    ];
    for (expr, reference, out_w) in cases {
        let src = format!(
            "unsigned int ({out_w}) main(unsigned int (4) a, unsigned int (4) b) {{ return {expr}; }}"
        );
        let kernel = compile(&src, &CompileOptions::default()).unwrap();
        let rows: Vec<Vec<u64>> = (0..256u64).map(|i| vec![i & 0xF, i >> 4]).collect();
        let refs: Vec<&[u64]> = rows.iter().map(|r| r.as_slice()).collect();
        let out = kernel.run_rows(&refs).unwrap();
        for (row, o) in rows.iter().zip(&out) {
            let mask = ((1u128 << out_w) - 1) as u64;
            assert_eq!(*o, reference(row[0], row[1]) & mask, "{expr} on {row:?}");
        }
    }
}

#[test]
fn mul_div_rem_exhaustive_4bit() {
    let kernel = compile(
        "unsigned int (8) main(unsigned int (4) a, unsigned int (4) b) {
             return a * b + a / b + a % b;
         }",
        &CompileOptions::default(),
    )
    .unwrap();
    let rows: Vec<Vec<u64>> = (0..16u64)
        .flat_map(|a| (1..16u64).map(move |b| vec![a, b]))
        .collect();
    let refs: Vec<&[u64]> = rows.iter().map(|r| r.as_slice()).collect();
    let out = kernel.run_rows(&refs).unwrap();
    for (row, o) in rows.iter().zip(&out) {
        let (a, b) = (row[0], row[1]);
        assert_eq!(*o, (a * b + a / b + a % b) & 0xFF, "a={a} b={b}");
    }
}

#[test]
fn unary_operators() {
    assert_eq!(
        run(
            "unsigned int (4) main(unsigned int (4) a) { return ~a; }",
            &[&[0b1010]]
        ),
        vec![0b0101]
    );
    assert_eq!(
        run("int (5) main(int (5) a) { return -a; }", &[&[3]]),
        vec![(-3i64 & 0x1F) as u64]
    );
    assert_eq!(
        run(
            "bool main(unsigned int (4) a) { return !(a > 2); }",
            &[&[1], &[7]]
        ),
        vec![1, 0]
    );
}

#[test]
fn logical_operators_on_bools() {
    let src = "bool main(unsigned int (4) a, unsigned int (4) b) {
        return (a > 4) && (b < 4) || (a == b);
    }";
    let kernel = compile(src, &CompileOptions::default()).unwrap();
    for a in 0..16u64 {
        for b in 0..16u64 {
            let expect = ((a > 4) && (b < 4) || (a == b)) as u64;
            assert_eq!(
                kernel.run_rows(&[&[a, b]]).unwrap()[0],
                expect,
                "a={a} b={b}"
            );
        }
    }
}

#[test]
fn nested_ifs_and_else_if_chains() {
    let src = "unsigned int (3) main(unsigned int (6) a) {
        unsigned int (3) grade;
        if (a >= 50) { grade = 5; }
        else if (a >= 30) {
            if (a >= 40) { grade = 4; } else { grade = 3; }
        }
        else { grade = 1; }
        return grade;
    }";
    let kernel = compile(src, &CompileOptions::default()).unwrap();
    for (a, expect) in [(55u64, 5u64), (45, 4), (35, 3), (10, 1), (50, 5), (30, 3)] {
        assert_eq!(kernel.run_rows(&[&[a]]).unwrap()[0], expect, "a={a}");
    }
}

#[test]
fn nested_loops_unroll() {
    let src = "unsigned int (8) main(unsigned int (2) a) {
        unsigned int (8) s;
        s = 0;
        for (i = 0; i < 3; i += 1) {
            for (j = 0; j < 2; j += 1) {
                s = s + a + i + j;
            }
        }
        return s;
    }";
    // s = sum over i in 0..3, j in 0..2 of (a+i+j) = 6a + 2*(0+1+2) + 3*(0+1)
    let kernel = compile(src, &CompileOptions::default()).unwrap();
    for a in 0..4u64 {
        assert_eq!(kernel.run_rows(&[&[a]]).unwrap()[0], 6 * a + 9, "a={a}");
    }
}

#[test]
fn struct_round_trip_through_computation() {
    let src = "
        struct complex { int (8) re; int (8) im; };
        struct complex main(struct complex x, struct complex y) {
            struct complex r;
            r.re = x.re + y.re;
            r.im = x.im - y.im;
            return r;
        }";
    let kernel = compile(src, &CompileOptions::default()).unwrap();
    let out = kernel.run_rows_multi(&[&[10, 20, 5, 8]]).unwrap();
    assert_eq!(out[0][0], 15);
    assert_eq!(out[0][1], 12);
}

#[test]
fn signed_arithmetic_and_shifts() {
    let src = "int (8) main(int (8) a) {
        int (8) t;
        t = a - 100;
        return t >> 2;
    }";
    let kernel = compile(src, &CompileOptions::default()).unwrap();
    // a = 20: t = -80; arithmetic shift: -20.
    assert_eq!(
        kernel.run_rows(&[&[20]]).unwrap()[0],
        (-20i64 & 0xFF) as u64
    );
    // a = 120: t = 20; 20 >> 2 = 5.
    assert_eq!(kernel.run_rows(&[&[120]]).unwrap()[0], 5);
}

#[test]
fn sqrt_and_exp_builtins_compile() {
    let k = compile(
        "unsigned int (8) main(unsigned int (16) a) { return sqrt(a); }",
        &CompileOptions::default(),
    )
    .unwrap();
    assert_eq!(k.run_rows(&[&[10000], &[65535]]).unwrap(), vec![100, 255]);

    let k = compile(
        "unsigned int (16) main(unsigned int (16) x) { return exp(x, 8); }",
        &CompileOptions::default(),
    )
    .unwrap();
    // exp(1.0) in Q8 ≈ 2.718 * 256 ≈ 696.
    let y = k.run_rows(&[&[256]]).unwrap()[0];
    assert!((y as f64 / 256.0 - std::f64::consts::E).abs() < 0.06, "{y}");
}

#[test]
fn dead_code_after_return_is_ignored() {
    let out = run(
        "unsigned int (4) main(unsigned int (4) a) {
             return a;
             a = a + 1;
             return a;
         }",
        &[&[7]],
    );
    assert_eq!(out, vec![7]);
}

#[test]
fn width_truncation_on_assignment() {
    let out = run(
        "unsigned int (3) main(unsigned int (8) a) {
             unsigned int (3) t;
             t = a;
             return t;
         }",
        &[&[0xFF], &[0b101]],
    );
    assert_eq!(out, vec![0b111, 0b101]);
}

#[test]
fn useful_error_messages() {
    let errs = [
        ("unsigned int (4) main() { return x; }", "undeclared"),
        (
            "unsigned int (4) main(unsigned int (4) a) { return a << a; }",
            "compile-time",
        ),
        (
            "unsigned int (4) main(unsigned int (4) a) { a; }",
            "expected",
        ),
        (
            "int (8) main(int (8) a) { return a / a; }",
            "signed division",
        ),
    ];
    for (src, needle) in errs {
        let err = compile(src, &CompileOptions::default()).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains(needle), "{src}: {msg}");
        let _: CompileError = err;
    }
}

#[test]
fn compilation_report_is_informative() {
    let kernel = compile(
        "unsigned int (9) main(unsigned int (8) a, unsigned int (8) b) { return a + b; }",
        &CompileOptions::default(),
    )
    .unwrap();
    let report = kernel.report();
    assert!(report.contains("a:8b"), "{report}");
    assert!(report.contains("result:9b"), "{report}");
    assert!(report.contains("searches"), "{report}");
    assert!(kernel.max_column_used() < 256);
}

#[test]
fn oversized_programs_error_instead_of_panicking() {
    // Six chained 32-bit multiplies cannot fit one 256-column PE; the
    // public API must report that as Unsupported, not unwind.
    let big = format!(
        "unsigned int (32) main(unsigned int (32) a, unsigned int (32) b) {{
            unsigned int (32) t; t = a;
            {} return t; }}",
        "t = t * b; ".repeat(6)
    );
    let err = compile(&big, &CompileOptions::default()).unwrap_err();
    assert!(matches!(err, CompileError::Unsupported(_)), "{err}");
    assert!(err.to_string().contains("does not fit"), "{err}");
}
