//! Search keys: a key register + mask register pair (Fig 1a / Fig 4a).
//!
//! The paper stores the three traditional key-bit states (0, 1, masked) in
//! two registers (key + mask) and reuses the spare combination for the `Z`
//! input (§VI-B: "one combination of these two bits are not used. In
//! Hyper-AP, we use this combination to store the additional Z input state").
//! [`SearchKey`] is the logical view of that pair.

use crate::bit::KeyBit;
use serde::{Deserialize, Serialize};

/// A search/write key over a word of TCAM columns.
///
/// Unspecified (masked) columns do not participate in a search and are left
/// untouched by a write.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SearchKey {
    bits: Vec<KeyBit>,
}

impl std::hash::Hash for SearchKey {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.bits.hash(state);
    }
}

impl PartialEq for SearchKey {
    fn eq(&self, other: &Self) -> bool {
        // Accumulate with a non-short-circuiting `&` instead of the
        // derived per-element compare: keys are the bulk of an
        // instruction stream's bytes (a 256-column immediate per
        // `SetKey`), and engines validate their compiled-trace caches by
        // comparing whole streams per run — the branch-free reduction
        // vectorizes, the early-exit loop does not (~10× slower at
        // stream scale).
        self.bits.len() == other.bits.len()
            && self
                .bits
                .iter()
                .zip(&other.bits)
                .fold(true, |acc, (a, b)| acc & (a == b))
    }
}

impl Eq for SearchKey {}

impl SearchKey {
    /// A fully-masked key over `width` columns.
    pub fn masked(width: usize) -> Self {
        SearchKey {
            bits: vec![KeyBit::Masked; width],
        }
    }

    /// Build from explicit key bits.
    pub fn from_bits(bits: Vec<KeyBit>) -> Self {
        SearchKey { bits }
    }

    /// Parse from a string of `0`, `1`, `Z` and `-` characters
    /// (underscores ignored).
    ///
    /// # Errors
    ///
    /// Returns the offending character on invalid input.
    ///
    /// # Example
    /// ```
    /// let k = hyperap_tcam::SearchKey::parse("1Z-0").unwrap();
    /// assert_eq!(k.width(), 4);
    /// ```
    pub fn parse(s: &str) -> Result<Self, char> {
        let bits = s
            .chars()
            .filter(|&c| c != '_')
            .map(|c| KeyBit::from_char(c).ok_or(c))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(SearchKey { bits })
    }

    /// Number of columns this key spans.
    pub fn width(&self) -> usize {
        self.bits.len()
    }

    /// The key bits.
    pub fn bits(&self) -> &[KeyBit] {
        &self.bits
    }

    /// The key bit for a column (`Masked` if out of range).
    pub fn bit(&self, col: usize) -> KeyBit {
        self.bits.get(col).copied().unwrap_or(KeyBit::Masked)
    }

    /// Set the key bit for `col`, growing the key with masked bits if needed.
    pub fn set_bit(&mut self, col: usize, bit: KeyBit) {
        if col >= self.bits.len() {
            self.bits.resize(col + 1, KeyBit::Masked);
        }
        self.bits[col] = bit;
    }

    /// Builder-style [`set_bit`](Self::set_bit).
    #[must_use]
    pub fn with_bit(mut self, col: usize, bit: KeyBit) -> Self {
        self.set_bit(col, bit);
        self
    }

    /// Set `width` consecutive bits starting at `col` to the binary value
    /// `value` (LSB at `col`).
    pub fn set_field(&mut self, col: usize, width: usize, value: u64) {
        for i in 0..width {
            self.set_bit(col + i, KeyBit::from(value >> i & 1 == 1));
        }
    }

    /// Overwrite this key with the contents of `src`, reusing the existing
    /// bit storage (the hot-path alternative to `*self = src.clone()`).
    pub fn copy_from(&mut self, src: &SearchKey) {
        self.bits.clone_from(&src.bits);
    }

    /// Indices of the unmasked (active) columns.
    pub fn active_columns(&self) -> impl Iterator<Item = usize> + '_ {
        self.bits
            .iter()
            .enumerate()
            .filter(|(_, b)| **b != KeyBit::Masked)
            .map(|(i, _)| i)
    }

    /// `(column, bit)` pairs of the unmasked columns, in ascending column
    /// order — the input to a precompiled search plan
    /// (`TcamArray::search_plan_into`).
    pub fn active_bits(&self) -> impl Iterator<Item = (usize, KeyBit)> + '_ {
        self.bits
            .iter()
            .enumerate()
            .filter(|(_, b)| **b != KeyBit::Masked)
            .map(|(i, b)| (i, *b))
    }

    /// Collect the unmasked `(column, bit)` pairs into `out` (cleared
    /// first), reusing its storage — the plan-cache refill path shared by
    /// the interpreter's per-`SetKey` cache and the trace compiler
    /// (`TcamArray::search_plan_into` consumes the result).
    pub fn plan_into(&self, out: &mut Vec<(usize, KeyBit)>) {
        out.clear();
        out.extend(self.active_bits());
    }

    /// Allocating variant of [`plan_into`](Self::plan_into): build a fresh
    /// precompiled search plan for this key.
    pub fn compile_plan(&self) -> Vec<(usize, KeyBit)> {
        self.active_bits().collect()
    }

    /// Number of unmasked columns.
    pub fn active_count(&self) -> usize {
        self.active_columns().count()
    }

    /// True if every column is masked (matches all words, writes nothing).
    pub fn is_fully_masked(&self) -> bool {
        self.bits.iter().all(|b| *b == KeyBit::Masked)
    }
}

impl std::fmt::Display for SearchKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for b in &self.bits {
            write!(f, "{b}")?;
        }
        Ok(())
    }
}

impl FromIterator<KeyBit> for SearchKey {
    fn from_iter<T: IntoIterator<Item = KeyBit>>(iter: T) -> Self {
        SearchKey {
            bits: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_display_round_trip() {
        let s = "10Z-0-1Z";
        assert_eq!(SearchKey::parse(s).unwrap().to_string(), s);
    }

    #[test]
    fn parse_rejects_bad_chars() {
        assert_eq!(SearchKey::parse("10#"), Err('#'));
    }

    #[test]
    fn set_bit_grows() {
        let mut k = SearchKey::masked(2);
        k.set_bit(5, KeyBit::One);
        assert_eq!(k.width(), 6);
        assert_eq!(k.bit(5), KeyBit::One);
        assert_eq!(k.bit(3), KeyBit::Masked);
    }

    #[test]
    fn set_field_is_lsb_first() {
        let mut k = SearchKey::masked(8);
        k.set_field(2, 3, 0b101);
        assert_eq!(k.to_string(), "--101---");
    }

    #[test]
    fn active_columns_skips_masked() {
        let k = SearchKey::parse("-1-Z").unwrap();
        assert_eq!(k.active_columns().collect::<Vec<_>>(), vec![1, 3]);
        assert_eq!(k.active_count(), 2);
        assert!(!k.is_fully_masked());
        assert!(SearchKey::masked(4).is_fully_masked());
    }

    #[test]
    fn copy_from_reuses_storage_when_widths_match() {
        let mut dst = SearchKey::masked(8);
        let src = SearchKey::parse("10Z-10Z-").unwrap();
        let ptr = dst.bits().as_ptr();
        dst.copy_from(&src);
        assert_eq!(dst, src);
        assert_eq!(dst.bits().as_ptr(), ptr, "no reallocation");
    }

    #[test]
    fn plan_into_matches_compile_plan_and_reuses_storage() {
        let k = SearchKey::parse("1-Z0--1-").unwrap();
        let plan = k.compile_plan();
        assert_eq!(
            plan,
            vec![
                (0, KeyBit::One),
                (2, KeyBit::Z),
                (3, KeyBit::Zero),
                (6, KeyBit::One)
            ]
        );
        let mut reused = Vec::with_capacity(8);
        let ptr = reused.as_ptr();
        k.plan_into(&mut reused);
        assert_eq!(reused, plan);
        assert_eq!(reused.as_ptr(), ptr, "no reallocation within capacity");
        SearchKey::masked(4).plan_into(&mut reused);
        assert!(reused.is_empty(), "fully-masked key compiles to no steps");
    }

    #[test]
    fn out_of_range_bit_is_masked() {
        let k = SearchKey::masked(2);
        assert_eq!(k.bit(100), KeyBit::Masked);
    }
}
