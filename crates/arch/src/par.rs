//! Fork-join helpers for the execution engine.
//!
//! The engine's only parallel shape is a fan-out over disjoint chunks of a
//! per-group PE slice. `rayon` is not available in the offline build, so
//! these helpers provide the same shape with [`std::thread::scope`]: the
//! slice is split into near-equal contiguous chunks, one scoped thread per
//! chunk, and the scope joins them all before returning. With one thread
//! (or a trivially small slice) the call degrades to a plain loop on the
//! caller's thread — no spawn, no synchronization, no allocation.
//!
//! Determinism: chunks are disjoint, each element is touched by exactly one
//! thread, and callers receive the chunk's starting offset so any results
//! land at fixed positions — the outcome is independent of thread
//! scheduling by construction.

/// Measured cost in nanoseconds of one two-worker fork-join over running
/// the same trivial dispatch inline — calibrated once per process on first
/// use (a short dispatch timed both ways) and cached.
///
/// `ExecMode::Auto` compares this against a conservative estimate of a
/// dispatch's work to decide whether fanning out can possibly win. The
/// result is floored at 2 µs so Auto never threads tiny dispatches even on
/// hosts where the measurement comes out spuriously cheap (e.g. under a
/// coarse clock).
pub fn forkjoin_overhead_ns() -> u64 {
    static OVERHEAD: std::sync::OnceLock<u64> = std::sync::OnceLock::new();
    *OVERHEAD.get_or_init(|| {
        const REPS: u32 = 24;
        let touch = |_: usize, chunk: &mut [u8]| {
            for x in chunk {
                *x = x.wrapping_add(1);
            }
        };
        let mut buf = [0u8; 2];
        // Warm the spawn path so first-thread setup cost isn't billed to
        // the steady-state measurement.
        for_each_chunk(2, &mut buf, touch);
        let start = std::time::Instant::now();
        for _ in 0..REPS {
            for_each_chunk(2, &mut buf, touch);
        }
        let forked = start.elapsed();
        let start = std::time::Instant::now();
        for _ in 0..REPS {
            for_each_chunk(1, &mut buf, touch);
        }
        let inline = start.elapsed();
        let per_join = forked.saturating_sub(inline).as_nanos() as u64 / u64::from(REPS);
        per_join.max(2_000)
    })
}

/// Whether forking can beat running inline on this host *at all* —
/// decided once per process and cached.
///
/// A fork-join only wins when a second worker runs on a second core. On a
/// single-CPU host (the checked-in bench baseline records `cpus: 1`) the
/// workers time-slice one core, so every threaded dispatch pays spawn and
/// join cost for zero overlap — `BENCH_SIM.json`'s forced-`Parallel`
/// columns measure that loss directly (0.71×/0.77× of sequential).
/// `ExecMode::Auto` consults this before its per-dispatch break-even rule
/// so it can never follow `Parallel` down that path, even when
/// `HYPERAP_THREADS` advertises a wider host than the hardware provides.
///
/// The decision is `available_parallelism() >= 2`, checked against the
/// *physical* host (the `HYPERAP_THREADS` override caps fan-out width but
/// cannot conjure cores). When the physical width passes, a measured
/// sanity check confirms a two-worker compute-bound dispatch actually
/// outruns the same work inline — containers sometimes report cores a
/// cgroup quota won't deliver.
pub fn parallel_pays() -> bool {
    static PAYS: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *PAYS.get_or_init(|| {
        let physical = std::thread::available_parallelism().map_or(1, |n| n.get());
        if physical < 2 {
            return false;
        }
        // Compute-bound probe, sized so genuine two-core overlap dwarfs the
        // fork-join overhead (~2 µs): ~256 µs of work per pass.
        const N: usize = 1 << 16;
        const REPS: u32 = 4;
        let work = |_: usize, chunk: &mut [u32]| {
            for x in chunk.iter_mut() {
                *x = x.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
            }
        };
        let mut buf = vec![0u32; N];
        let time = |threads: usize, buf: &mut Vec<u32>| {
            for_each_chunk(threads, buf, work); // warm
            let start = std::time::Instant::now();
            for _ in 0..REPS {
                for_each_chunk(threads, buf, work);
            }
            start.elapsed().as_nanos() as u64
        };
        let forked = time(2, &mut buf);
        let inline = time(1, &mut buf);
        std::hint::black_box(&buf);
        two_workers_win(forked, inline)
    })
}

/// Logical CPU count the scheduler will actually give this process —
/// `available_parallelism()` (cgroup/affinity aware), floored at 1.
pub fn logical_cpus() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Physical core count of the host, best effort: the number of distinct
/// `(physical id, core id)` pairs in `/proc/cpuinfo`. Falls back to
/// [`logical_cpus`] when the file is absent or unparseable (non-Linux,
/// stripped containers), so the result is always ≥ 1 and never exceeds
/// what the kernel reports as schedulable.
///
/// Benches record this next to the logical count and the
/// [`parallel_pays`] outcome so a 1-CPU CI run and a real multi-core run
/// are distinguishable in `BENCH_SIM.json` — SMT siblings inflate the
/// logical count but share execution units, and the compute-bound slab
/// kernels scale with *cores*, not hardware threads.
pub fn physical_cores() -> usize {
    static CORES: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *CORES.get_or_init(|| {
        let Ok(info) = std::fs::read_to_string("/proc/cpuinfo") else {
            return logical_cpus();
        };
        let mut pairs = std::collections::HashSet::new();
        let (mut phys, mut core) = (None::<u64>, None::<u64>);
        let mut flush = |phys: &mut Option<u64>, core: &mut Option<u64>| {
            if let (Some(p), Some(c)) = (phys.take(), core.take()) {
                pairs.insert((p, c));
            }
        };
        for line in info.lines() {
            let Some((key, value)) = line.split_once(':') else {
                // Blank line: end of one processor's stanza.
                flush(&mut phys, &mut core);
                continue;
            };
            match key.trim() {
                "physical id" => phys = value.trim().parse().ok(),
                "core id" => core = value.trim().parse().ok(),
                _ => {}
            }
        }
        flush(&mut phys, &mut core);
        if pairs.is_empty() {
            logical_cpus()
        } else {
            pairs.len()
        }
    })
}

/// The pure decision behind [`parallel_pays`]: two workers "win" only when
/// the forked timing beats inline by at least 10%, so scheduler noise on a
/// host with no real second core can't flip Auto into the losing mode.
pub fn two_workers_win(forked_ns: u64, inline_ns: u64) -> bool {
    forked_ns.saturating_mul(10) < inline_ns.saturating_mul(9)
}

/// Run `f(offset, chunk)` over up to `threads` near-equal contiguous chunks
/// of `data`, where `offset` is the chunk's starting index in `data`.
///
/// `threads <= 1` or `data.len() < 2` runs `f(0, data)` inline.
pub fn for_each_chunk<T, F>(threads: usize, data: &mut [T], f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    let n = data.len();
    if threads <= 1 || n < 2 {
        f(0, data);
        return;
    }
    let chunk = n.div_ceil(threads.min(n));
    std::thread::scope(|scope| {
        let mut chunks = data.chunks_mut(chunk);
        let first = chunks.next();
        for (i, part) in chunks.enumerate() {
            let f = &f;
            scope.spawn(move || f((i + 1) * chunk, part));
        }
        // The caller works the first chunk instead of idling at the join.
        if let Some(part) = first {
            f(0, part);
        }
    });
}

/// Like [`for_each_chunk`], but hands each chunk the matching chunk of
/// `out` (identical offsets), for fan-outs producing per-element results.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn for_each_chunk_zip<T, U, F>(threads: usize, data: &mut [T], out: &mut [U], f: F)
where
    T: Send,
    U: Send,
    F: Fn(usize, &mut [T], &mut [U]) + Sync,
{
    assert_eq!(data.len(), out.len(), "zip length mismatch");
    let n = data.len();
    if threads <= 1 || n < 2 {
        f(0, data, out);
        return;
    }
    let chunk = n.div_ceil(threads.min(n));
    std::thread::scope(|scope| {
        let mut chunks = data.chunks_mut(chunk).zip(out.chunks_mut(chunk));
        let first = chunks.next();
        for (i, (a, b)) in chunks.enumerate() {
            let f = &f;
            scope.spawn(move || f((i + 1) * chunk, a, b));
        }
        if let Some((a, b)) = first {
            f(0, a, b);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn every_element_visited_exactly_once() {
        for threads in [1, 2, 3, 7, 64] {
            let mut data = vec![0u32; 100];
            for_each_chunk(threads, &mut data, |_, chunk| {
                for x in chunk {
                    *x += 1;
                }
            });
            assert!(data.iter().all(|&x| x == 1), "threads={threads}");
        }
    }

    #[test]
    fn offsets_match_global_indices() {
        let mut data: Vec<usize> = (0..37).collect();
        for_each_chunk(4, &mut data, |off, chunk| {
            for (i, x) in chunk.iter().enumerate() {
                assert_eq!(*x, off + i);
            }
        });
    }

    #[test]
    fn zip_chunks_stay_aligned() {
        for threads in [1, 3, 5] {
            let mut data: Vec<usize> = (0..41).collect();
            let mut out = vec![0usize; 41];
            for_each_chunk_zip(threads, &mut data, &mut out, |off, a, b| {
                assert_eq!(a.len(), b.len());
                for i in 0..a.len() {
                    b[i] = a[i] * 2 + off - off;
                }
            });
            for (i, x) in out.iter().enumerate() {
                assert_eq!(*x, i * 2, "threads={threads}");
            }
        }
    }

    #[test]
    fn single_thread_runs_inline() {
        let calls = AtomicUsize::new(0);
        let caller = std::thread::current().id();
        let mut data = vec![0u8; 10];
        for_each_chunk(1, &mut data, |_, _| {
            calls.fetch_add(1, Ordering::SeqCst);
            assert_eq!(std::thread::current().id(), caller);
        });
        assert_eq!(calls.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn two_workers_win_requires_a_real_margin() {
        // A genuine second core roughly halves the time — wins.
        assert!(two_workers_win(520, 1000));
        // Breaking even or losing (the 1-CPU time-slice case) never wins,
        // and neither does a sub-10% "win" inside scheduler noise.
        assert!(!two_workers_win(1000, 1000));
        assert!(!two_workers_win(1400, 1000));
        assert!(!two_workers_win(950, 1000));
        // Saturating math: absurd timings can't overflow into a win.
        assert!(!two_workers_win(u64::MAX, u64::MAX));
    }

    #[test]
    fn parallel_pays_is_stable_and_respects_physical_width() {
        let pays = parallel_pays();
        assert_eq!(pays, parallel_pays(), "probed once, then cached");
        if std::thread::available_parallelism().map_or(1, |n| n.get()) < 2 {
            assert!(!pays, "one physical CPU can never profit from forking");
        }
    }

    #[test]
    fn forkjoin_overhead_is_floored_and_stable() {
        let a = forkjoin_overhead_ns();
        assert!(a >= 2_000, "floor keeps Auto honest on coarse clocks");
        assert_eq!(a, forkjoin_overhead_ns(), "calibrated once, then cached");
    }

    #[test]
    #[should_panic(expected = "zip length mismatch")]
    fn zip_length_mismatch_panics() {
        let mut a = vec![0u8; 3];
        let mut b = vec![0u8; 4];
        for_each_chunk_zip(2, &mut a, &mut b, |_, _, _| {});
    }
}
