//! Benchmark regression guard: re-measures the execution engine and fails
//! (exit 1) if throughput regressed against the checked-in `BENCH_SIM.json`.
//!
//! Two modes:
//!
//! * **Full** (default): runs the same add32 workload as `bench_sim`
//!   (16 groups × 64 PEs of 256×256) and guards **four** throughput
//!   columns against the checked-in numbers — the trace engine sequential
//!   (`instructions_per_sec_sequential`) and parallel
//!   (`instructions_per_sec_parallel`), and the slab engine sequential
//!   (`instructions_per_sec_slab_sequential`) and parallel
//!   (`instructions_per_sec_slab_parallel`). Each must come in at no less
//!   than 75% of its baseline (>25% regression fails). The slab sequential
//!   column is additionally held to an **absolute** floor
//!   ([`SLAB_SEQ_FLOOR_IPS`]) in release builds, so the bit-plane kernel
//!   win can't erode across regenerated baselines.
//! * **`--smoke`**: a small-geometry sanity pass for CI — validates that
//!   the checked-in JSON parses and carries the trace-, slab-, and
//!   fusion-comparison entries, runs interpreter, trace, and slab engines
//!   on a scaled-down machine (the trace and slab engines on the default
//!   *fused* pipeline, the slab engine additionally on unfused traces),
//!   checks all runs produce identical stats, and requires the trace and
//!   slab engines to stay within 25% of the interpreter (both exist to be
//!   *faster*; this loose bound only catches pathological regressions
//!   without being flaky on loaded CI hosts).
//!
//! No JSON dependency is available offline, so numbers are read with a
//! small key scanner over the known single-number-per-key layout that
//! `bench_sim` emits.

use hyperap_arch::{ApMachine, ArchConfig, ExecMode, SlabMachine};
use hyperap_compiler::{compile, opt, CompileOptions, OPT_LEVEL_MAX};
use hyperap_core::microcode::Microcode;
use hyperap_isa::lower::lower;
use hyperap_isa::Instruction;
use hyperap_workloads::similarity as wsim;
use std::hint::black_box;
use std::time::Instant;

/// Maximum tolerated throughput regression (fraction of the baseline).
const FLOOR: f64 = 0.75;

/// Absolute floor for the word-parallel similarity query's speedup over
/// the scalar per-PE reference engine (`speedup_sim_slab_vs_scalar` in the
/// baseline). The bit-plane Hamming kernels measure >30× on the reference
/// host; the acceptance bar for the similarity workload family is 20×, so
/// a regenerated baseline below this is a kernel regression, not noise.
const SIM_SPEEDUP_FLOOR: f64 = 20.0;

/// Absolute floor for the slab engine's sequential throughput, in
/// instructions per second. The bit-plane arena rework (word-parallel
/// kernels, 64 PEs per ALU op) took `instructions_per_sec_slab_sequential`
/// from 8.07M to well past 3× that; this floor pins the win so a later
/// change can't quietly land a layout or kernel regression that a
/// relative-to-baseline check would absorb once the baseline is
/// regenerated. Applied to the *checked-in* baseline in both modes and to
/// the fresh release-build measurement in full mode.
const SLAB_SEQ_FLOOR_IPS: f64 = 24_200_000.0;

fn best_secs<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

/// Scan `src` for `"key": <number>` and parse the number. The bench JSON
/// has unique keys and one scalar per line, so a plain substring scan is
/// unambiguous.
fn json_number(src: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let at = src.find(&pat)? + pat.len();
    let rest = src[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || "+-.eE".contains(c)))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Scan `src` for `"key": true|false`. Same single-scalar-per-line layout
/// assumption as [`json_number`].
fn json_bool(src: &str, key: &str) -> Option<bool> {
    let pat = format!("\"{key}\":");
    let at = src.find(&pat)? + pat.len();
    match src[at..].trim_start() {
        r if r.starts_with("true") => Some(true),
        r if r.starts_with("false") => Some(false),
        _ => None,
    }
}

/// Find the checked-in baseline next to the workspace (cwd first, then
/// walking up — `cargo run` leaves cwd at the invocation directory).
fn load_baseline() -> Option<(std::path::PathBuf, String)> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let p = dir.join("BENCH_SIM.json");
        if let Ok(s) = std::fs::read_to_string(&p) {
            return Some((p, s));
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn add32_streams(cols: usize, groups: usize) -> Vec<Vec<Instruction>> {
    let mut mc = Microcode::new(cols);
    let (x, y) = mc.alloc_paired_inputs("a", "b", 32);
    let _ = mc.add(&x, &y);
    let stream = lower(&mc.into_program());
    (0..groups).map(|_| stream.clone()).collect()
}

fn seed_machine(m: &mut ApMachine) {
    for pe in 0..m.config().total_pes() {
        for row in 0..8.min(m.config().rows) {
            m.pe_mut(pe)
                .load_encoded_pair(row, 0, row & 1 == 1, pe & 1 == 1);
        }
    }
}

fn seed_slab(m: &mut SlabMachine) {
    for pe in 0..m.config().total_pes() {
        for row in 0..8.min(m.config().rows) {
            m.load_encoded_pair(pe, row, 0, row & 1 == 1, pe & 1 == 1);
        }
    }
}

/// Recompile the acceptance kernels at every opt level and fail when any
/// level above 0 emits *more* counted micro-ops than the level-0 oracle —
/// an optimizer must never pessimize. Also cross-checks the checked-in
/// baseline's compiler columns against the fresh (deterministic) counts.
fn guard_opt_levels(baseline: &str, path: &std::path::Path) -> bool {
    let mut failed = false;
    for (name, src) in [
        (
            "add32",
            "unsigned int (32) main(unsigned int (32) a, unsigned int (32) b) { return a + b; }",
        ),
        (
            "mul16",
            "unsigned int (16) main(unsigned int (16) a, unsigned int (16) b) { return a * b; }",
        ),
    ] {
        let ops_at = |level: u8| {
            let opts = CompileOptions {
                opt_level: level,
                ..CompileOptions::default()
            };
            opt::counted_ops(
                compile(src, &opts)
                    .expect("guard kernel compiles")
                    .program(),
            )
        };
        let base = ops_at(0);
        for level in 1..=OPT_LEVEL_MAX {
            let ops = ops_at(level);
            if ops > base {
                eprintln!(
                    "bench_guard: {name} at opt level {level} emits {ops} ops — MORE than \
                     level 0's {base} (optimizer pessimized the stream)"
                );
                failed = true;
            } else {
                println!(
                    "bench_guard: {name} opt level {level}: {ops} ops vs {base} at level 0 \
                     ({:.1}% saved)",
                    100.0 * (base - ops) as f64 / base as f64
                );
            }
            let key = format!("{name}_compiled_ops_level{level}");
            match json_number(baseline, &key) {
                Some(v) if v == ops as f64 => {}
                Some(v) => {
                    eprintln!(
                        "bench_guard: baseline {} says {key} = {v}, fresh compile says {ops} — \
                         regenerate BENCH_SIM.json",
                        path.display()
                    );
                    failed = true;
                }
                None => {
                    eprintln!("bench_guard: baseline {} lacks {key}", path.display());
                    failed = true;
                }
            }
        }
    }
    failed
}

/// Check that `ExecMode::Auto` never follows `Parallel` down a losing
/// fork-join path in the checked-in baseline: for both the trace and slab
/// engines, Auto's speedup over sequential must not sit below the worse of
/// the forced-parallel speedup and 1.0 (less a small noise tolerance), and
/// must never fall below an absolute 0.8× floor. On the 1-CPU baseline
/// host (`speedup_parallel_vs_sequential: 0.71`) this pins the fix: Auto
/// must measure ≈1.0× because it declines to fork at all.
fn guard_auto_mode(baseline: &str, path: &std::path::Path) -> bool {
    let mut failed = false;
    for (engine, par_key, auto_key) in [
        (
            "trace",
            "speedup_parallel_vs_sequential",
            "speedup_auto_vs_sequential",
        ),
        (
            "slab",
            "speedup_slab_parallel_vs_sequential",
            "speedup_slab_auto_vs_sequential",
        ),
    ] {
        let (Some(par), Some(auto)) = (
            json_number(baseline, par_key),
            json_number(baseline, auto_key),
        ) else {
            eprintln!(
                "bench_guard: baseline {} lacks {par_key}/{auto_key} — regenerate BENCH_SIM.json",
                path.display()
            );
            failed = true;
            continue;
        };
        // Auto may legitimately decline to thread (speedup ≈ 1.0) even when
        // Parallel wins big, so the bar is min(parallel, 1.0), with 0.1 of
        // measurement-noise headroom.
        if auto + 0.1 < par.min(1.0) || auto < 0.8 {
            eprintln!(
                "bench_guard: {engine} Auto speedup {auto:.2}x vs forced-parallel {par:.2}x — \
                 Auto picked a losing fork-join path"
            );
            failed = true;
        } else {
            println!(
                "bench_guard: {engine} Auto speedup {auto:.2}x (forced parallel {par:.2}x) — \
                 Auto avoids the losing path"
            );
        }
    }
    failed
}

/// Gate the checked-in `serve` block (emitted by `serve_bench`): the
/// shared program cache must serve ≥90% of lookups, saturation throughput
/// must be a real positive number, and the saturated pool must beat the
/// depth-1 closed loop by ≥1.5× where the host's threading pays —
/// degrading to a ≥0.9× "concurrency costs <10%" floor on single-CPU
/// hosts, where batching amortization is the only available win.
fn guard_serve(baseline: &str, path: &std::path::Path) -> bool {
    let mut failed = false;
    // `parallel_pays` also appears in the `host` block; scan from the
    // serve block so we read serve_bench's copy (the host it measured on).
    let Some(serve_at) = baseline.find("\"serve\":") else {
        eprintln!(
            "bench_guard: baseline {} has no serve block — run serve_bench after bench_sim",
            path.display()
        );
        return true;
    };
    let baseline = &baseline[serve_at..];
    for key in ["saturation_jobs_per_sec", "single_jobs_per_sec"] {
        match json_number(baseline, key) {
            Some(v) if v.is_finite() && v > 0.0 => {
                println!("bench_guard: serve {key} = {v}");
            }
            other => {
                eprintln!(
                    "bench_guard: baseline {} lacks usable serve {key} ({other:?}) — \
                     run serve_bench after bench_sim",
                    path.display()
                );
                failed = true;
            }
        }
    }
    match json_number(baseline, "cache_hit_rate") {
        Some(rate) if rate >= 0.90 => {
            println!("bench_guard: serve cache_hit_rate = {rate:.4} (floor 0.90)");
        }
        Some(rate) => {
            eprintln!("bench_guard: serve cache_hit_rate {rate:.4} below the 0.90 floor");
            failed = true;
        }
        None => {
            eprintln!(
                "bench_guard: baseline {} lacks cache_hit_rate",
                path.display()
            );
            failed = true;
        }
    }
    let pays = json_bool(baseline, "parallel_pays");
    let floor = match pays {
        Some(true) => 1.5,
        Some(false) => 0.9,
        None => {
            eprintln!(
                "bench_guard: baseline {} lacks serve parallel_pays",
                path.display()
            );
            return true;
        }
    };
    match json_number(baseline, "throughput_scaling") {
        Some(s) if s >= floor => {
            println!(
                "bench_guard: serve throughput_scaling = {s:.2}x clears the {floor}x floor \
                 (parallel_pays = {})",
                pays.unwrap()
            );
        }
        Some(s) => {
            eprintln!(
                "bench_guard: serve throughput_scaling {s:.2}x below the {floor}x floor \
                 (parallel_pays = {})",
                pays.unwrap()
            );
            failed = true;
        }
        None => {
            eprintln!(
                "bench_guard: baseline {} lacks throughput_scaling",
                path.display()
            );
            failed = true;
        }
    }
    failed
}

/// Gate the checked-in `similarity` block (emitted by `bench_sim`): every
/// column must be a usable positive number, the word-parallel top-k query
/// must clear the absolute [`SIM_SPEEDUP_FLOOR`] over the scalar per-PE
/// reference, the HDC inference speedup must not have collapsed, and the
/// host-reference classifier must actually classify (accuracy floor).
fn guard_similarity(baseline: &str, path: &std::path::Path) -> bool {
    let mut failed = false;
    for key in [
        "sim_scalar_query_ns",
        "sim_slab_query_ns",
        "sim_queries_per_sec_slab",
        "sim_words_per_ns",
        "hdc_classify_scalar_ns",
        "hdc_classify_slab_ns",
    ] {
        match json_number(baseline, key) {
            Some(v) if v.is_finite() && v > 0.0 => {
                println!("bench_guard: similarity {key} = {v}");
            }
            other => {
                eprintln!(
                    "bench_guard: baseline {} lacks usable similarity {key} ({other:?}) — \
                     regenerate BENCH_SIM.json",
                    path.display()
                );
                failed = true;
            }
        }
    }
    match json_number(baseline, "speedup_sim_slab_vs_scalar") {
        Some(s) if s >= SIM_SPEEDUP_FLOOR => {
            println!(
                "bench_guard: similarity speedup_sim_slab_vs_scalar = {s:.2}x clears the \
                 {SIM_SPEEDUP_FLOOR}x floor"
            );
        }
        Some(s) => {
            eprintln!(
                "bench_guard: similarity speedup_sim_slab_vs_scalar {s:.2}x below the \
                 {SIM_SPEEDUP_FLOOR}x floor"
            );
            failed = true;
        }
        None => {
            eprintln!(
                "bench_guard: baseline {} lacks speedup_sim_slab_vs_scalar",
                path.display()
            );
            failed = true;
        }
    }
    match json_number(baseline, "speedup_hdc_slab_vs_scalar") {
        // HDC inference is one `nearest` query, so most of the top-k win
        // carries over; 10× leaves headroom for the smaller search region.
        Some(s) if s >= 10.0 => {
            println!("bench_guard: similarity speedup_hdc_slab_vs_scalar = {s:.2}x (floor 10x)");
        }
        other => {
            eprintln!(
                "bench_guard: baseline {} speedup_hdc_slab_vs_scalar unusable or below 10x \
                 ({other:?})",
                path.display()
            );
            failed = true;
        }
    }
    match json_number(baseline, "hdc_host_accuracy") {
        Some(a) if a >= 0.85 => {
            println!("bench_guard: similarity hdc_host_accuracy = {a:.4} (floor 0.85)");
        }
        other => {
            eprintln!(
                "bench_guard: baseline {} hdc_host_accuracy unusable or below 0.85 ({other:?})",
                path.display()
            );
            failed = true;
        }
    }
    failed
}

/// Gate the checked-in `checkpoint` block (emitted by `bench_sim`): every
/// cost column must be a usable positive number, and the incremental
/// snapshot's dirty-chunk hit rate must stay ≥0.9 — the delta path exists
/// so a barrier costs ~1/16 of a full snapshot; a collapsed hit rate means
/// write tracking went conservative and checkpointing is back on the
/// critical path. The *disabled* cost of checkpointing (per-op version
/// bumps on the slab write paths) is pinned separately by the absolute
/// [`SLAB_SEQ_FLOOR_IPS`] floor on the hot engine column: zero-checkpoint
/// configs must keep the existing kernels.
fn guard_checkpoint(baseline: &str, path: &std::path::Path) -> bool {
    let mut failed = false;
    for key in [
        "ckpt_payload_bytes",
        "ckpt_full_snapshot_ms",
        "ckpt_full_mb_per_s",
        "ckpt_incremental_bytes",
        "ckpt_incremental_ms",
        "ckpt_incremental_mb_per_s",
        "ckpt_restore_ms",
    ] {
        match json_number(baseline, key) {
            Some(v) if v.is_finite() && v > 0.0 => {
                println!("bench_guard: checkpoint {key} = {v}");
            }
            other => {
                eprintln!(
                    "bench_guard: baseline {} lacks usable checkpoint {key} ({other:?}) — \
                     regenerate BENCH_SIM.json",
                    path.display()
                );
                failed = true;
            }
        }
    }
    match json_number(baseline, "checkpoint_dirty_hit_rate") {
        Some(r) if r >= 0.9 => {
            println!("bench_guard: checkpoint_dirty_hit_rate = {r:.4} (floor 0.9)");
        }
        other => {
            eprintln!(
                "bench_guard: baseline {} checkpoint_dirty_hit_rate unusable or below 0.9 \
                 ({other:?}) — write tracking has gone conservative",
                path.display()
            );
            failed = true;
        }
    }
    failed
}

fn smoke() -> i32 {
    // Baseline sanity: the checked-in JSON must parse and must carry the
    // trace-engine entry bench_sim now emits.
    let Some((path, baseline)) = load_baseline() else {
        eprintln!("bench_guard: BENCH_SIM.json not found");
        return 1;
    };
    let mut failed = false;
    for key in [
        "instructions_per_sec_sequential",
        "instructions_per_sec_parallel",
        "instructions_per_sec_slab_sequential",
        "instructions_per_sec_slab_parallel",
        "speedup_trace_vs_interpreter_sequential",
        "speedup_parallel_vs_sequential",
        "speedup_auto_vs_sequential",
        "speedup_slab_auto_vs_sequential",
        "speedup_slab_vs_trace_sequential",
        "speedup_trace_fused_vs_unfused",
        "speedup_slab_fused_vs_unfused",
    ] {
        match json_number(&baseline, key) {
            Some(v) if v.is_finite() && v > 0.0 => {
                println!("bench_guard: baseline {key} = {v}");
            }
            other => {
                eprintln!(
                    "bench_guard: baseline {} lacks usable {key} ({other:?})",
                    path.display()
                );
                failed = true;
            }
        }
    }
    failed |= baseline_below_slab_floor(&baseline, &path);
    failed |= guard_opt_levels(&baseline, &path);
    failed |= guard_auto_mode(&baseline, &path);
    failed |= guard_serve(&baseline, &path);
    failed |= guard_similarity(&baseline, &path);
    failed |= guard_checkpoint(&baseline, &path);

    // Small geometry: 4 groups × 16 PEs of 64×256 keeps the smoke under a
    // second even in debug builds.
    let mut cfg = ArchConfig::paper_scaled(64);
    cfg.groups = 4;
    cfg.subarrays_per_bank = 4;
    cfg.pes_per_subarray = 4;
    let streams = add32_streams(cfg.cols, cfg.groups);

    let mut interp = ApMachine::new(ArchConfig {
        exec: ExecMode::Sequential,
        ..cfg.clone()
    });
    let mut traced = ApMachine::new(ArchConfig {
        exec: ExecMode::Sequential,
        ..cfg.clone()
    });
    let mut slab = SlabMachine::new(ArchConfig {
        exec: ExecMode::Sequential,
        ..cfg.clone()
    });
    seed_machine(&mut interp);
    seed_machine(&mut traced);
    seed_slab(&mut slab);
    let mut slab_unfused = SlabMachine::new(ArchConfig {
        exec: ExecMode::Sequential,
        ..cfg.clone()
    });
    seed_slab(&mut slab_unfused);
    let interp_stats = interp.run_interpreted(&streams);
    let trace_stats = traced.run(&streams);
    let slab_stats = slab.run(&streams);
    // The fused peephole pipeline (the default) must be observationally
    // identical to unfused compilation — including architectural op/cycle
    // counts, which bill fused micro-ops as their unfused constituents.
    let unfused = hyperap_arch::trace::compile_streams_unfused(&streams, slab_unfused.config());
    let slab_unfused_stats = slab_unfused.run_compiled(&unfused);
    if interp_stats != trace_stats {
        eprintln!("bench_guard: interpreter and trace engines disagree on smoke workload");
        failed = true;
    } else if interp_stats != slab_stats {
        eprintln!("bench_guard: interpreter and slab engines disagree on smoke workload");
        failed = true;
    } else if interp_stats != slab_unfused_stats {
        eprintln!("bench_guard: fused and unfused slab runs disagree on smoke workload");
        failed = true;
    } else {
        println!("bench_guard: all engines (fused and unfused) bit-identical on smoke workload");
    }

    // Fault cross-check: the same workload under a dense seeded fault model
    // (stuck cells, transient misses, endurance sparing) must stay
    // bit-identical across all three engines. This is the cheap CI-side
    // sentinel for the full differential suite in
    // `crates/arch/tests/fault_equivalence.rs`.
    let fault_cfg = ArchConfig {
        exec: ExecMode::Sequential,
        faults: hyperap_arch::FaultConfig {
            model: hyperap_arch::FaultModel {
                seed: 0xB16_F417,
                stuck_per_million: 20_000,
                miss_per_million: 10_000,
                endurance_limit: Some(50),
            },
            spare_cols: 4,
        },
        ..cfg.clone()
    };
    let mut f_interp = ApMachine::new(fault_cfg.clone());
    let mut f_traced = ApMachine::new(fault_cfg.clone());
    let mut f_slab = SlabMachine::new(fault_cfg);
    seed_machine(&mut f_interp);
    seed_machine(&mut f_traced);
    seed_slab(&mut f_slab);
    let fi = f_interp.try_run_interpreted(&streams);
    let ft = f_traced.try_run(&streams);
    let fs = f_slab.try_run(&streams);
    if fi != ft || fi != fs {
        eprintln!("bench_guard: engines disagree on the seeded-fault smoke workload");
        failed = true;
    } else {
        println!("bench_guard: all engines bit-identical under the seeded fault model");
    }

    // Similarity cross-check: Hamming top-k over random stored codes must
    // agree across the host reference, the scalar engine, and the slab
    // engine — hits and priced stats. This is the cheap CI-side sentinel
    // for `crates/arch/tests/similarity_equivalence.rs`.
    let sim_rows = 8;
    let codes = wsim::CodeSet::generate(0x57A6E, cfg.total_pes(), sim_rows, 64);
    let mut sim_ap = ApMachine::new(ArchConfig {
        exec: ExecMode::Sequential,
        ..cfg.clone()
    });
    codes.load_ap(&mut sim_ap);
    let mut sim_slab = SlabMachine::new(ArchConfig {
        exec: ExecMode::Sequential,
        ..cfg.clone()
    });
    codes.load_slab(&mut sim_slab);
    let query = codes.random_query(3);
    let key = codes.query_key(&query, cfg.cols);
    let want = codes.host_topk(&query, 5);
    let ap_out = sim_ap.hamming_topk(&key, sim_rows, 5);
    let slab_out = sim_slab.hamming_topk(&key, sim_rows, 5);
    if ap_out.hits != want || slab_out.hits != want || ap_out.stats != slab_out.stats {
        eprintln!("bench_guard: engines disagree on the similarity smoke query");
        failed = true;
    } else {
        println!("bench_guard: similarity top-k bit-identical across host, scalar, and slab");
    }

    let reps = 5;
    let interp_s = best_secs(reps, || {
        black_box(interp.run_interpreted(&streams));
    });
    let trace_s = best_secs(reps, || {
        black_box(traced.run(&streams));
    });
    let slab_s = best_secs(reps, || {
        black_box(slab.run(&streams));
    });
    let trace_ratio = interp_s / trace_s;
    let slab_ratio = interp_s / slab_s;
    println!(
        "bench_guard: smoke interp {interp_s:.4}s, trace {trace_s:.4}s ({trace_ratio:.2}x), \
         slab {slab_s:.4}s ({slab_ratio:.2}x)"
    );
    if trace_ratio < FLOOR {
        eprintln!("bench_guard: trace engine slower than {FLOOR}x interpreter — regression");
        failed = true;
    }
    if slab_ratio < FLOOR {
        eprintln!("bench_guard: slab engine slower than {FLOOR}x interpreter — regression");
        failed = true;
    }
    i32::from(failed)
}

/// Check the checked-in baseline's slab-sequential column against the
/// absolute [`SLAB_SEQ_FLOOR_IPS`] floor; returns `true` on failure. This
/// catches a regression that sneaks in *with* a regenerated baseline —
/// the relative guard can't.
fn baseline_below_slab_floor(baseline: &str, path: &std::path::Path) -> bool {
    let key = "instructions_per_sec_slab_sequential";
    let Some(v) = json_number(baseline, key) else {
        eprintln!("bench_guard: {} lacks {key}", path.display());
        return true;
    };
    if v < SLAB_SEQ_FLOOR_IPS {
        eprintln!(
            "bench_guard: baseline {key} = {v:.0} below the absolute floor \
             {SLAB_SEQ_FLOOR_IPS:.0} ({})",
            path.display()
        );
        return true;
    }
    println!(
        "bench_guard: baseline {key} = {v:.0} clears the absolute floor {SLAB_SEQ_FLOOR_IPS:.0}"
    );
    false
}

/// Compare a freshly measured throughput column against its baseline key;
/// returns `true` when it regressed below [`FLOOR`].
fn guard_column(label: &str, key: &str, ips: f64, baseline: &str, path: &std::path::Path) -> bool {
    let Some(base_ips) = json_number(baseline, key) else {
        eprintln!("bench_guard: {} lacks {key}", path.display());
        return true;
    };
    let ratio = ips / base_ips;
    println!("bench_guard: {label} {ips:.0} inst/s vs baseline {base_ips:.0} ({ratio:.2}x)");
    if ratio < FLOOR {
        eprintln!(
            "bench_guard: {label} >{:.0}% throughput regression against {}",
            (1.0 - FLOOR) * 100.0,
            path.display()
        );
        return true;
    }
    false
}

fn full() -> i32 {
    let Some((path, baseline)) = load_baseline() else {
        eprintln!("bench_guard: BENCH_SIM.json not found");
        return 1;
    };

    // The bench_sim engine workload, re-measured: add32 on every PE of a
    // 16-group × 64-PE machine of 256×256. Four guarded columns: trace
    // engine sequential and parallel, slab engine sequential and parallel.
    let mut cfg = ArchConfig::paper_scaled(256);
    cfg.groups = 16;
    let streams = add32_streams(cfg.cols, cfg.groups);
    let total_instructions: usize = streams.iter().map(Vec::len).sum();

    // Best-of-5 with a discarded warmup: the guard re-measures on a possibly
    // loaded host, so it gets more samples than the baseline's best-of-3 —
    // biasing toward stability, not toward hiding real regressions (the
    // FLOOR still applies to the best observed run).
    let reps = 5;
    let trace_ips = |mode: ExecMode| {
        let mut m = ApMachine::new(ArchConfig {
            exec: mode,
            ..cfg.clone()
        });
        seed_machine(&mut m);
        black_box(m.run(&streams));
        let secs = best_secs(reps, || {
            black_box(m.run(&streams));
        });
        total_instructions as f64 / secs
    };
    let slab_ips = |mode: ExecMode| {
        let mut m = SlabMachine::new(ArchConfig {
            exec: mode,
            ..cfg.clone()
        });
        seed_slab(&mut m);
        black_box(m.run(&streams));
        let secs = best_secs(reps, || {
            black_box(m.run(&streams));
        });
        total_instructions as f64 / secs
    };

    let mut failed = false;
    failed |= guard_column(
        "trace sequential",
        "instructions_per_sec_sequential",
        trace_ips(ExecMode::Sequential),
        &baseline,
        &path,
    );
    failed |= guard_column(
        "trace parallel",
        "instructions_per_sec_parallel",
        trace_ips(ExecMode::Parallel),
        &baseline,
        &path,
    );
    let slab_seq = slab_ips(ExecMode::Sequential);
    failed |= guard_column(
        "slab sequential",
        "instructions_per_sec_slab_sequential",
        slab_seq,
        &baseline,
        &path,
    );
    failed |= baseline_below_slab_floor(&baseline, &path);
    failed |= guard_opt_levels(&baseline, &path);
    failed |= guard_auto_mode(&baseline, &path);
    failed |= guard_serve(&baseline, &path);
    failed |= guard_similarity(&baseline, &path);
    failed |= guard_checkpoint(&baseline, &path);

    // Similarity re-measure: the same stored codes and query as bench_sim
    // (seeds match), guarded relative to the baseline throughput column
    // and — in release builds — against the absolute speedup floor.
    {
        let sim_rows = 64;
        let sim_k = 16;
        let codes = wsim::CodeSet::generate(0x51AB, cfg.total_pes(), sim_rows, cfg.cols);
        let query = codes.random_query(7);
        let key = codes.query_key(&query, cfg.cols);
        let mut sim_ap = ApMachine::new(ArchConfig {
            exec: ExecMode::Sequential,
            ..cfg.clone()
        });
        codes.load_ap(&mut sim_ap);
        let mut sim_slab = SlabMachine::new(ArchConfig {
            exec: ExecMode::Sequential,
            ..cfg.clone()
        });
        codes.load_slab(&mut sim_slab);
        let want = codes.host_topk(&query, sim_k);
        let ap_out = sim_ap.hamming_topk(&key, sim_rows, sim_k);
        let slab_out = sim_slab.hamming_topk(&key, sim_rows, sim_k);
        if ap_out.hits != want || slab_out.hits != want || ap_out.stats != slab_out.stats {
            eprintln!("bench_guard: engines disagree on the similarity workload");
            failed = true;
        }
        let scalar_s = best_secs(reps, || {
            black_box(sim_ap.hamming_topk(&key, sim_rows, sim_k));
        });
        let slab_s = best_secs(reps, || {
            black_box(sim_slab.hamming_topk(&key, sim_rows, sim_k));
        });
        failed |= guard_column(
            "similarity slab query",
            "sim_queries_per_sec_slab",
            1.0 / slab_s,
            &baseline,
            &path,
        );
        let speedup = scalar_s / slab_s;
        if cfg!(debug_assertions) {
            println!(
                "bench_guard: similarity speedup {speedup:.2}x (debug build — absolute floor \
                 skipped)"
            );
        } else if speedup < SIM_SPEEDUP_FLOOR {
            eprintln!(
                "bench_guard: measured similarity speedup {speedup:.2}x below the \
                 {SIM_SPEEDUP_FLOOR}x floor"
            );
            failed = true;
        } else {
            println!(
                "bench_guard: measured similarity speedup {speedup:.2}x clears the \
                 {SIM_SPEEDUP_FLOOR}x floor"
            );
        }
    }
    if cfg!(debug_assertions) {
        println!("bench_guard: debug build — skipping the absolute floor on the fresh measurement");
    } else if slab_seq < SLAB_SEQ_FLOOR_IPS {
        eprintln!(
            "bench_guard: measured slab sequential {slab_seq:.0} inst/s below the absolute \
             floor {SLAB_SEQ_FLOOR_IPS:.0}"
        );
        failed = true;
    } else {
        println!(
            "bench_guard: measured slab sequential {slab_seq:.0} inst/s clears the absolute \
             floor {SLAB_SEQ_FLOOR_IPS:.0}"
        );
    }
    failed |= guard_column(
        "slab parallel",
        "instructions_per_sec_slab_parallel",
        slab_ips(ExecMode::Parallel),
        &baseline,
        &path,
    );
    i32::from(failed)
}

fn main() {
    let smoke_mode = std::env::args().any(|a| a == "--smoke");
    std::process::exit(if smoke_mode { smoke() } else { full() });
}
