//! DFG clustering (§V-B2, Fig 10): group DFG nodes into clusters, each of
//! which executes in one SIMD slot, minimizing inter-cluster edges (data
//! copies between SIMD slots — slow on RRAM because of the write latency).
//!
//! The heuristic adapts the priority-cuts clustering \[42\] with the paper's
//! cost function (Eq. 1):
//!
//! ```text
//! Cost0[i] = Σ Cost0[j]  +  N_input_edges        (j: input clusters)
//! ```

use crate::dfg::{Dfg, DfgOp};
use std::collections::{HashMap, HashSet};

/// Result of clustering: a cluster index per node, plus statistics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Clustering {
    /// Cluster id per DFG node.
    pub assignment: Vec<usize>,
    /// Number of clusters.
    pub n_clusters: usize,
    /// Inter-cluster edges (each is one data copy between SIMD slots).
    pub cut_edges: usize,
}

/// Approximate column footprint of a node's result (its width plus ripple
/// scratch), used as the cluster capacity measure.
fn node_cols(dfg: &Dfg, id: usize) -> usize {
    let n = dfg.node(id);
    match n.op {
        DfgOp::Input { .. } | DfgOp::Const { .. } => n.width,
        DfgOp::Shl { .. } | DfgOp::Shr { .. } | DfgOp::Resize => 0, // renames
        DfgOp::Mul => 4 * n.width, // carry-save pairs + operand copies
        DfgOp::Div | DfgOp::Rem => 3 * n.width,
        DfgOp::Sqrt | DfgOp::Exp { .. } => 4 * n.width,
        _ => 2 * n.width, // result + ripple scratch
    }
}

/// Cluster the DFG under a per-cluster column capacity (one SIMD slot's
/// usable columns).
///
/// Nodes are visited in topological order; each joins the predecessor
/// cluster that minimizes Eq. 1 cost if capacity allows, otherwise starts a
/// new cluster. A second pass greedily merges clusters whenever that
/// reduces cut edges within capacity.
pub fn cluster(dfg: &Dfg, capacity: usize) -> Clustering {
    let n = dfg.len();
    let mut assignment: Vec<usize> = vec![usize::MAX; n];
    let mut cluster_load: Vec<usize> = Vec::new();

    for id in 0..n {
        let need = node_cols(dfg, id);
        // Candidate clusters: those of the node's inputs.
        let mut candidates: Vec<usize> =
            dfg.node(id).inputs.iter().map(|&i| assignment[i]).collect();
        candidates.sort_unstable();
        candidates.dedup();
        // Pick the candidate minimizing added cut edges (Eq. 1's
        // N_input_edges term), respecting capacity.
        let mut best: Option<(usize, usize)> = None; // (cut_edges, cluster)
        for &c in &candidates {
            if cluster_load[c] + need > capacity {
                continue;
            }
            let cut = dfg
                .node(id)
                .inputs
                .iter()
                .filter(|&&i| assignment[i] != c)
                .count();
            if best.is_none_or(|(bc, _)| cut < bc) {
                best = Some((cut, c));
            }
        }
        let chosen = match best {
            Some((_, c)) => c,
            None => {
                cluster_load.push(0);
                cluster_load.len() - 1
            }
        };
        assignment[id] = chosen;
        cluster_load[chosen] += need;
    }

    // Merge pass: join cluster pairs connected by edges when capacity
    // allows (reduces copies).
    loop {
        let mut edge_weight: HashMap<(usize, usize), usize> = HashMap::new();
        for id in 0..n {
            for &i in &dfg.node(id).inputs {
                let (a, b) = (assignment[i], assignment[id]);
                if a != b {
                    *edge_weight.entry((a.min(b), a.max(b))).or_insert(0) += 1;
                }
            }
        }
        let mut merged = false;
        let mut pairs: Vec<((usize, usize), usize)> = edge_weight.into_iter().collect();
        pairs.sort_by_key(|&(_, w)| std::cmp::Reverse(w));
        for ((a, b), _) in pairs {
            if cluster_load[a] + cluster_load[b] <= capacity {
                for x in assignment.iter_mut() {
                    if *x == b {
                        *x = a;
                    }
                }
                cluster_load[a] += cluster_load[b];
                cluster_load[b] = 0;
                merged = true;
                break;
            }
        }
        if !merged {
            break;
        }
    }

    // Renumber densely.
    let mut remap: HashMap<usize, usize> = HashMap::new();
    for a in assignment.iter_mut() {
        let next = remap.len();
        *a = *remap.entry(*a).or_insert(next);
    }
    let n_clusters = remap.len();
    let mut cut_edges = 0;
    for id in 0..n {
        for &i in &dfg.node(id).inputs {
            if assignment[i] != assignment[id] {
                cut_edges += 1;
            }
        }
    }
    Clustering {
        assignment,
        n_clusters,
        cut_edges,
    }
}

/// Eq. 1 cost of a clustering: per cluster, the recursive input cost plus
/// the number of input edges (exposed for tests and benchmarks).
pub fn eq1_cost(dfg: &Dfg, clustering: &Clustering) -> f64 {
    // Build cluster DAG.
    let mut input_edges: HashMap<usize, usize> = HashMap::new();
    let mut preds: HashMap<usize, HashSet<usize>> = HashMap::new();
    for id in 0..dfg.len() {
        let c = clustering.assignment[id];
        for &i in &dfg.node(id).inputs {
            let pc = clustering.assignment[i];
            if pc != c {
                *input_edges.entry(c).or_insert(0) += 1;
                preds.entry(c).or_default().insert(pc);
            }
        }
    }
    fn cost(
        c: usize,
        input_edges: &HashMap<usize, usize>,
        preds: &HashMap<usize, HashSet<usize>>,
        memo: &mut HashMap<usize, f64>,
        depth: usize,
    ) -> f64 {
        if let Some(&v) = memo.get(&c) {
            return v;
        }
        if depth > 10_000 {
            return f64::INFINITY; // cyclic cluster graphs cannot happen on DAGs
        }
        let p: f64 = preds
            .get(&c)
            .map(|ps| {
                ps.iter()
                    .map(|&q| cost(q, input_edges, preds, memo, depth + 1))
                    .sum()
            })
            .unwrap_or(0.0);
        let v = p + *input_edges.get(&c).unwrap_or(&0) as f64;
        memo.insert(c, v);
        v
    }
    let mut memo = HashMap::new();
    (0..clustering.n_clusters)
        .map(|c| cost(c, &input_edges, &preds, &mut memo, 0))
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dfg::DfgNode;

    fn input(dfg: &mut Dfg, w: usize) -> usize {
        let idx = dfg.input_widths.len();
        dfg.input_widths.push(w);
        dfg.push(DfgNode {
            op: DfgOp::Input { index: idx },
            inputs: vec![],
            width: w,
            signed: false,
        })
    }

    fn add(dfg: &mut Dfg, a: usize, b: usize) -> usize {
        let w = dfg.node(a).width.max(dfg.node(b).width) + 1;
        dfg.push(DfgNode {
            op: DfgOp::Add,
            inputs: vec![a, b],
            width: w,
            signed: false,
        })
    }

    /// The Fig 10 shape: two adds feeding a multiply-free tree.
    fn fig10_like() -> Dfg {
        let mut g = Dfg::default();
        let ins: Vec<usize> = (0..6).map(|_| input(&mut g, 8)).collect();
        let s1 = add(&mut g, ins[0], ins[1]);
        let s2 = add(&mut g, ins[2], ins[3]);
        let s3 = add(&mut g, ins[4], ins[5]);
        let t1 = add(&mut g, s1, s2);
        let t2 = add(&mut g, t1, s3);
        g.outputs = vec![t2];
        g
    }

    #[test]
    fn small_graph_fits_one_cluster() {
        let g = fig10_like();
        let c = cluster(&g, 1000);
        assert_eq!(c.n_clusters, 1);
        assert_eq!(c.cut_edges, 0, "no data copies inside one SIMD slot");
    }

    #[test]
    fn tight_capacity_splits_with_few_cut_edges() {
        let g = fig10_like();
        let c = cluster(&g, 80);
        assert!(c.n_clusters >= 2);
        // Each split point costs at least one copy, but the heuristic must
        // not cut everything.
        assert!(c.cut_edges < g.len(), "cut edges = {}", c.cut_edges);
        // Every node assigned.
        assert!(c.assignment.iter().all(|&a| a < c.n_clusters));
    }

    #[test]
    fn eq1_cost_prefers_fewer_cuts() {
        let g = fig10_like();
        let tight = cluster(&g, 80);
        let loose = cluster(&g, 1000);
        assert!(eq1_cost(&g, &loose) <= eq1_cost(&g, &tight));
    }

    #[test]
    fn merge_pass_reduces_fragmentation() {
        // A long chain should not fragment into per-node clusters.
        let mut g = Dfg::default();
        let mut prev = input(&mut g, 4);
        for _ in 0..6 {
            let c = input(&mut g, 4);
            prev = add(&mut g, prev, c);
        }
        g.outputs = vec![prev];
        let c = cluster(&g, 60);
        // 13 nodes must not fragment into per-node clusters; input-only
        // singleton clusters may remain (they have no incoming edges).
        assert!(c.n_clusters <= 5, "clusters = {}", c.n_clusters);
        assert!(c.cut_edges <= 6, "cut edges = {}", c.cut_edges);
    }
}
