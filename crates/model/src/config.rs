//! Table II system configurations: GPU (1-card), IMP, and Hyper-AP.

use crate::area::AreaModel;
use crate::tech::{TechParams, Technology};
use serde::{Deserialize, Serialize};

/// A system configuration row of Table II.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystemConfig {
    /// Human-readable system name.
    pub name: &'static str,
    /// Number of SIMD slots.
    pub simd_slots: u64,
    /// Operating frequency in GHz.
    pub frequency_ghz: f64,
    /// Die area in mm².
    pub area_mm2: f64,
    /// Thermal design power in watts.
    pub tdp_w: f64,
    /// Memory description.
    pub memory: &'static str,
}

/// Table II, GPU column: Nvidia Titan XP (paper-reported, from \[21\]).
pub const GPU_TITAN_XP: SystemConfig = SystemConfig {
    name: "GPU (Titan XP)",
    simd_slots: 3840,
    frequency_ghz: 1.58,
    area_mm2: 471.0,
    tdp_w: 250.0,
    memory: "3MB L2 + 12GB DRAM",
};

/// Table II, IMP column (paper-reported, from \[21\]).
pub const IMP_SYSTEM: SystemConfig = SystemConfig {
    name: "IMP",
    simd_slots: 2_097_152,
    frequency_ghz: 0.020,
    area_mm2: 494.0,
    tdp_w: 416.0,
    memory: "1GB RRAM",
};

impl SystemConfig {
    /// Table II, Hyper-AP column, derived from this repository's area model.
    ///
    /// # Example
    /// ```
    /// let hp = hyperap_model::SystemConfig::hyper_ap();
    /// assert_eq!(hp.frequency_ghz, 1.0);
    /// ```
    pub fn hyper_ap() -> Self {
        let area = AreaModel::rram();
        SystemConfig {
            name: "Hyper-AP",
            simd_slots: area.simd_slots(),
            frequency_ghz: TechParams::rram().clock_ghz,
            area_mm2: area.chip_area_mm2,
            tdp_w: 335.0,
            memory: "1GB RRAM",
        }
    }

    /// A Hyper-AP built in CMOS TCAM (for the §VI-E comparison).
    pub fn hyper_ap_cmos() -> Self {
        let area = AreaModel::cmos();
        SystemConfig {
            name: "Hyper-AP (CMOS)",
            simd_slots: area.simd_slots(),
            frequency_ghz: TechParams::cmos().clock_ghz,
            area_mm2: area.chip_area_mm2,
            tdp_w: 335.0,
            memory: "64MB CMOS TCAM",
        }
    }

    /// Configuration for a given technology.
    pub fn for_technology(tech: Technology) -> Self {
        match tech {
            Technology::Rram => Self::hyper_ap(),
            Technology::Cmos => Self::hyper_ap_cmos(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hyper_ap_has_16x_imp_slots() {
        // Table II / §VI-B: Hyper-AP provides 16× more SIMD slots than IMP
        // under the same memory capacity.
        let ratio = SystemConfig::hyper_ap().simd_slots as f64 / IMP_SYSTEM.simd_slots as f64;
        assert!((ratio - 16.0).abs() < 0.8, "ratio = {ratio}");
    }

    #[test]
    fn hyper_ap_power_below_imp() {
        assert!(SystemConfig::hyper_ap().tdp_w < IMP_SYSTEM.tdp_w);
    }

    #[test]
    fn hyper_ap_area_similar_to_imp() {
        let hp = SystemConfig::hyper_ap();
        assert!(hp.area_mm2 < IMP_SYSTEM.area_mm2);
    }

    #[test]
    fn for_technology_dispatches() {
        assert_eq!(
            SystemConfig::for_technology(Technology::Rram).name,
            "Hyper-AP"
        );
        assert_eq!(
            SystemConfig::for_technology(Technology::Cmos).name,
            "Hyper-AP (CMOS)"
        );
    }
}
