//! Regenerate the `ckpt_v1` golden checkpoint fixture.
//!
//! ```text
//! cargo run -p hyperap-ckpt --example gen_golden_ckpt
//! ```
//!
//! Writes a fully committed epoch-0 checkpoint of
//! [`hyperap_ckpt::testing::golden_machine`] into
//! `crates/tcam/tests/golden/ckpt_v1/` via the real [`DirSink`] commit
//! protocol. Only rerun this when the on-disk format version is
//! deliberately bumped — the fixture pins wire-format stability for
//! `tests/golden_checkpoint.rs`.

use hyperap_ckpt::testing::golden_machine;
use hyperap_ckpt::{Checkpointer, DirSink};

fn main() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../tcam/tests/golden/ckpt_v1");
    // Start from a clean slate so stale chunk files can't linger.
    if std::path::Path::new(dir).exists() {
        std::fs::remove_dir_all(dir).expect("clear fixture dir");
    }
    let machine = golden_machine();
    let mut ck = Checkpointer::new(DirSink::new(dir).expect("open fixture dir"));
    ck.set_keep(1);
    let stats = ck.checkpoint(&machine).expect("commit fixture epoch");
    println!(
        "wrote epoch {} to {dir}: {} chunks, {} payload bytes, {} manifest bytes",
        stats.epoch, stats.chunks_written, stats.payload_bytes, stats.manifest_bytes
    );
}
