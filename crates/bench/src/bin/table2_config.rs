//! Table II: system configurations, plus the Fig 14 physical design.

use hyperap_bench::header;
use hyperap_model::area::{AreaModel, PE_HEIGHT_UM, PE_WIDTH_UM};
use hyperap_model::{SystemConfig, GPU_TITAN_XP, IMP_SYSTEM};

fn main() {
    header("Table II: GPU / IMP / Hyper-AP configuration");
    let hp = SystemConfig::hyper_ap();
    println!(
        "  {:<12} {:>14} {:>10} {:>10} {:>8}  memory",
        "system", "SIMD slots", "freq GHz", "area mm2", "TDP W"
    );
    for c in [&GPU_TITAN_XP, &IMP_SYSTEM, &hp] {
        println!(
            "  {:<12} {:>14} {:>10.2} {:>10.0} {:>8.0}  {}",
            c.name, c.simd_slots, c.frequency_ghz, c.area_mm2, c.tdp_w, c.memory
        );
    }
    println!(
        "\n  paper Hyper-AP slots: 33,554,432 (ours: {}; 16x IMP = {})",
        hp.simd_slots,
        hp.simd_slots as f64 / IMP_SYSTEM.simd_slots as f64
    );

    header("Fig 14: PE physical design (32 nm)");
    let a = AreaModel::rram();
    println!(
        "  PE: {PE_WIDTH_UM} x {PE_HEIGHT_UM} um2 = {:.0} um2 (paper: 53.12 x 49.72)",
        a.pe_area_um2
    );
    println!(
        "  PEs per chip: {} | capacity: {:.2} GB (paper: 1 GB RRAM)",
        a.pe_count(),
        a.capacity_bytes() as f64 / 1e9
    );
}
