//! Fig 18: Rodinia-style kernels — speedup and energy vs IMP and GPU.

use hyperap_bench::header;
use hyperap_workloads::kernels::all_kernels;
use hyperap_workloads::perf::{compare_kernel, geomean};

fn main() {
    header("Fig 18: kernel speedup and energy (paper avg vs IMP: 3.3x speedup, 23.8x energy)");
    // Native-Rodinia-scale inputs: both systems complete in a single pass
    // (the paper's data sets are well under IMP's 2M slots), so the
    // comparison isolates per-element cost rather than the 16x slot-count
    // advantage.
    let n = 1024 * 1024u64;
    let mut speedups = Vec::new();
    let mut energies = Vec::new();
    println!(
        "  {:<14} {:>12} {:>12} {:>12} {:>14} {:>14}",
        "kernel", "vs IMP time", "vs IMP energy", "vs GPU time", "hyper time ms", "hyper energy J"
    );
    for k in all_kernels() {
        let c = compare_kernel(&k, n);
        speedups.push(c.speedup_vs_imp());
        energies.push(c.energy_reduction_vs_imp());
        println!(
            "  {:<14} {:>11.2}x {:>11.1}x {:>11.2}x {:>14.3} {:>14.3}",
            c.name,
            c.speedup_vs_imp(),
            c.energy_reduction_vs_imp(),
            c.speedup_vs_gpu(),
            c.hyper_time_s * 1e3,
            c.hyper_energy_j
        );
    }
    println!(
        "\n  geometric mean vs IMP: {:.2}x speedup (paper 3.3x), {:.1}x energy reduction (paper 23.8x)",
        geomean(speedups),
        geomean(energies)
    );
}
