//! Abstract syntax tree for the C-like language (§V-A, Fig 8).

use serde::{Deserialize, Serialize};

/// A data type: arbitrary-width integers, `bool`, or a user struct.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Type {
    /// `unsigned int (N)`.
    UInt(usize),
    /// `int (N)` — two's-complement signed.
    Int(usize),
    /// `bool` (one bit).
    Bool,
    /// A named struct (custom data type, §V-A).
    Struct(String),
}

impl Type {
    /// Bit width of scalar types (`None` for structs; resolve via the
    /// program's struct table).
    pub fn scalar_width(&self) -> Option<usize> {
        match self {
            Type::UInt(w) | Type::Int(w) => Some(*w),
            Type::Bool => Some(1),
            Type::Struct(_) => None,
        }
    }

    /// Is this a signed type?
    pub fn is_signed(&self) -> bool {
        matches!(self, Type::Int(_))
    }
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
    /// `&`
    And,
    /// `|`
    Or,
    /// `^`
    Xor,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&`
    LAnd,
    /// `||`
    LOr,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum UnOp {
    /// `~`
    Not,
    /// `!`
    LNot,
    /// `-`
    Neg,
}

/// An expression.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Expr {
    /// Integer literal.
    Lit(u64),
    /// Variable reference.
    Var(String),
    /// Struct member access `base.field`.
    Member(Box<Expr>, String),
    /// Binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// Unary operation.
    Un(UnOp, Box<Expr>),
    /// Builtin call: `sqrt(x)`, `exp(x)` (fixed point), `abs(x)`,
    /// `min(a, b)`, `max(a, b)`.
    Call(String, Vec<Expr>),
}

/// An assignable location.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum LValue {
    /// Plain variable.
    Var(String),
    /// Struct member.
    Member(String, String),
}

/// A statement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Stmt {
    /// Declaration with optional initializer.
    Decl {
        /// Declared type.
        ty: Type,
        /// Variable name.
        name: String,
        /// Optional initializer.
        init: Option<Expr>,
    },
    /// Assignment (compound operators are desugared by the parser).
    Assign {
        /// Target.
        target: LValue,
        /// Right-hand side.
        value: Expr,
    },
    /// Conditional; both branches are executed and results selected
    /// (Fig 13b).
    If {
        /// Condition.
        cond: Expr,
        /// Then-branch.
        then_body: Vec<Stmt>,
        /// Else-branch.
        else_body: Vec<Stmt>,
    },
    /// Counted loop, unrolled at compile time (§V-A constraint 1).
    For {
        /// Induction variable name.
        var: String,
        /// Inclusive start (constant).
        start: u64,
        /// Exclusive end (constant).
        end: u64,
        /// Body.
        body: Vec<Stmt>,
    },
    /// Function return.
    Return(Expr),
}

/// A struct definition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StructDef {
    /// Struct name.
    pub name: String,
    /// Ordered fields: (name, scalar type).
    pub fields: Vec<(String, Type)>,
}

/// A function.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Function {
    /// Return type.
    pub ret: Type,
    /// Name.
    pub name: String,
    /// Parameters.
    pub params: Vec<(Type, String)>,
    /// Body.
    pub body: Vec<Stmt>,
}

/// A whole translation unit.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Program {
    /// Struct definitions.
    pub structs: Vec<StructDef>,
    /// Functions (`main` is the kernel entry).
    pub functions: Vec<Function>,
}

impl Program {
    /// Find a struct definition by name.
    pub fn struct_def(&self, name: &str) -> Option<&StructDef> {
        self.structs.iter().find(|s| s.name == name)
    }

    /// Find a function by name.
    pub fn function(&self, name: &str) -> Option<&Function> {
        self.functions.iter().find(|f| f.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_widths() {
        assert_eq!(Type::UInt(5).scalar_width(), Some(5));
        assert_eq!(Type::Int(9).scalar_width(), Some(9));
        assert_eq!(Type::Bool.scalar_width(), Some(1));
        assert_eq!(Type::Struct("p".into()).scalar_width(), None);
        assert!(Type::Int(4).is_signed());
        assert!(!Type::UInt(4).is_signed());
    }
}
