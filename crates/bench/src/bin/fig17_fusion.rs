//! Fig 17: merged consecutive additions and immediate-operand operations.

use hyperap_baselines::reference::{record, OpKind, FIG17_HYPER_AP, FIG17_IMP};
use hyperap_bench::{header, metric_block};
use hyperap_workloads::perf::synthetic_metrics;

fn main() {
    header("Fig 17: operation merging (Multi_Add) and operand embedding (*_i), 32-bit");
    for op in [
        OpKind::MultiAdd,
        OpKind::AddImm,
        OpKind::MulImm,
        OpKind::DivImm,
    ] {
        // Div_i at 32 bits is slow to simulate yet identical in structure;
        // measure it at its native width.
        let m = synthetic_metrics(op, 32);
        let paper = record(&FIG17_HYPER_AP, op).unwrap();
        metric_block(&op.to_string(), &m, &paper);
        let imp = record(&FIG17_IMP, op).unwrap();
        println!(
            "     vs IMP: latency {:.1}x better (paper {:.1}x)",
            imp.latency_ns / m.latency_ns,
            imp.latency_ns / paper.latency_ns
        );
    }
    // The embedding gains over the general forms (paper: avg 1.6x).
    let pairs = [
        (OpKind::AddImm, OpKind::Add),
        (OpKind::MulImm, OpKind::Mul),
        (OpKind::DivImm, OpKind::Div),
    ];
    println!();
    for (imm, gen) in pairs {
        let mi = synthetic_metrics(imm, 32);
        let mg = synthetic_metrics(gen, 32);
        println!(
            "  {imm} vs {gen}: latency {:.2}x better (paper avg across *_i: 1.6x)",
            mg.latency_ns / mi.latency_ns
        );
    }
}
