//! The machine pool: worker threads, work stealing, request batching,
//! quarantine, and per-tenant accounting.
//!
//! # Scheduling shape
//!
//! One worker thread per machine. Admission stripes jobs round-robin over
//! the healthy workers' deques; a worker pops its own deque from the
//! front (FIFO for its stripe) and, when empty, steals from the **back**
//! of the longest peer deque — the classic split that keeps a worker's
//! own stripe in submission order while letting idle machines absorb
//! another stripe's backlog.
//!
//! # Batching
//!
//! When a worker picks up a job it scans the queues for riders: jobs with
//! the *same cached program* (pointer-equal `Arc` from the shared
//! [`ProgramCache`], or equal key + streams across
//! an eviction) that are batch-safe. Riders are placed on the next group
//! ranges of the same machine and the whole batch executes as **one
//! sweep** — one scrub, one dispatch, one endurance pass. A job is
//! batch-safe iff no stream touches remote data registers and the pool
//! runs zero-fault: under those conditions group streams compose without
//! changing any stream's compiled trace (`reg_sync` stays false for every
//! combination) and every group's results are independent of its
//! neighbors, so each rider's sliced results are bit-identical to running
//! alone. Fault-seeded pools never batch — per-PE faults derive from
//! *global* PE ids, so a job only reproduces its isolated-machine
//! behavior at group offset 0.
//!
//! # Quarantine
//!
//! A sweep that returns [`FaultError`] fails only the jobs in that sweep
//! (each with a typed [`JobError::Fault`]); the machine is marked
//! unhealthy, its queued jobs migrate to healthy workers, and the worker
//! exits. A sweep that *panics* (an internal invariant violation) takes
//! the same path with [`JobError::WorkerPanic`], so waiters never block
//! on a slot a dead worker will not fill. The pool keeps serving on the
//! survivors; submissions are refused with
//! [`SubmitError::NoHealthyMachines`] only when the last machine is gone.

use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use hyperap_arch::{ArchConfig, ExecMode, PeHealth, RunStats, SlabMachine};
use hyperap_isa::Instruction;
use hyperap_model::timing::OpCounts;
use hyperap_tcam::FaultError;

use crate::cache::{CacheStats, CachedProgram, ProgramCache};
use crate::job::{CellLoad, JobError, JobHandle, JobOutput, JobSpec, Slot, SubmitError, TenantId};

/// Pool construction parameters.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Geometry of every pool machine (the serving granule). The default
    /// constructor forces [`ExecMode::Sequential`]: the pool's workers
    /// *are* the host parallelism, and nesting a fork-join inside each
    /// worker would oversubscribe the cores the workers already own.
    pub arch: ArchConfig,
    /// Machines (= worker threads) in the pool.
    pub machines: usize,
    /// Per-tenant admission budget: a tenant may have at most this many
    /// jobs *queued* (running jobs don't count). The bound is per tenant,
    /// so one tenant's backlog can never consume another's budget.
    pub tenant_queue_depth: usize,
    /// Shared program-cache capacity (compiled programs).
    pub cache_capacity: usize,
    /// Upper bound on jobs coalesced into one sweep (the machine's group
    /// count bounds it regardless).
    pub max_batch_jobs: usize,
    /// When set, a machine being quarantined first dumps its full state
    /// (slabs, wear, fault bookkeeping, op counters) as an atomic
    /// checkpoint under `<dir>/machine-<index>/`, so the faulted state can
    /// be resumed into an offline [`SlabMachine`] for diagnosis. Dumping
    /// is best-effort: it never blocks or fails the quarantine itself.
    pub postmortem_dir: Option<std::path::PathBuf>,
}

impl ServeConfig {
    /// Defaults: one machine per schedulable CPU (minimum 2, so batching
    /// and stealing exist even on a 1-CPU host), sequential in-machine
    /// execution, a 64-job tenant budget, and a 32-program cache.
    pub fn new(mut arch: ArchConfig) -> Self {
        arch.exec = ExecMode::Sequential;
        ServeConfig {
            arch,
            machines: hyperap_arch::par::logical_cpus().max(2),
            tenant_queue_depth: 64,
            cache_capacity: 32,
            max_batch_jobs: usize::MAX,
            postmortem_dir: None,
        }
    }
}

/// Accounting for one tenant.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TenantStats {
    /// Jobs admitted.
    pub submitted: u64,
    /// Jobs completed successfully.
    pub completed: u64,
    /// Submissions refused with [`SubmitError::QueueFull`].
    pub rejected: u64,
    /// Jobs failed by a machine fault.
    pub faulted: u64,
    /// Sum of completed jobs' makespans (model cycles).
    pub cycles: u64,
    /// Aggregated per-group operation counts over completed jobs.
    pub ops: OpCounts,
    /// Columns retired onto spares during this tenant's jobs (from
    /// [`RunStats::pe_health`]).
    pub retired_columns: u64,
}

/// Why a machine was pulled from service.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuarantineCause {
    /// A sweep latched a hardware fault.
    Fault(FaultError),
    /// The worker thread panicked mid-sweep (an internal invariant
    /// violation, not a modeled fault).
    WorkerPanic,
}

impl std::fmt::Display for QuarantineCause {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QuarantineCause::Fault(error) => write!(f, "{error}"),
            QuarantineCause::WorkerPanic => write!(f, "worker panicked mid-sweep"),
        }
    }
}

/// One quarantined machine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuarantineReport {
    /// Pool machine index.
    pub machine: usize,
    /// What triggered the quarantine.
    pub cause: QuarantineCause,
    /// Jobs failed in the sweep that triggered the quarantine.
    pub failed_jobs: u64,
    /// Where the machine's postmortem state dump was committed (see
    /// [`ServeConfig::postmortem_dir`]); `None` when dumping is disabled
    /// or the best-effort dump failed.
    pub postmortem: Option<std::path::PathBuf>,
}

/// A point-in-time snapshot of pool health and counters.
#[derive(Debug, Clone, PartialEq)]
pub struct PoolStats {
    /// Machines the pool was built with.
    pub machines: usize,
    /// Machines still serving.
    pub healthy_machines: usize,
    /// Jobs completed successfully, pool-wide.
    pub completed_jobs: u64,
    /// Submissions refused with `QueueFull`, pool-wide.
    pub rejected_jobs: u64,
    /// Jobs failed by machine faults, pool-wide.
    pub faulted_jobs: u64,
    /// Sweeps dispatched (a batch of any size is one sweep).
    pub sweeps: u64,
    /// Jobs that shared their sweep with at least one other job.
    pub batched_jobs: u64,
    /// High-water mark of total queued jobs.
    pub max_queue_depth: usize,
    /// Jobs queued right now.
    pub queue_depth: usize,
    /// Shared program-cache counters.
    pub cache: CacheStats,
    /// Quarantined machines, in quarantine order.
    pub quarantined: Vec<QuarantineReport>,
    /// Per-tenant accounting, ascending by tenant id.
    pub tenants: Vec<(TenantId, TenantStats)>,
}

struct QueuedJob {
    tenant: TenantId,
    program: Arc<CachedProgram>,
    loads: Vec<CellLoad>,
    batchable: bool,
    slot: Arc<Slot>,
}

/// Everything the scheduler mutates, under one lock: the deques, health,
/// per-tenant budgets, and counters. Jobs are short (microseconds to
/// milliseconds of sweep work per lock acquisition), so a single lock is
/// contended far below the point where striping it would matter; what the
/// *policy* distributes is machine time, via the deque discipline above.
struct Sched {
    deques: Vec<VecDeque<QueuedJob>>,
    healthy: Vec<bool>,
    tenant_depth: HashMap<TenantId, usize>,
    tenants: HashMap<TenantId, TenantStats>,
    quarantined: Vec<QuarantineReport>,
    /// Round-robin cursor for admission striping.
    rr: usize,
    depth: usize,
    max_depth: usize,
    sweeps: u64,
    batched_jobs: u64,
    shutdown: bool,
}

impl Sched {
    fn healthy_count(&self) -> usize {
        self.healthy.iter().filter(|&&h| h).count()
    }

    fn tenant(&mut self, t: TenantId) -> &mut TenantStats {
        self.tenants.entry(t).or_default()
    }

    /// Remove and return the next job for worker `w`: own deque front
    /// first, else the back of the longest peer deque.
    fn next_job(&mut self, w: usize) -> Option<QueuedJob> {
        if let Some(job) = self.deques[w].pop_front() {
            self.depth -= 1;
            *self
                .tenant_depth
                .get_mut(&job.tenant)
                .expect("queued tenant") -= 1;
            return Some(job);
        }
        let victim = (0..self.deques.len())
            .filter(|&v| v != w && !self.deques[v].is_empty())
            .max_by_key(|&v| self.deques[v].len())?;
        let job = self.deques[victim].pop_back().expect("non-empty victim");
        self.depth -= 1;
        *self
            .tenant_depth
            .get_mut(&job.tenant)
            .expect("queued tenant") -= 1;
        Some(job)
    }

    /// Pull batch riders for `primary` out of the queues: same cached
    /// program, batch-safe, while the group budget and batch bound last.
    /// Scans every deque front-to-back (own first) so riders complete in
    /// roughly admission order.
    fn take_riders(
        &mut self,
        w: usize,
        primary: &QueuedJob,
        machine_groups: usize,
        max_batch: usize,
    ) -> Vec<QueuedJob> {
        let mut riders = Vec::new();
        if !primary.batchable {
            return riders;
        }
        let mut groups = primary.program.streams.len();
        let order: Vec<usize> = std::iter::once(w)
            .chain((0..self.deques.len()).filter(|&v| v != w))
            .collect();
        'scan: for v in order {
            let mut i = 0;
            while i < self.deques[v].len() {
                if riders.len() + 1 >= max_batch {
                    break 'scan;
                }
                let job = &self.deques[v][i];
                let fits = job.batchable
                    && groups + job.program.streams.len() <= machine_groups
                    && (Arc::ptr_eq(&job.program, &primary.program)
                        || (job.program.key == primary.program.key
                            && job.program.geometry == primary.program.geometry
                            && job.program.streams == primary.program.streams));
                if fits {
                    let job = self.deques[v].remove(i).expect("indexed job");
                    self.depth -= 1;
                    *self
                        .tenant_depth
                        .get_mut(&job.tenant)
                        .expect("queued tenant") -= 1;
                    groups += job.program.streams.len();
                    riders.push(job);
                } else {
                    i += 1;
                }
            }
        }
        riders
    }
}

struct Shared {
    cfg: ServeConfig,
    cache: ProgramCache,
    sched: Mutex<Sched>,
    work: Condvar,
}

/// The pool itself. Dropping it shuts down: queued jobs fail with
/// [`JobError::PoolShutdown`] and the workers are joined.
pub struct ServePool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for ServePool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServePool")
            .field("stats", &self.stats())
            .finish_non_exhaustive()
    }
}

impl ServePool {
    /// Spawn the pool: `cfg.machines` workers, each owning one freshly
    /// constructed machine of `cfg.arch` geometry.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.machines` or `cfg.tenant_queue_depth` is zero (a
    /// pool that can't run or admit anything) or if worker threads cannot
    /// be spawned.
    pub fn new(cfg: ServeConfig) -> ServePool {
        assert!(cfg.machines > 0, "pool needs at least one machine");
        assert!(
            cfg.tenant_queue_depth > 0,
            "tenant queue depth must be non-zero"
        );
        let machines = cfg.machines;
        let shared = Arc::new(Shared {
            cache: ProgramCache::new(cfg.cache_capacity),
            sched: Mutex::new(Sched {
                deques: (0..machines).map(|_| VecDeque::new()).collect(),
                healthy: vec![true; machines],
                tenant_depth: HashMap::new(),
                tenants: HashMap::new(),
                quarantined: Vec::new(),
                rr: 0,
                depth: 0,
                max_depth: 0,
                sweeps: 0,
                batched_jobs: 0,
                shutdown: false,
            }),
            work: Condvar::new(),
            cfg,
        });
        let workers = (0..machines)
            .map(|w| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("serve-worker-{w}"))
                    .spawn(move || worker_loop(&shared, w))
                    .expect("spawn pool worker")
            })
            .collect();
        ServePool { shared, workers }
    }

    /// The pool's construction parameters.
    pub fn config(&self) -> &ServeConfig {
        &self.shared.cfg
    }

    /// The shared program cache (e.g. to pre-warm kernels).
    pub fn cache(&self) -> &ProgramCache {
        &self.shared.cache
    }

    /// Submit a job. On success the job is queued (compiled through the
    /// shared cache) and the returned handle resolves when it has run.
    ///
    /// # Errors
    ///
    /// Typed [`SubmitError`]s for every refusal: malformed specs, per-
    /// tenant backpressure, a fully quarantined pool, or shutdown. A
    /// refused job was never queued.
    pub fn submit(&self, spec: JobSpec) -> Result<JobHandle, SubmitError> {
        let machine_groups = self.shared.cfg.arch.groups;
        if spec.streams.is_empty() {
            return Err(SubmitError::EmptyJob);
        }
        if spec.streams.len() > machine_groups {
            return Err(SubmitError::TooManyGroups {
                requested: spec.streams.len(),
                machine_groups,
            });
        }
        let remote = spec
            .streams
            .iter()
            .any(|s| s.iter().any(Instruction::touches_remote_regs));
        if remote && spec.streams.len() != machine_groups {
            return Err(SubmitError::RemoteOpsNeedFullMachine {
                requested: spec.streams.len(),
                machine_groups,
            });
        }
        // Preloads are job-local; an out-of-span `pe` on a batched job
        // would land in a co-batched tenant's groups, and an out-of-range
        // row/col would trip the slab's cell asserts on the worker.
        let job_pes = spec.streams.len() * self.shared.cfg.arch.pes_per_group();
        let (rows, cols) = (self.shared.cfg.arch.rows, self.shared.cfg.arch.cols);
        if let Some(&load) = spec
            .loads
            .iter()
            .find(|l| l.pe >= job_pes || l.row >= rows || l.col >= cols)
        {
            return Err(SubmitError::LoadOutOfRange {
                load,
                job_pes,
                rows,
                cols,
            });
        }
        // Compile (or hit the shared cache) before taking the scheduler
        // lock: a cold kernel must never stall admission for other
        // tenants. Fault-seeded pools never batch: faults derive from
        // global PE ids, so isolated-run equivalence only holds at group
        // offset 0.
        let program = self
            .shared
            .cache
            .get_or_compile(&spec.streams, &self.shared.cfg.arch);
        let batchable = !remote && !self.shared.cfg.arch.faults.is_active();
        let mut sched = self.shared.sched.lock().expect("sched lock");
        if sched.shutdown {
            return Err(SubmitError::ShuttingDown);
        }
        if sched.healthy_count() == 0 {
            return Err(SubmitError::NoHealthyMachines);
        }
        let depth_bound = self.shared.cfg.tenant_queue_depth;
        if sched.tenant_depth.get(&spec.tenant).copied().unwrap_or(0) >= depth_bound {
            sched.tenant(spec.tenant).rejected += 1;
            return Err(SubmitError::QueueFull {
                tenant: spec.tenant,
                depth: depth_bound,
            });
        }
        *sched.tenant_depth.entry(spec.tenant).or_insert(0) += 1;
        sched.depth += 1;
        sched.max_depth = sched.max_depth.max(sched.depth);
        sched.tenant(spec.tenant).submitted += 1;
        // Stripe to the next healthy worker.
        let n = sched.deques.len();
        let start = sched.rr;
        let w = (0..n)
            .map(|i| (start + i) % n)
            .find(|&w| sched.healthy[w])
            .expect("healthy machine exists");
        sched.rr = (w + 1) % n;
        let slot = Slot::new();
        sched.deques[w].push_back(QueuedJob {
            tenant: spec.tenant,
            program,
            loads: spec.loads,
            batchable,
            slot: Arc::clone(&slot),
        });
        drop(sched);
        self.shared.work.notify_all();
        Ok(JobHandle {
            slot,
            tenant: spec.tenant,
        })
    }

    /// Snapshot the pool's counters and health.
    pub fn stats(&self) -> PoolStats {
        let sched = self.shared.sched.lock().expect("sched lock");
        let mut tenants: Vec<(TenantId, TenantStats)> =
            sched.tenants.iter().map(|(&t, &s)| (t, s)).collect();
        tenants.sort_by_key(|&(t, _)| t);
        let totals = |f: fn(&TenantStats) -> u64| tenants.iter().map(|(_, s)| f(s)).sum();
        PoolStats {
            machines: self.shared.cfg.machines,
            healthy_machines: sched.healthy_count(),
            completed_jobs: totals(|s| s.completed),
            rejected_jobs: totals(|s| s.rejected),
            faulted_jobs: totals(|s| s.faulted),
            sweeps: sched.sweeps,
            batched_jobs: sched.batched_jobs,
            max_queue_depth: sched.max_depth,
            queue_depth: sched.depth,
            cache: self.shared.cache.stats(),
            quarantined: sched.quarantined.clone(),
            tenants,
        }
    }

    /// Shut down: fail every queued job with [`JobError::PoolShutdown`],
    /// join the workers, and return the final stats snapshot.
    pub fn shutdown(mut self) -> PoolStats {
        self.shutdown_impl();
        let stats = self.stats();
        drop(self);
        stats
    }

    fn shutdown_impl(&mut self) {
        {
            let mut sched = self.shared.sched.lock().expect("sched lock");
            sched.shutdown = true;
            for w in 0..sched.deques.len() {
                while let Some(job) = sched.deques[w].pop_front() {
                    sched.depth -= 1;
                    *sched
                        .tenant_depth
                        .get_mut(&job.tenant)
                        .expect("queued tenant") -= 1;
                    job.slot.fulfill(Err(JobError::PoolShutdown));
                }
            }
        }
        self.shared.work.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for ServePool {
    fn drop(&mut self) {
        self.shutdown_impl();
    }
}

fn worker_loop(shared: &Shared, w: usize) {
    let mut machine = SlabMachine::new(shared.cfg.arch.clone());
    let machine_groups = shared.cfg.arch.groups;
    let per = shared.cfg.arch.pes_per_group();
    loop {
        let batch = {
            let mut sched = shared.sched.lock().expect("sched lock");
            loop {
                if sched.shutdown || !sched.healthy[w] {
                    return;
                }
                if let Some(primary) = sched.next_job(w) {
                    let mut batch =
                        sched.take_riders(w, &primary, machine_groups, shared.cfg.max_batch_jobs);
                    batch.insert(0, primary);
                    break batch;
                }
                sched = shared.work.wait(sched).expect("sched lock");
            }
        };
        // A panic inside the sweep (an internal assert, not a modeled
        // fault) must not strand the batch: waiters would block forever on
        // slots nobody will fill while admission keeps striping jobs to a
        // dead worker. Catch it, quarantine like the fault path, and fail
        // the batch with a typed error before the worker exits.
        let swept = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_batch(&mut machine, w, per, &batch)
        }));
        match swept {
            Err(_) => {
                let dump = postmortem_dump(shared, w, &machine);
                quarantine(shared, w, QuarantineCause::WorkerPanic, &batch, dump);
                for job in batch {
                    job.slot.fulfill(Err(JobError::WorkerPanic { machine: w }));
                }
                return;
            }
            Ok(Ok(outputs)) => {
                let mut sched = shared.sched.lock().expect("sched lock");
                sched.sweeps += 1;
                if batch.len() > 1 {
                    sched.batched_jobs += batch.len() as u64;
                }
                for (job, output) in batch.iter().zip(&outputs) {
                    let tenant = sched.tenant(job.tenant);
                    tenant.completed += 1;
                    tenant.cycles += output.stats.makespan();
                    for ops in &output.stats.group_ops {
                        tenant.ops.add(ops);
                    }
                    tenant.retired_columns += output
                        .stats
                        .pe_health
                        .iter()
                        .map(|h| h.retired.len() as u64)
                        .sum::<u64>();
                }
                drop(sched);
                for (job, output) in batch.into_iter().zip(outputs) {
                    job.slot.fulfill(Ok(output));
                }
            }
            Ok(Err(error)) => {
                let dump = postmortem_dump(shared, w, &machine);
                quarantine(shared, w, QuarantineCause::Fault(error), &batch, dump);
                for job in batch {
                    job.slot.fulfill(Err(JobError::Fault { machine: w, error }));
                }
                return;
            }
        }
    }
}

/// Scrub the machine, place each job of the batch on its group range,
/// run everything as one sweep, and slice per-job results back out.
fn run_batch(
    machine: &mut SlabMachine,
    w: usize,
    per: usize,
    batch: &[QueuedJob],
) -> Result<Vec<JobOutput>, FaultError> {
    machine.scrub();
    let mut refs: Vec<&hyperap_arch::CompiledTrace> = Vec::new();
    let mut off = 0;
    for job in batch {
        for load in &job.loads {
            machine.load_bit(off * per + load.pe, load.row, load.col, load.value);
        }
        refs.extend(job.program.traces.iter());
        off += job.program.streams.len();
    }
    let stats = machine.try_run_compiled_refs(&refs)?;
    let mut outputs = Vec::with_capacity(batch.len());
    let mut off = 0;
    for job in batch {
        let groups = job.program.streams.len();
        outputs.push(JobOutput {
            stats: slice_stats(&stats, off, groups, per),
            machine: w,
            batch_size: batch.len(),
        });
        off += groups;
    }
    Ok(outputs)
}

/// Re-coordinate one job's slice of a batch run into job-local ids:
/// group `off` becomes group 0, PE `off * per` becomes PE 0. Equals the
/// `RunStats` of the same job alone on a fresh machine of its own size
/// (groups beyond the slice never touch it — batch-safe jobs have no
/// cross-group traffic).
fn slice_stats(full: &RunStats, off: usize, groups: usize, per: usize) -> RunStats {
    let base = off * per;
    let span = base..(off + groups) * per;
    RunStats {
        group_cycles: full.group_cycles[off..off + groups].to_vec(),
        group_ops: full.group_ops[off..off + groups].to_vec(),
        count_results: full.count_results[off..off + groups]
            .iter()
            .map(|v| v.iter().map(|&(pe, c)| (pe - base, c)).collect())
            .collect(),
        index_results: full.index_results[off..off + groups]
            .iter()
            .map(|v| v.iter().map(|&(pe, i)| (pe - base, i)).collect())
            .collect(),
        pe_health: full
            .pe_health
            .iter()
            .filter(|h| span.contains(&h.pe))
            .map(|h| PeHealth {
                pe: h.pe - base,
                retired: h.retired.clone(),
                spares_left: h.spares_left,
            })
            .collect(),
        geometry: full.geometry,
    }
}

/// Best-effort postmortem: commit the machine's full state as an atomic
/// checkpoint under `postmortem_dir/machine-<w>/` so it can be resumed
/// offline for diagnosis. Returns the dump directory on success; any
/// failure (dir creation, I/O) is swallowed — a broken dump must never
/// turn a quarantine into a crash.
fn postmortem_dump(shared: &Shared, w: usize, machine: &SlabMachine) -> Option<std::path::PathBuf> {
    let dir = shared
        .cfg
        .postmortem_dir
        .as_ref()?
        .join(format!("machine-{w}"));
    let sink = hyperap_ckpt::DirSink::new(&dir).ok()?;
    let mut ck = hyperap_ckpt::Checkpointer::new(sink);
    ck.set_keep(1);
    ck.checkpoint(machine).ok()?;
    Some(dir)
}

/// Mark machine `w` unhealthy and migrate its queued jobs to healthy
/// workers (or fail them with [`JobError::PoolShutdown`] when none
/// remain).
fn quarantine(
    shared: &Shared,
    w: usize,
    cause: QuarantineCause,
    batch: &[QueuedJob],
    postmortem: Option<std::path::PathBuf>,
) {
    let mut sched = shared.sched.lock().expect("sched lock");
    sched.healthy[w] = false;
    sched.quarantined.push(QuarantineReport {
        machine: w,
        cause,
        failed_jobs: batch.len() as u64,
        postmortem,
    });
    for job in batch {
        sched.tenant(job.tenant).faulted += 1;
    }
    let stranded: Vec<QueuedJob> = sched.deques[w].drain(..).collect();
    let healthy: Vec<usize> = (0..sched.deques.len())
        .filter(|&v| sched.healthy[v])
        .collect();
    for (i, job) in stranded.into_iter().enumerate() {
        if healthy.is_empty() {
            sched.depth -= 1;
            *sched
                .tenant_depth
                .get_mut(&job.tenant)
                .expect("queued tenant") -= 1;
            job.slot.fulfill(Err(JobError::PoolShutdown));
        } else {
            sched.deques[healthy[i % healthy.len()]].push_back(job);
        }
    }
    drop(sched);
    shared.work.notify_all();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobSpec;
    use hyperap_arch::{FaultModel, SlabMachine};
    use hyperap_tcam::SearchKey;

    fn setkey(s: &str) -> Instruction {
        Instruction::SetKey {
            key: SearchKey::parse(s).unwrap(),
        }
    }

    const SEARCH: Instruction = Instruction::Search {
        acc: false,
        encode: false,
    };

    /// A small local program: searches, a write, and both reductions.
    fn probe_stream() -> Vec<Instruction> {
        vec![
            setkey("1-"),
            SEARCH,
            Instruction::Write {
                col: 1,
                encode: false,
            },
            setkey("-1"),
            SEARCH,
            Instruction::Count,
            Instruction::Index,
        ]
    }

    /// ~`n` instructions of busywork to keep a worker occupied.
    fn slow_stream(n: usize) -> Vec<Instruction> {
        let mut s = vec![setkey("1-")];
        s.extend(std::iter::repeat_n(SEARCH, n));
        s.push(Instruction::Count);
        s
    }

    fn tiny_pool(machines: usize) -> ServePool {
        let mut cfg = ServeConfig::new(ArchConfig::tiny());
        cfg.machines = machines;
        ServePool::new(cfg)
    }

    #[test]
    fn job_matches_isolated_machine() {
        let pool = tiny_pool(2);
        let loads = vec![
            CellLoad {
                pe: 0,
                row: 1,
                col: 0,
                value: true,
            },
            CellLoad {
                pe: 2,
                row: 0,
                col: 1,
                value: true,
            },
        ];
        let out = pool
            .submit(JobSpec {
                tenant: 7,
                streams: vec![probe_stream()],
                loads: loads.clone(),
            })
            .unwrap()
            .wait()
            .unwrap();
        let mut iso_cfg = ArchConfig::tiny();
        iso_cfg.groups = 1;
        iso_cfg.exec = ExecMode::Sequential;
        let mut iso = SlabMachine::new(iso_cfg);
        for l in &loads {
            iso.load_bit(l.pe, l.row, l.col, l.value);
        }
        let want = iso.run(&[probe_stream()]);
        assert_eq!(out.stats, want);
        let stats = pool.shutdown();
        assert_eq!(stats.completed_jobs, 1);
        assert_eq!(stats.tenants, vec![(7, stats.tenants[0].1)]);
        assert_eq!(stats.tenants[0].1.completed, 1);
    }

    #[test]
    fn full_machine_job_with_mesh_traffic_matches_isolated() {
        let pool = tiny_pool(1);
        let groups = ArchConfig::tiny().groups;
        let stream = vec![
            setkey("1-"),
            SEARCH,
            Instruction::ReadTag,
            Instruction::MovR {
                dir: hyperap_isa::Direction::Right,
            },
            Instruction::SetTag,
            Instruction::Count,
        ];
        let streams = vec![stream; groups];
        let loads = vec![CellLoad {
            pe: 5,
            row: 3,
            col: 0,
            value: true,
        }];
        let out = pool
            .submit(JobSpec {
                tenant: 0,
                streams: streams.clone(),
                loads: loads.clone(),
            })
            .unwrap()
            .wait()
            .unwrap();
        let mut iso_cfg = ArchConfig::tiny();
        iso_cfg.exec = ExecMode::Sequential;
        let mut iso = SlabMachine::new(iso_cfg);
        for l in &loads {
            iso.load_bit(l.pe, l.row, l.col, l.value);
        }
        assert_eq!(out.stats, iso.run(&streams));
    }

    #[test]
    fn typed_rejections() {
        let pool = tiny_pool(1);
        let groups = ArchConfig::tiny().groups;
        assert_eq!(
            pool.submit(JobSpec {
                tenant: 0,
                streams: vec![],
                loads: vec![],
            })
            .unwrap_err(),
            SubmitError::EmptyJob
        );
        assert_eq!(
            pool.submit(JobSpec {
                tenant: 0,
                streams: vec![probe_stream(); groups + 1],
                loads: vec![],
            })
            .unwrap_err(),
            SubmitError::TooManyGroups {
                requested: groups + 1,
                machine_groups: groups
            }
        );
        let remote = vec![vec![Instruction::MovR {
            dir: hyperap_isa::Direction::Left,
        }]];
        assert_eq!(
            pool.submit(JobSpec {
                tenant: 0,
                streams: remote,
                loads: vec![],
            })
            .unwrap_err(),
            SubmitError::RemoteOpsNeedFullMachine {
                requested: 1,
                machine_groups: groups
            }
        );
    }

    #[test]
    fn out_of_span_loads_are_rejected() {
        let pool = tiny_pool(1);
        let arch = ArchConfig::tiny();
        let per = arch.pes_per_group();
        let ok = CellLoad {
            pe: 0,
            row: 0,
            col: 0,
            value: true,
        };
        // A 1-group job owns PEs [0, per): `pe == per` is the first PE of
        // a *neighbor's* group range when batched, so it must be refused.
        for bad in [
            CellLoad { pe: per, ..ok },
            CellLoad {
                row: arch.rows,
                ..ok
            },
            CellLoad {
                col: arch.cols,
                ..ok
            },
        ] {
            assert_eq!(
                pool.submit(JobSpec {
                    tenant: 0,
                    streams: vec![probe_stream()],
                    loads: vec![ok, bad],
                })
                .unwrap_err(),
                SubmitError::LoadOutOfRange {
                    load: bad,
                    job_pes: per,
                    rows: arch.rows,
                    cols: arch.cols,
                }
            );
        }
        // The same pe is fine when the job requests both groups.
        let full = pool.submit(JobSpec {
            tenant: 0,
            streams: vec![probe_stream(); arch.groups],
            loads: vec![CellLoad { pe: per, ..ok }],
        });
        full.unwrap().wait().unwrap();
        assert_eq!(pool.stats().completed_jobs, 1);
    }

    #[test]
    fn sweep_panic_fails_the_batch_and_quarantines() {
        // Inject a job whose preload is outside the machine entirely,
        // bypassing submit() validation — the stand-in for any internal
        // invariant violation mid-sweep. The waiter must get a typed
        // error (not block forever) and the machine must quarantine.
        let pool = tiny_pool(2);
        let arch = ArchConfig::tiny();
        let program = pool.cache().get_or_compile(&[probe_stream()], &arch);
        let slot = Slot::new();
        {
            let mut sched = pool.shared.sched.lock().expect("sched lock");
            sched.deques[0].push_back(QueuedJob {
                tenant: 9,
                program,
                loads: vec![CellLoad {
                    pe: arch.total_pes(),
                    row: 0,
                    col: 0,
                    value: true,
                }],
                batchable: true,
                slot: Arc::clone(&slot),
            });
            sched.depth += 1;
            sched.tenant_depth.insert(9, 1);
        }
        pool.shared.work.notify_all();
        // Either worker may pick the job up (the idle peer can steal it).
        let err = (JobHandle { slot, tenant: 9 }).wait().unwrap_err();
        let JobError::WorkerPanic { machine } = err else {
            panic!("expected a worker panic, got {err:?}");
        };
        // The survivor keeps serving; the panic is reported in stats.
        pool.submit(JobSpec {
            tenant: 1,
            streams: vec![probe_stream()],
            loads: vec![],
        })
        .unwrap()
        .wait()
        .unwrap();
        let stats = pool.shutdown();
        assert_eq!(stats.healthy_machines, 1);
        assert_eq!(stats.quarantined.len(), 1);
        assert_eq!(stats.quarantined[0].machine, machine);
        assert_eq!(stats.quarantined[0].cause, QuarantineCause::WorkerPanic);
    }

    #[test]
    fn try_wait_does_not_consume_the_result() {
        let pool = tiny_pool(1);
        let handle = pool
            .submit(JobSpec {
                tenant: 0,
                streams: vec![probe_stream()],
                loads: vec![],
            })
            .unwrap();
        let polled = loop {
            if let Some(r) = handle.try_wait() {
                break r;
            }
            std::thread::yield_now();
        };
        let again = handle.try_wait().expect("poll after completion");
        assert_eq!(polled, again);
        assert_eq!(handle.wait(), polled, "wait still resolves after polls");
    }

    #[test]
    fn queue_full_backpressure_is_per_tenant() {
        let mut cfg = ServeConfig::new(ArchConfig::tiny());
        cfg.machines = 1;
        cfg.tenant_queue_depth = 2;
        let pool = ServePool::new(cfg);
        // Occupy the single worker long enough to fill tenant 1's budget.
        let slow = pool
            .submit(JobSpec {
                tenant: 0,
                streams: vec![slow_stream(60_000)],
                loads: vec![],
            })
            .unwrap();
        let mut handles = Vec::new();
        let mut saw_queue_full = false;
        // Keep tenant 1's queue topped up until a rejection lands (the
        // worker may drain between submissions; the budget bound must
        // eventually refuse an admission while two jobs sit queued).
        for _ in 0..200 {
            match pool.submit(JobSpec {
                tenant: 1,
                streams: vec![probe_stream()],
                loads: vec![],
            }) {
                Ok(h) => handles.push(h),
                Err(SubmitError::QueueFull { tenant, depth }) => {
                    assert_eq!((tenant, depth), (1, 2));
                    saw_queue_full = true;
                    break;
                }
                Err(e) => panic!("unexpected rejection: {e}"),
            }
        }
        assert!(saw_queue_full, "backpressure never triggered");
        // Tenant 2 is not affected by tenant 1's backlog.
        let other = pool.submit(JobSpec {
            tenant: 2,
            streams: vec![probe_stream()],
            loads: vec![],
        });
        assert!(other.is_ok(), "independent tenant was starved");
        slow.wait().unwrap();
        other.unwrap().wait().unwrap();
        for h in handles {
            h.wait().unwrap();
        }
        assert!(pool.stats().rejected_jobs >= 1);
    }

    #[test]
    fn spares_exhaustion_quarantines_only_one_machine() {
        let mut arch = ArchConfig::tiny();
        arch.faults.model = FaultModel {
            seed: 11,
            stuck_per_million: 0,
            miss_per_million: 0,
            endurance_limit: Some(2),
        };
        arch.faults.spare_cols = 0;
        let mut cfg = ServeConfig::new(arch);
        cfg.machines = 2;
        let pool = ServePool::new(cfg);
        // Three writes to one column blow the endurance limit with zero
        // spares: the sweep fails, the machine quarantines. The key bit at
        // the written column must be definite (`Write` stores the key bit;
        // a masked bit writes nothing and wears nothing), and the searches
        // between the writes keep the peephole pass from fusing them into
        // one physical (single-wear) write.
        let mut wear_out = vec![setkey("1-")];
        for _ in 0..3 {
            wear_out.push(SEARCH);
            wear_out.push(Instruction::Write {
                col: 0,
                encode: false,
            });
        }
        let err = pool
            .submit(JobSpec {
                tenant: 3,
                streams: vec![wear_out],
                loads: vec![],
            })
            .unwrap()
            .wait()
            .unwrap_err();
        let JobError::Fault { error, .. } = err else {
            panic!("expected a fault, got {err:?}");
        };
        assert!(matches!(
            error,
            hyperap_arch::FaultError::SparesExhausted { .. }
        ));
        // The pool keeps serving healthy traffic on the surviving machine.
        let ok = pool
            .submit(JobSpec {
                tenant: 4,
                streams: vec![probe_stream()],
                loads: vec![],
            })
            .unwrap()
            .wait();
        assert!(ok.is_ok(), "survivor machine refused clean work: {ok:?}");
        let stats = pool.stats();
        assert_eq!(stats.healthy_machines, 1);
        assert_eq!(stats.faulted_jobs, 1);
        assert_eq!(stats.quarantined.len(), 1);
        assert_eq!(stats.quarantined[0].failed_jobs, 1);
        assert_eq!(stats.quarantined[0].postmortem, None);
    }

    /// With `postmortem_dir` set, a quarantine commits the faulted
    /// machine's full state as a checkpoint that resumes offline into a
    /// fresh machine — wear counters and retirements included.
    #[test]
    fn quarantine_dumps_resumable_postmortem_state() {
        use hyperap_ckpt::{Checkpointer, DirSink};

        let mut arch = ArchConfig::tiny();
        arch.faults.model = FaultModel {
            seed: 11,
            stuck_per_million: 0,
            miss_per_million: 0,
            endurance_limit: Some(2),
        };
        arch.faults.spare_cols = 0;
        let mut cfg = ServeConfig::new(arch);
        cfg.machines = 1;
        let dir = std::env::temp_dir().join(format!("hyperap-postmortem-{}", std::process::id()));
        cfg.postmortem_dir = Some(dir.clone());
        let arch_copy = cfg.arch.clone();
        let pool = ServePool::new(cfg);
        let mut wear_out = vec![setkey("1-")];
        for _ in 0..3 {
            wear_out.push(SEARCH);
            wear_out.push(Instruction::Write {
                col: 0,
                encode: false,
            });
        }
        let err = pool
            .submit(JobSpec {
                tenant: 3,
                streams: vec![wear_out],
                loads: vec![],
            })
            .unwrap()
            .wait()
            .unwrap_err();
        assert!(matches!(err, JobError::Fault { .. }));
        let stats = pool.shutdown();
        assert_eq!(stats.quarantined.len(), 1);
        let dump = stats.quarantined[0]
            .postmortem
            .as_ref()
            .expect("postmortem dump committed");
        assert_eq!(dump, &dir.join("machine-0"));

        let sink = DirSink::new(dump).unwrap();
        let mut ck = Checkpointer::new(sink);
        let mut revived = SlabMachine::new(arch_copy);
        let epoch = ck.resume(&mut revived).expect("dump resumes");
        assert_eq!(epoch, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn take_riders_coalesces_same_program_within_group_budget() {
        let cfg = ArchConfig::tiny();
        let cache = ProgramCache::new(4);
        let program = cache.get_or_compile(&[probe_stream()], &cfg);
        let other = cache.get_or_compile(&[slow_stream(4)], &cfg);
        let job = |program: &Arc<CachedProgram>| QueuedJob {
            tenant: 0,
            program: Arc::clone(program),
            loads: vec![],
            batchable: true,
            slot: Slot::new(),
        };
        let mut sched = Sched {
            deques: vec![VecDeque::new(), VecDeque::new()],
            healthy: vec![true; 2],
            tenant_depth: HashMap::from([(0, 4)]),
            tenants: HashMap::new(),
            quarantined: Vec::new(),
            rr: 0,
            depth: 4,
            max_depth: 4,
            sweeps: 0,
            batched_jobs: 0,
            shutdown: false,
        };
        sched.deques[0].push_back(job(&program));
        sched.deques[0].push_back(job(&other)); // different program: stays
        sched.deques[1].push_back(job(&program));
        sched.deques[1].push_back(job(&program));
        let primary = sched.next_job(0).unwrap();
        // tiny() has 2 groups; the primary takes one, so exactly one
        // 1-group rider fits, pulled from worker 0's own deque first —
        // but the next own-deque job is a different program, so the
        // rider comes from worker 1.
        let riders = sched.take_riders(0, &primary, 2, usize::MAX);
        assert_eq!(riders.len(), 1);
        assert!(Arc::ptr_eq(&riders[0].program, &primary.program));
        assert_eq!(sched.depth, 2);
        // With a 4-group machine every same-program job rides.
        let riders = sched.take_riders(0, &primary, 4, usize::MAX);
        assert_eq!(riders.len(), 1, "only one compatible job remains");
        assert_eq!(sched.deques[0].len(), 1, "incompatible job stays queued");
        // A non-batchable primary never takes riders.
        let mut solo = sched.next_job(0).unwrap();
        solo.batchable = false;
        assert!(sched.take_riders(0, &solo, 4, usize::MAX).is_empty());
    }

    #[test]
    fn batched_jobs_match_isolated_machines() {
        // One machine, one slow job in front: the quick same-kernel jobs
        // queue behind it and coalesce into one sweep when it finishes.
        let pool = tiny_pool(1);
        let slow = pool
            .submit(JobSpec {
                tenant: 0,
                streams: vec![slow_stream(60_000)],
                loads: vec![],
            })
            .unwrap();
        let quick: Vec<JobHandle> = (0..2)
            .map(|i| {
                pool.submit(JobSpec {
                    tenant: i,
                    streams: vec![probe_stream()],
                    loads: vec![CellLoad {
                        pe: i as usize,
                        row: 0,
                        col: 0,
                        value: true,
                    }],
                })
                .unwrap()
            })
            .collect();
        slow.wait().unwrap();
        for (i, h) in quick.into_iter().enumerate() {
            let out = h.wait().unwrap();
            let mut iso_cfg = ArchConfig::tiny();
            iso_cfg.groups = 1;
            iso_cfg.exec = ExecMode::Sequential;
            let mut iso = SlabMachine::new(iso_cfg);
            iso.load_bit(i, 0, 0, true);
            assert_eq!(out.stats, iso.run(&[probe_stream()]), "job {i}");
        }
        let stats = pool.shutdown();
        assert_eq!(stats.completed_jobs, 3);
        assert_eq!(stats.cache.misses, 2, "one compile per distinct kernel");
        assert!(stats.cache.hits >= 1, "repeated kernel hit the cache");
    }
}
