//! Storage backends for the checkpoint commit protocol.
//!
//! A [`CheckpointSink`] is a flat namespace of named byte blobs with the
//! three durability primitives the atomic commit protocol is built from:
//! `write` (content lands but is not yet durable), `sync` (the named blob's
//! content becomes durable), and `rename` (atomic, durable namespace move —
//! the commit point). [`DirSink`] maps the namespace onto one directory;
//! [`MemSink`] is the in-memory equivalent for benchmarks and tests; the
//! crash-injecting sink lives in [`crate::testing`].

use std::collections::BTreeMap;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Failure modes of a [`CheckpointSink`] operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SinkError {
    /// The named blob does not exist.
    NotFound,
    /// The fault-injecting sink killed the process at this operation — the
    /// checkpoint in flight must be treated as torn.
    Killed,
    /// An underlying I/O failure, with the OS error text.
    Io(String),
}

impl std::fmt::Display for SinkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SinkError::NotFound => write!(f, "no such checkpoint blob"),
            SinkError::Killed => write!(f, "sink killed (crash injection)"),
            SinkError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
        }
    }
}

impl std::error::Error for SinkError {}

/// A flat namespace of named byte blobs with explicit durability — the
/// storage abstraction the [`crate::Checkpointer`] commit protocol drives.
///
/// Contract (what [`DirSink`] guarantees and the crash model in
/// [`crate::testing`] assumes):
///
/// * `write` replaces the named blob's content, but the content may be lost
///   on a crash until `sync(name)` returns.
/// * `rename` atomically moves a blob to a new name, replacing any existing
///   blob there, and the move itself is durable once it returns.
/// * `list` returns every existing name in unspecified order.
pub trait CheckpointSink {
    /// Every existing blob name.
    fn list(&self) -> Result<Vec<String>, SinkError>;
    /// Read a whole blob.
    fn read(&self, name: &str) -> Result<Vec<u8>, SinkError>;
    /// Create or replace a blob (not yet durable).
    fn write(&mut self, name: &str, data: &[u8]) -> Result<(), SinkError>;
    /// Make a blob's content durable.
    fn sync(&mut self, name: &str) -> Result<(), SinkError>;
    /// Atomically and durably move a blob to a new name.
    fn rename(&mut self, from: &str, to: &str) -> Result<(), SinkError>;
    /// Delete a blob (no error if absent).
    fn remove(&mut self, name: &str) -> Result<(), SinkError>;
}

impl<T: CheckpointSink + ?Sized> CheckpointSink for &mut T {
    fn list(&self) -> Result<Vec<String>, SinkError> {
        (**self).list()
    }
    fn read(&self, name: &str) -> Result<Vec<u8>, SinkError> {
        (**self).read(name)
    }
    fn write(&mut self, name: &str, data: &[u8]) -> Result<(), SinkError> {
        (**self).write(name, data)
    }
    fn sync(&mut self, name: &str) -> Result<(), SinkError> {
        (**self).sync(name)
    }
    fn rename(&mut self, from: &str, to: &str) -> Result<(), SinkError> {
        (**self).rename(from, to)
    }
    fn remove(&mut self, name: &str) -> Result<(), SinkError> {
        (**self).remove(name)
    }
}

fn io_err(e: std::io::Error) -> SinkError {
    SinkError::Io(e.to_string())
}

/// A directory-backed sink: each blob is one file directly under `root`.
/// `sync` is `File::sync_all`; `rename` is `std::fs::rename` followed by a
/// best-effort fsync of the directory, which on POSIX filesystems makes the
/// rename itself durable.
#[derive(Debug)]
pub struct DirSink {
    root: PathBuf,
}

impl DirSink {
    /// Open (creating if needed) a sink over `root`.
    ///
    /// # Errors
    ///
    /// [`SinkError::Io`] if the directory cannot be created.
    pub fn new(root: impl AsRef<Path>) -> Result<Self, SinkError> {
        std::fs::create_dir_all(root.as_ref()).map_err(io_err)?;
        Ok(DirSink {
            root: root.as_ref().to_path_buf(),
        })
    }

    /// The backing directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn sync_dir(&self) {
        // Directory fsync durably commits renames on POSIX; harmless noise
        // elsewhere, so failures are deliberately ignored.
        if let Ok(d) = std::fs::File::open(&self.root) {
            let _ = d.sync_all();
        }
    }
}

impl CheckpointSink for DirSink {
    fn list(&self) -> Result<Vec<String>, SinkError> {
        let mut names = Vec::new();
        for entry in std::fs::read_dir(&self.root).map_err(io_err)? {
            let entry = entry.map_err(io_err)?;
            if entry.file_type().map_err(io_err)?.is_file() {
                if let Ok(name) = entry.file_name().into_string() {
                    names.push(name);
                }
            }
        }
        Ok(names)
    }

    fn read(&self, name: &str) -> Result<Vec<u8>, SinkError> {
        match std::fs::read(self.root.join(name)) {
            Ok(data) => Ok(data),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Err(SinkError::NotFound),
            Err(e) => Err(io_err(e)),
        }
    }

    fn write(&mut self, name: &str, data: &[u8]) -> Result<(), SinkError> {
        let mut f = std::fs::File::create(self.root.join(name)).map_err(io_err)?;
        f.write_all(data).map_err(io_err)
    }

    fn sync(&mut self, name: &str) -> Result<(), SinkError> {
        match std::fs::File::open(self.root.join(name)) {
            Ok(f) => f.sync_all().map_err(io_err),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Err(SinkError::NotFound),
            Err(e) => Err(io_err(e)),
        }
    }

    fn rename(&mut self, from: &str, to: &str) -> Result<(), SinkError> {
        match std::fs::rename(self.root.join(from), self.root.join(to)) {
            Ok(()) => {
                self.sync_dir();
                Ok(())
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Err(SinkError::NotFound),
            Err(e) => Err(io_err(e)),
        }
    }

    fn remove(&mut self, name: &str) -> Result<(), SinkError> {
        match std::fs::remove_file(self.root.join(name)) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(io_err(e)),
        }
    }
}

/// An in-memory sink where every write is immediately durable — the
/// zero-I/O backend for benchmarks, and the "surviving disk image" a
/// [`crate::testing::CrashSink`] materializes after a crash.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MemSink {
    files: BTreeMap<String, Vec<u8>>,
}

impl MemSink {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Directly install a blob (test setup / fixture mutation).
    pub fn insert(&mut self, name: impl Into<String>, data: Vec<u8>) {
        self.files.insert(name.into(), data);
    }

    /// Direct read access to a blob.
    pub fn get(&self, name: &str) -> Option<&[u8]> {
        self.files.get(name).map(|v| v.as_slice())
    }

    /// All blobs, name-ordered.
    pub fn files(&self) -> &BTreeMap<String, Vec<u8>> {
        &self.files
    }

    /// Total bytes stored across every blob.
    pub fn total_bytes(&self) -> usize {
        self.files.values().map(|v| v.len()).sum()
    }
}

impl CheckpointSink for MemSink {
    fn list(&self) -> Result<Vec<String>, SinkError> {
        Ok(self.files.keys().cloned().collect())
    }

    fn read(&self, name: &str) -> Result<Vec<u8>, SinkError> {
        self.files.get(name).cloned().ok_or(SinkError::NotFound)
    }

    fn write(&mut self, name: &str, data: &[u8]) -> Result<(), SinkError> {
        self.files.insert(name.to_string(), data.to_vec());
        Ok(())
    }

    fn sync(&mut self, _name: &str) -> Result<(), SinkError> {
        Ok(())
    }

    fn rename(&mut self, from: &str, to: &str) -> Result<(), SinkError> {
        let data = self.files.remove(from).ok_or(SinkError::NotFound)?;
        self.files.insert(to.to_string(), data);
        Ok(())
    }

    fn remove(&mut self, name: &str) -> Result<(), SinkError> {
        self.files.remove(name);
        Ok(())
    }
}
