//! Fig 13: generated search/write sequences for the 2-bit addition and a
//! conditional statement.

use hyperap_bench::header;
use hyperap_compiler::{compile, CompileOptions};
use hyperap_isa::{asm, lower};

fn main() {
    header("Fig 13a: 2-bit addition");
    let k = compile(
        "unsigned int (3) main(unsigned int (2) a, unsigned int (2) b) {
             unsigned int (3) c; c = a + b; return c;
         }",
        &CompileOptions::default(),
    )
    .unwrap();
    let c = k.op_counts();
    println!(
        "  {} searches, {} writes (paper's limit-3 example: 6S, 4W)",
        c.searches,
        c.writes()
    );
    println!("  instruction stream:");
    let stream = lower(k.program());
    for line in asm::format(&stream).lines().take(24) {
        println!("    {line}");
    }
    if stream.len() > 24 {
        println!("    ... ({} instructions total)", stream.len());
    }

    header("Fig 13b: conditional statement (both branches + select)");
    let k = compile(
        "unsigned int (1) main(unsigned int (1) a, unsigned int (4) x, unsigned int (4) y) {
             unsigned int (1) b;
             if (a == 1) { b = x > y; } else { b = x < y; }
             return b;
         }",
        &CompileOptions::default(),
    )
    .unwrap();
    let c = k.op_counts();
    println!(
        "  {} searches, {} writes; both branches evaluated, predicated select",
        c.searches,
        c.writes()
    );
}
