//! Recursive-descent parser for the C-like language.

use crate::ast::*;
use crate::lex::{lex, LexError, Spanned, Token};

/// Parse error with source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line.
    pub line: usize,
    /// Description.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError {
            line: e.line,
            message: e.message,
        }
    }
}

/// Parse a full translation unit.
///
/// # Errors
///
/// Returns [`ParseError`] on malformed input.
pub fn parse(src: &str) -> Result<Program, ParseError> {
    let tokens = lex(src)?;
    let mut p = Parser { tokens, pos: 0 };
    p.program()
}

struct Parser {
    tokens: Vec<Spanned>,
    pos: usize,
}

impl Parser {
    fn line(&self) -> usize {
        self.tokens
            .get(self.pos.min(self.tokens.len().saturating_sub(1)))
            .map(|t| t.line)
            .unwrap_or(0)
    }

    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError {
            line: self.line(),
            message: msg.into(),
        }
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|t| &t.token)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).map(|t| t.token.clone());
        self.pos += 1;
        t
    }

    fn eat_punct(&mut self, p: &str) -> bool {
        if self.check_punct(p) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn check_punct(&self, p: &str) -> bool {
        matches!(self.peek(), Some(Token::Punct(q)) if *q == p)
    }

    fn expect_punct(&mut self, p: &str) -> Result<(), ParseError> {
        if self.check_punct(p) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{p}`, found {:?}", self.peek())))
        }
    }

    fn expect_ident(&mut self) -> Result<String, ParseError> {
        match self.next() {
            Some(Token::Ident(s)) => Ok(s),
            other => Err(self.err(format!("expected identifier, found {other:?}"))),
        }
    }

    fn expect_int(&mut self) -> Result<u64, ParseError> {
        match self.next() {
            Some(Token::Int(v)) => Ok(v),
            other => Err(self.err(format!("expected integer, found {other:?}"))),
        }
    }

    fn check_ident(&self, s: &str) -> bool {
        matches!(self.peek(), Some(Token::Ident(i)) if i == s)
    }

    fn eat_ident(&mut self, s: &str) -> bool {
        if self.check_ident(s) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn program(&mut self) -> Result<Program, ParseError> {
        let mut prog = Program::default();
        while self.peek().is_some() {
            // `struct Name {` starts a definition; `struct Name ident(`
            // is a struct-returning function.
            let is_struct_def = self.check_ident("struct")
                && matches!(
                    self.tokens.get(self.pos + 2).map(|t| &t.token),
                    Some(Token::Punct("{"))
                );
            if is_struct_def {
                prog.structs.push(self.struct_def()?);
            } else {
                prog.functions.push(self.function()?);
            }
        }
        if prog.function("main").is_none() {
            return Err(self.err("program must define `main`"));
        }
        Ok(prog)
    }

    fn struct_def(&mut self) -> Result<StructDef, ParseError> {
        assert!(self.eat_ident("struct"));
        let name = self.expect_ident()?;
        self.expect_punct("{")?;
        let mut fields = Vec::new();
        while !self.check_punct("}") {
            let ty = self.type_spec()?;
            let fname = self.expect_ident()?;
            self.expect_punct(";")?;
            fields.push((fname, ty));
        }
        self.expect_punct("}")?;
        self.expect_punct(";")?;
        Ok(StructDef { name, fields })
    }

    /// `unsigned int (N)` | `int (N)` | `bool` | `struct Name` | `Name`.
    fn type_spec(&mut self) -> Result<Type, ParseError> {
        if self.eat_ident("unsigned") {
            if !self.eat_ident("int") {
                return Err(self.err("expected `int` after `unsigned`"));
            }
            self.expect_punct("(")?;
            let w = self.expect_int()? as usize;
            self.expect_punct(")")?;
            if w == 0 || w > 64 {
                return Err(self.err("bit width must be 1..=64"));
            }
            return Ok(Type::UInt(w));
        }
        if self.eat_ident("int") {
            self.expect_punct("(")?;
            let w = self.expect_int()? as usize;
            self.expect_punct(")")?;
            if w == 0 || w > 64 {
                return Err(self.err("bit width must be 1..=64"));
            }
            return Ok(Type::Int(w));
        }
        if self.eat_ident("bool") {
            return Ok(Type::Bool);
        }
        if self.eat_ident("struct") {
            return Ok(Type::Struct(self.expect_ident()?));
        }
        Err(self.err(format!("expected type, found {:?}", self.peek())))
    }

    /// Is a type specifier next? (For distinguishing decls from statements.)
    fn at_type(&self) -> bool {
        self.check_ident("unsigned")
            || self.check_ident("int")
            || self.check_ident("bool")
            || self.check_ident("struct")
    }

    fn function(&mut self) -> Result<Function, ParseError> {
        let ret = self.type_spec()?;
        let name = self.expect_ident()?;
        self.expect_punct("(")?;
        let mut params = Vec::new();
        if !self.check_punct(")") {
            loop {
                let ty = self.type_spec()?;
                let pname = self.expect_ident()?;
                params.push((ty, pname));
                if !self.eat_punct(",") {
                    break;
                }
            }
        }
        self.expect_punct(")")?;
        let body = self.block()?;
        Ok(Function {
            ret,
            name,
            params,
            body,
        })
    }

    fn block(&mut self) -> Result<Vec<Stmt>, ParseError> {
        self.expect_punct("{")?;
        let mut stmts = Vec::new();
        while !self.check_punct("}") {
            if self.peek().is_none() {
                return Err(self.err("unexpected end of input in block"));
            }
            stmts.push(self.stmt()?);
        }
        self.expect_punct("}")?;
        Ok(stmts)
    }

    fn stmt(&mut self) -> Result<Stmt, ParseError> {
        if self.eat_ident("return") {
            let e = self.expr()?;
            self.expect_punct(";")?;
            return Ok(Stmt::Return(e));
        }
        if self.eat_ident("if") {
            self.expect_punct("(")?;
            let cond = self.expr()?;
            self.expect_punct(")")?;
            let then_body = self.block()?;
            let else_body = if self.eat_ident("else") {
                if self.check_ident("if") {
                    vec![self.stmt()?]
                } else {
                    self.block()?
                }
            } else {
                Vec::new()
            };
            return Ok(Stmt::If {
                cond,
                then_body,
                else_body,
            });
        }
        if self.eat_ident("for") {
            // for (type? i = START; i < END; i += 1) — constant bounds.
            self.expect_punct("(")?;
            if self.at_type() {
                let _ = self.type_spec()?; // induction variable type (ignored)
            }
            let var = self.expect_ident()?;
            self.expect_punct("=")?;
            let start = self.expect_int()?;
            self.expect_punct(";")?;
            let v2 = self.expect_ident()?;
            if v2 != var {
                return Err(self.err("loop condition must test the induction variable"));
            }
            self.expect_punct("<")?;
            let end = self.expect_int()?;
            self.expect_punct(";")?;
            let v3 = self.expect_ident()?;
            if v3 != var {
                return Err(self.err("loop step must update the induction variable"));
            }
            // Accept `i += 1` or `i = i + 1`.
            if self.eat_punct("+=") {
                let step = self.expect_int()?;
                if step != 1 {
                    return Err(self.err("only unit-stride loops are supported"));
                }
            } else {
                self.expect_punct("=")?;
                let v4 = self.expect_ident()?;
                self.expect_punct("+")?;
                let one = self.expect_int()?;
                if v4 != var || one != 1 {
                    return Err(self.err("only `i = i + 1` steps are supported"));
                }
            }
            self.expect_punct(")")?;
            let body = self.block()?;
            return Ok(Stmt::For {
                var,
                start,
                end,
                body,
            });
        }
        if self.at_type() {
            let ty = self.type_spec()?;
            let name = self.expect_ident()?;
            let init = if self.eat_punct("=") {
                Some(self.expr()?)
            } else {
                None
            };
            self.expect_punct(";")?;
            return Ok(Stmt::Decl { ty, name, init });
        }
        // Assignment.
        let name = self.expect_ident()?;
        let target = if self.eat_punct(".") {
            let field = self.expect_ident()?;
            LValue::Member(name.clone(), field)
        } else {
            LValue::Var(name.clone())
        };
        let target_expr = match &target {
            LValue::Var(v) => Expr::Var(v.clone()),
            LValue::Member(b, f) => Expr::Member(Box::new(Expr::Var(b.clone())), f.clone()),
        };
        const COMPOUND: &[(&str, BinOp)] = &[
            ("+=", BinOp::Add),
            ("-=", BinOp::Sub),
            ("*=", BinOp::Mul),
            ("/=", BinOp::Div),
            ("%=", BinOp::Rem),
            ("&=", BinOp::And),
            ("|=", BinOp::Or),
            ("^=", BinOp::Xor),
            ("<<=", BinOp::Shl),
            (">>=", BinOp::Shr),
        ];
        for (punct, op) in COMPOUND {
            if self.eat_punct(punct) {
                let rhs = self.expr()?;
                self.expect_punct(";")?;
                return Ok(Stmt::Assign {
                    target,
                    value: Expr::Bin(*op, Box::new(target_expr), Box::new(rhs)),
                });
            }
        }
        self.expect_punct("=")?;
        let value = self.expr()?;
        self.expect_punct(";")?;
        Ok(Stmt::Assign { target, value })
    }

    fn expr(&mut self) -> Result<Expr, ParseError> {
        self.binary(0)
    }

    fn binary(&mut self, min_prec: u8) -> Result<Expr, ParseError> {
        let mut lhs = self.unary()?;
        while let Some(Token::Punct(p)) = self.peek() {
            let Some((op, prec)) = bin_op(p) else { break };
            if prec < min_prec {
                break;
            }
            self.pos += 1;
            let rhs = self.binary(prec + 1)?;
            lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, ParseError> {
        if self.eat_punct("~") {
            return Ok(Expr::Un(UnOp::Not, Box::new(self.unary()?)));
        }
        if self.eat_punct("!") {
            return Ok(Expr::Un(UnOp::LNot, Box::new(self.unary()?)));
        }
        if self.eat_punct("-") {
            return Ok(Expr::Un(UnOp::Neg, Box::new(self.unary()?)));
        }
        self.postfix()
    }

    fn postfix(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.primary()?;
        while self.eat_punct(".") {
            let field = self.expect_ident()?;
            e = Expr::Member(Box::new(e), field);
        }
        Ok(e)
    }

    fn primary(&mut self) -> Result<Expr, ParseError> {
        match self.next() {
            Some(Token::Int(v)) => Ok(Expr::Lit(v)),
            Some(Token::Ident(name)) => {
                if self.check_punct("(") {
                    self.pos += 1;
                    let mut args = Vec::new();
                    if !self.check_punct(")") {
                        loop {
                            args.push(self.expr()?);
                            if !self.eat_punct(",") {
                                break;
                            }
                        }
                    }
                    self.expect_punct(")")?;
                    Ok(Expr::Call(name, args))
                } else {
                    Ok(Expr::Var(name))
                }
            }
            Some(Token::Punct("(")) => {
                let e = self.expr()?;
                self.expect_punct(")")?;
                Ok(e)
            }
            other => Err(self.err(format!("expected expression, found {other:?}"))),
        }
    }
}

/// Operator → (BinOp, precedence). Higher binds tighter.
fn bin_op(p: &str) -> Option<(BinOp, u8)> {
    Some(match p {
        "||" => (BinOp::LOr, 1),
        "&&" => (BinOp::LAnd, 2),
        "|" => (BinOp::Or, 3),
        "^" => (BinOp::Xor, 4),
        "&" => (BinOp::And, 5),
        "==" => (BinOp::Eq, 6),
        "!=" => (BinOp::Ne, 6),
        "<" => (BinOp::Lt, 7),
        "<=" => (BinOp::Le, 7),
        ">" => (BinOp::Gt, 7),
        ">=" => (BinOp::Ge, 7),
        "<<" => (BinOp::Shl, 8),
        ">>" => (BinOp::Shr, 8),
        "+" => (BinOp::Add, 9),
        "-" => (BinOp::Sub, 9),
        "*" => (BinOp::Mul, 10),
        "/" => (BinOp::Div, 10),
        "%" => (BinOp::Rem, 10),
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_fig8_program() {
        let src = "
            // A program that adds two 5-bit variables
            unsigned int (6) main (unsigned int (5) a, unsigned int (5) b) {
                unsigned int (6) c;
                c = a + b;
                return c;
            }";
        let prog = parse(src).unwrap();
        let main = prog.function("main").unwrap();
        assert_eq!(main.ret, Type::UInt(6));
        assert_eq!(main.params.len(), 2);
        assert_eq!(main.body.len(), 3);
    }

    #[test]
    fn parses_precedence() {
        let prog =
            parse("unsigned int (8) main(unsigned int (8) a) { return a + a * a; }").unwrap();
        let Stmt::Return(Expr::Bin(BinOp::Add, _, rhs)) = &prog.functions[0].body[0] else {
            panic!("expected a + (a * a)");
        };
        assert!(matches!(**rhs, Expr::Bin(BinOp::Mul, _, _)));
    }

    #[test]
    fn parses_if_else_and_for() {
        let src = "
            unsigned int (8) main(unsigned int (8) a) {
                unsigned int (8) s;
                s = 0;
                for (i = 0; i < 4; i += 1) {
                    s = s + a;
                }
                if (s > 10) { s = 10; } else { s = s + 1; }
                return s;
            }";
        let prog = parse(src).unwrap();
        assert!(matches!(
            prog.functions[0].body[2],
            Stmt::For {
                start: 0,
                end: 4,
                ..
            }
        ));
        assert!(matches!(prog.functions[0].body[3], Stmt::If { .. }));
    }

    #[test]
    fn parses_structs_and_members() {
        let src = "
            struct pixel { unsigned int (8) r; unsigned int (8) g; };
            unsigned int (9) main(struct pixel p) {
                p.r = p.r + 1;
                return p.r + p.g;
            }";
        let prog = parse(src).unwrap();
        assert_eq!(prog.structs[0].fields.len(), 2);
        assert!(matches!(
            prog.functions[0].body[0],
            Stmt::Assign {
                target: LValue::Member(..),
                ..
            }
        ));
    }

    #[test]
    fn desugars_compound_assignment() {
        let prog =
            parse("unsigned int (8) main(unsigned int (8) a) { a += 3; return a; }").unwrap();
        let Stmt::Assign { value, .. } = &prog.functions[0].body[0] else {
            panic!();
        };
        assert!(matches!(value, Expr::Bin(BinOp::Add, _, _)));
    }

    #[test]
    fn requires_main() {
        let err = parse("unsigned int (4) foo() { return 1; }").unwrap_err();
        assert!(err.to_string().contains("main"));
    }

    #[test]
    fn rejects_zero_width() {
        assert!(parse("unsigned int (0) main() { return 0; }").is_err());
    }

    #[test]
    fn parses_builtin_calls() {
        let prog = parse("unsigned int (8) main(unsigned int (16) a) { return sqrt(a); }").unwrap();
        let Stmt::Return(Expr::Call(name, args)) = &prog.functions[0].body[0] else {
            panic!();
        };
        assert_eq!(name, "sqrt");
        assert_eq!(args.len(), 1);
    }
}
