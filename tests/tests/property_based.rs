//! Property-based cross-crate tests: randomly generated straight-line
//! programs compile and execute identically to the DFG interpreter (which
//! is itself unit-tested against Rust semantics).

use hyperap_compiler::{compile, CompileOptions};
use proptest::prelude::*;

/// Build a random expression source over two inputs with the cheap
/// (LUT-mapped) operators.
fn expr(depth: u32, rng: &mut impl Iterator<Item = u8>) -> String {
    if depth == 0 {
        return match rng.next().unwrap() % 3 {
            0 => "a".to_string(),
            1 => "b".to_string(),
            _ => format!("{}", rng.next().unwrap() % 16),
        };
    }
    let lhs = expr(depth - 1, rng);
    let rhs = expr(depth - 1, rng);
    let op = match rng.next().unwrap() % 7 {
        0 => "+",
        1 => "-",
        2 => "&",
        3 => "|",
        4 => "^",
        5 => ">>",
        _ => "<<",
    };
    if op == ">>" || op == "<<" {
        format!("(({lhs}) {op} {})", rng.next().unwrap() % 3)
    } else {
        format!("(({lhs}) {op} ({rhs}))")
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]
    #[test]
    fn random_programs_match_the_interpreter(
        seed in prop::collection::vec(any::<u8>(), 64),
        inputs in prop::collection::vec((0u64..256, 0u64..256), 3),
    ) {
        let mut it = seed.into_iter().cycle();
        let body = expr(3, &mut it);
        let src = format!(
            "unsigned int (8) main(unsigned int (8) a, unsigned int (8) b) {{ return {body}; }}"
        );
        let kernel = compile(&src, &CompileOptions::default()).unwrap();
        for &(a, b) in &inputs {
            let expected = kernel.dfg.eval(&[a, b])[0];
            let got = kernel.run_rows(&[&[a, b]]).unwrap()[0];
            prop_assert_eq!(got, expected, "src: {}, a={}, b={}", src, a, b);
        }
    }

    #[test]
    fn merging_and_embedding_preserve_semantics(
        a in 0u64..256, b in 0u64..256, k in 0u64..64,
    ) {
        let src = format!(
            "unsigned int (9) main(unsigned int (8) a, unsigned int (8) b) {{
                 unsigned int (9) t;
                 t = (a & b) + (a ^ b) + {k};
                 return t;
             }}"
        );
        for opts in [
            CompileOptions::default(),
            CompileOptions { enable_merging: false, ..Default::default() },
            CompileOptions { enable_embedding: false, ..Default::default() },
            CompileOptions { pair_inputs: false, ..Default::default() },
            CompileOptions::cmos(),
        ] {
            let kernel = compile(&src, &opts).unwrap();
            let got = kernel.run_rows(&[&[a, b]]).unwrap()[0];
            prop_assert_eq!(got, ((a & b) + (a ^ b) + k) & 0x1FF);
        }
    }

    #[test]
    fn microcode_arithmetic_matches_u64(
        a in 0u64..65536, b in 1u64..65536,
    ) {
        use hyperap_core::machine::HyperPe;
        use hyperap_core::microcode::Microcode;
        let mut mc = Microcode::new(256);
        let fa = mc.alloc_plain_input("a", 16);
        let fb = mc.alloc_plain_input("b", 16);
        let sum = mc.add(&fa, &fb);
        let (q, r) = mc.div_rem_fused(&fa, &fb);
        let sq = mc.isqrt(&fa);
        let mut pe = HyperPe::new(1, 256);
        fa.store(&mut pe, 0, a);
        fb.store(&mut pe, 0, b);
        mc.program().run(&mut pe);
        prop_assert_eq!(sum.read(&pe, 0), a + b);
        prop_assert_eq!(q.read(&pe, 0), a / b);
        prop_assert_eq!(r.read(&pe, 0), a % b);
        prop_assert_eq!(sq.read(&pe, 0), (a as f64).sqrt().floor() as u64);
    }
}
