//! Kernel-level golden counts: the add32 and mul16 synthetic kernels'
//! per-pass operation mixes and Table-I cycle totals are frozen here.
//! Microcode, peephole, or timing changes that shift these numbers are
//! fine only when intentional — update the constants alongside the
//! EXPERIMENTS.md figures they feed.

use hyperap_baselines::reference::OpKind;
use hyperap_model::TechParams;
use hyperap_workloads::synthetic::measure_op;

#[test]
fn add32_op_mix_and_cycles_are_frozen() {
    let c = measure_op(OpKind::Add, 32);
    assert_eq!(c.searches, 126, "add32 searches drifted");
    assert_eq!(c.set_keys, 126, "add32 set_keys drifted");
    assert_eq!(c.writes_single, 64, "add32 single writes drifted");
    assert_eq!(c.writes_encoded, 0, "add32 encoded writes drifted");
    assert_eq!(c.tag_ops, 0, "add32 tag ops drifted");
    assert_eq!(
        c.cycles(&TechParams::rram()),
        1020,
        "add32 RRAM cycles drifted"
    );
    assert_eq!(
        c.cycles(&TechParams::cmos()),
        444,
        "add32 CMOS cycles drifted"
    );
}

#[test]
fn mul16_op_mix_and_cycles_are_frozen() {
    let c = measure_op(OpKind::Mul, 16);
    assert_eq!(c.searches, 787, "mul16 searches drifted");
    assert_eq!(c.set_keys, 787, "mul16 set_keys drifted");
    assert_eq!(c.writes_single, 66, "mul16 single writes drifted");
    assert_eq!(c.writes_encoded, 72, "mul16 encoded writes drifted");
    assert_eq!(c.tag_ops, 23, "mul16 tag ops drifted");
    assert_eq!(
        c.cycles(&TechParams::rram()),
        4045,
        "mul16 RRAM cycles drifted"
    );
    assert_eq!(
        c.cycles(&TechParams::cmos()),
        2155,
        "mul16 CMOS cycles drifted"
    );
}

#[test]
fn kernel_streams_bill_exactly_their_op_counts() {
    // The lowered Table-I stream must carry the same instruction mix the
    // microcode reports — the golden counts above then also pin the
    // architectural engines' per-PE op accounting.
    for (op, width) in [(OpKind::Add, 32), (OpKind::Mul, 16)] {
        let bench = hyperap_workloads::synthetic::build(op, width);
        let counts = bench.op_counts();
        let stream = bench.stream();
        let searches = stream
            .iter()
            .filter(|i| matches!(i, hyperap_isa::Instruction::Search { .. }))
            .count() as u64;
        let writes = stream
            .iter()
            .filter(|i| matches!(i, hyperap_isa::Instruction::Write { .. }))
            .count() as u64;
        assert_eq!(searches, counts.searches, "{op:?}{width} stream searches");
        assert_eq!(writes, counts.writes(), "{op:?}{width} stream writes");
    }
}
