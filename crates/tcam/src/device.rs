//! Device-level 2D2R crossbar TCAM model (Fig 3, Fig 7).
//!
//! This model represents each TCAM bit as two 1D1R cells (one bidirectional
//! diode in series with one RRAM element) placed in *two separate crossbar
//! arrays* — the paper's logical-unified-physical-separated design (§IV-B)
//! that lets both cells of a bit be written in parallel. Searching drives the
//! search lines from the key/mask registers, evaluates per-match-line
//! discharge currents, and senses them; writing applies the V/3 scheme.
//!
//! It is deliberately slower than [`crate::array::TcamArray`]; its purpose is
//! to validate the functional model (see the equivalence property tests) and
//! to expose device-level observability (discharge current counts, half-
//! selected cell counts for the V/3 scheme).

use crate::bit::{KeyBit, TernaryBit};
use crate::key::SearchKey;
use crate::tags::TagVector;
use hyperap_model::tech::RramDevice;
use serde::{Deserialize, Serialize};

/// Resistance state of one RRAM element.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Resistance {
    /// Low-resistance (SET) state — conducts when selected.
    Low,
    /// High-resistance (RESET) state.
    High,
}

/// One crossbar array of 1D1R cells: `rows` match lines × `cols` search lines.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CrossbarArray {
    rows: usize,
    cols: usize,
    /// Row-major cell resistance states.
    cells: Vec<Resistance>,
}

/// Voltage applied to a search line during a search (paper: `VH` or `VL`,
/// with match lines precharged to `Vpre ≈ VH > VL`; only `Vpre − VL` can turn
/// the diode on).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlDrive {
    /// High voltage — the diode stays off regardless of cell state.
    High,
    /// Low voltage — the diode turns on if the cell is low-resistance.
    Low,
}

impl CrossbarArray {
    /// New array with all cells in the high-resistance state.
    pub fn new(rows: usize, cols: usize) -> Self {
        CrossbarArray {
            rows,
            cols,
            cells: vec![Resistance::High; rows * cols],
        }
    }

    /// Cell state at (`row`, `col`).
    pub fn cell(&self, row: usize, col: usize) -> Resistance {
        self.cells[row * self.cols + col]
    }

    /// Program one cell (a full SET/RESET pulse).
    pub fn program(&mut self, row: usize, col: usize, r: Resistance) {
        self.cells[row * self.cols + col] = r;
    }

    /// Evaluate one search: for each match line, count conducting cells
    /// (diode on because its SL is driven low *and* the RRAM is LRS).
    ///
    /// A match line with zero conducting cells keeps its precharge (match);
    /// any conducting cell discharges it (mismatch) — Fig 3b.
    pub fn discharge_counts(&self, drives: &[SlDrive]) -> Vec<u32> {
        assert_eq!(drives.len(), self.cols, "one drive per search line");
        (0..self.rows)
            .map(|r| {
                (0..self.cols)
                    .filter(|&c| {
                        matches!(drives[c], SlDrive::Low) && self.cell(r, c) == Resistance::Low
                    })
                    .count() as u32
            })
            .collect()
    }
}

/// A device-level TCAM of `rows` words × `cols` TCAM bits, built from two
/// crossbar arrays (Fig 7a): array 0 holds the "search-for-1" cell of every
/// bit, array 1 holds the "search-for-0" cell.
///
/// Cell mapping for a stored bit (standard 2D2R TCAM encoding):
///
/// | stored | array0 cell (checked by key=1) | array1 cell (checked by key=0) |
/// |---|---|---|
/// | `0` | LRS (mismatch on key 1) | HRS |
/// | `1` | HRS | LRS (mismatch on key 0) |
/// | `X` | HRS | HRS (never mismatches) |
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceTcam {
    rows: usize,
    cols: usize,
    array0: CrossbarArray,
    array1: CrossbarArray,
    device: RramDevice,
    cell_writes: u64,
    /// Per-bit stuck faults (row-major): `Some(v)` freezes the RRAM pair so
    /// the bit permanently reads `v`; programming pulses still count toward
    /// [`cell_writes`](Self::cell_writes) but no longer change resistance.
    stuck: Vec<Option<bool>>,
}

impl DeviceTcam {
    /// New device TCAM with every bit initialized to stored `0`.
    pub fn new(rows: usize, cols: usize) -> Self {
        let mut t = DeviceTcam {
            rows,
            cols,
            array0: CrossbarArray::new(rows, cols),
            array1: CrossbarArray::new(rows, cols),
            device: RramDevice::default(),
            cell_writes: 0,
            stuck: vec![None; rows * cols],
        };
        for r in 0..rows {
            for c in 0..cols {
                t.program_bit(r, c, TernaryBit::Zero);
            }
        }
        t.cell_writes = 0;
        t
    }

    /// Number of word rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of TCAM bit columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// RRAM device characteristics used by this model.
    pub fn device(&self) -> &RramDevice {
        &self.device
    }

    /// Total RRAM cell programming pulses issued so far (both arrays).
    ///
    /// Because the two arrays have independent write circuits, two pulses to
    /// the same (row, col) in different arrays count as *one* write time slot
    /// in the dual-crossbar design, but still as two cell writes for
    /// endurance accounting.
    pub fn cell_writes(&self) -> u64 {
        self.cell_writes
    }

    /// Freeze a bit at `value` (forming failure / oxide breakdown): the pair
    /// is reprogrammed one last time to read `value`, and every later
    /// programming pulse leaves the resistance unchanged. This is the
    /// device-level realization of [`crate::fault::FaultModel`]'s stuck-at
    /// cells; the equivalence test below pins the two models together.
    pub fn mark_stuck(&mut self, row: usize, col: usize, value: bool) {
        self.stuck[row * self.cols + col] = None;
        let bit = if value {
            TernaryBit::One
        } else {
            TernaryBit::Zero
        };
        self.program_bit(row, col, bit);
        self.cell_writes -= 2;
        self.stuck[row * self.cols + col] = Some(value);
    }

    fn program_bit(&mut self, row: usize, col: usize, value: TernaryBit) {
        // A stuck pair still receives the pulses (the write driver cannot
        // tell), but its resistance no longer moves.
        self.cell_writes += 2;
        if self.stuck[row * self.cols + col].is_some() {
            return;
        }
        let (a0, a1) = match value {
            TernaryBit::Zero => (Resistance::Low, Resistance::High),
            TernaryBit::One => (Resistance::High, Resistance::Low),
            TernaryBit::X => (Resistance::High, Resistance::High),
        };
        self.array0.program(row, col, a0);
        self.array1.program(row, col, a1);
    }

    /// Read back the stored ternary value of a bit.
    ///
    /// # Panics
    ///
    /// Panics if the cell pair holds the unused code (both LRS).
    pub fn read_bit(&self, row: usize, col: usize) -> TernaryBit {
        match (self.array0.cell(row, col), self.array1.cell(row, col)) {
            (Resistance::Low, Resistance::High) => TernaryBit::Zero,
            (Resistance::High, Resistance::Low) => TernaryBit::One,
            (Resistance::High, Resistance::High) => TernaryBit::X,
            (Resistance::Low, Resistance::Low) => {
                panic!("invalid TCAM code (both cells LRS) at ({row},{col})")
            }
        }
    }

    /// Store a word via direct programming (host load path).
    pub fn store_word(&mut self, row: usize, word: &[TernaryBit]) {
        for (col, b) in word.iter().enumerate() {
            self.program_bit(row, col, *b);
        }
    }

    /// Search: derive per-array search-line drives from the key, evaluate
    /// match-line discharge, AND the two arrays' sensing results (§IV-B:
    /// "The sensing results from the two crossbar arrays are ANDed").
    pub fn search(&self, key: &SearchKey) -> TagVector {
        // Array 0 checks "stored is 0" cells: drive low on key bits that
        // would mismatch a stored 0, i.e. key == 1 or key == Z.
        let drives0: Vec<SlDrive> = (0..self.cols)
            .map(|c| match key.bit(c) {
                KeyBit::One | KeyBit::Z => SlDrive::Low,
                _ => SlDrive::High,
            })
            .collect();
        // Array 1 checks "stored is 1" cells: key == 0 or key == Z.
        let drives1: Vec<SlDrive> = (0..self.cols)
            .map(|c| match key.bit(c) {
                KeyBit::Zero | KeyBit::Z => SlDrive::Low,
                _ => SlDrive::High,
            })
            .collect();
        let d0 = self.array0.discharge_counts(&drives0);
        let d1 = self.array1.discharge_counts(&drives1);
        let mut tags = TagVector::zeros(self.rows);
        for r in 0..self.rows {
            // Sense amplifier: ML retains precharge (match) iff no cell
            // conducts; final tag = AND of the two arrays' senses.
            if d0[r] == 0 && d1[r] == 0 {
                tags.set(r, true);
            }
        }
        tags
    }

    /// Associative write with the V/3 scheme: program the unmasked columns of
    /// every tagged row. Both arrays are written in parallel (the
    /// dual-crossbar optimization), so latency per bit is one pulse.
    pub fn write(&mut self, key: &SearchKey, tags: &TagVector) {
        assert_eq!(tags.len(), self.rows, "tag/row count mismatch");
        for col in key.active_columns() {
            if col >= self.cols {
                continue;
            }
            let value = key.bit(col).write_value().expect("active column");
            for row in tags.iter_set() {
                self.program_bit(row, col, value);
            }
        }
    }

    /// Number of half-selected cells during a V/3 write of `n_tagged` rows in
    /// one column: cells sharing the selected column or a selected row see
    /// V/3 stress; all others see ±V/3 or 0 (Fig 3c). Used to verify the
    /// scheme keeps sneak-path leakage bounded in tests.
    pub fn half_selected_cells(&self, n_tagged: usize) -> usize {
        // Selected column: (rows - tagged) unselected cells see 2V/3? No —
        // under V/3 biasing, cells on the selected column but unselected rows
        // and cells on selected rows but unselected columns see V/3.
        (self.rows - n_tagged) + n_tagged * (self.cols - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::array::TcamArray;
    use crate::bit::word_from_str;

    #[test]
    fn read_back_programmed_bits() {
        let mut t = DeviceTcam::new(2, 3);
        t.store_word(0, &word_from_str("1X0").unwrap());
        assert_eq!(t.read_bit(0, 0), TernaryBit::One);
        assert_eq!(t.read_bit(0, 1), TernaryBit::X);
        assert_eq!(t.read_bit(0, 2), TernaryBit::Zero);
    }

    #[test]
    fn match_case_has_no_discharge_mismatch_does() {
        // Fig 3b: top ML (match) has only a small (zero in our model)
        // discharge; bottom ML (mismatch) discharges.
        let mut t = DeviceTcam::new(2, 2);
        t.store_word(0, &word_from_str("10").unwrap());
        t.store_word(1, &word_from_str("01").unwrap());
        let tags = t.search(&SearchKey::parse("10").unwrap());
        assert!(tags.get(0));
        assert!(!tags.get(1));
    }

    #[test]
    fn device_matches_functional_model_exhaustive_small() {
        // Every stored value in {0,1,X}^2 against every key in {0,1,Z,-}^2.
        let stored_values = [TernaryBit::Zero, TernaryBit::One, TernaryBit::X];
        for s0 in stored_values {
            for s1 in stored_values {
                let mut dev = DeviceTcam::new(1, 2);
                let mut fun = TcamArray::new(1, 2);
                dev.store_word(0, &[s0, s1]);
                fun.store_word(0, &[s0, s1]);
                for k0 in KeyBit::ALL {
                    for k1 in KeyBit::ALL {
                        let key = SearchKey::from_bits(vec![k0, k1]);
                        assert_eq!(
                            dev.search(&key).get(0),
                            fun.search(&key).get(0),
                            "stored {s0}{s1} key {key}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn write_programs_tagged_rows_only() {
        let mut t = DeviceTcam::new(3, 2);
        let tags = TagVector::from_bools([true, false, true]);
        t.write(&SearchKey::parse("1Z").unwrap(), &tags);
        assert_eq!(t.read_bit(0, 0), TernaryBit::One);
        assert_eq!(t.read_bit(0, 1), TernaryBit::X);
        assert_eq!(t.read_bit(1, 0), TernaryBit::Zero);
        assert_eq!(t.read_bit(2, 1), TernaryBit::X);
    }

    #[test]
    fn cell_write_accounting() {
        let mut t = DeviceTcam::new(2, 2);
        assert_eq!(t.cell_writes(), 0);
        let tags = TagVector::ones(2);
        t.write(&SearchKey::parse("1-").unwrap(), &tags);
        // One column × two rows × two arrays = 4 cell pulses.
        assert_eq!(t.cell_writes(), 4);
    }

    #[test]
    fn half_selected_count_is_linear() {
        let t = DeviceTcam::new(256, 256);
        assert_eq!(t.half_selected_cells(1), 255 + 255);
        assert!(t.half_selected_cells(256) > t.half_selected_cells(1));
    }

    #[test]
    fn stuck_bits_ignore_programming_but_count_pulses() {
        let mut t = DeviceTcam::new(2, 2);
        t.mark_stuck(0, 1, true);
        assert_eq!(t.read_bit(0, 1), TernaryBit::One);
        let pulses = t.cell_writes();
        t.store_word(0, &word_from_str("XX").unwrap());
        assert_eq!(t.read_bit(0, 0), TernaryBit::X, "healthy bit programs");
        assert_eq!(t.read_bit(0, 1), TernaryBit::One, "stuck bit does not");
        assert_eq!(t.cell_writes(), pulses + 4, "pulses are still issued");
    }

    /// The device overlay and the functional [`FaultModel`] describe the
    /// same silicon: seeding the overlay from `stuck_at` makes the two
    /// models agree bit-for-bit through host loads, associative writes,
    /// and searches.
    #[test]
    fn stuck_overlay_matches_functional_fault_model() {
        use crate::fault::FaultModel;

        let model = FaultModel {
            seed: 7,
            stuck_per_million: 120_000,
            miss_per_million: 0,
            endurance_limit: None,
        };
        let (rows, cols, pe) = (9, 7, 3);
        let mut dev = DeviceTcam::new(rows, cols);
        let mut fun = TcamArray::new(rows, cols);
        fun.attach_fault(model, 0, pe);
        let mut any = false;
        for row in 0..rows {
            for col in 0..cols {
                if let Some(v) = model.stuck_at(pe, col, row) {
                    dev.mark_stuck(row, col, v);
                    any = true;
                }
            }
        }
        assert!(any, "12% stuck rate must hit a 9x7 array");
        let check = |dev: &DeviceTcam, fun: &TcamArray, when: &str| {
            for row in 0..rows {
                for col in 0..cols {
                    assert_eq!(
                        dev.read_bit(row, col),
                        fun.cell(row, col),
                        "({row},{col}) {when}"
                    );
                }
            }
        };
        check(&dev, &fun, "after attach");
        for row in 0..rows {
            let word: Vec<TernaryBit> = (0..cols)
                .map(|c| match (row + 2 * c) % 3 {
                    0 => TernaryBit::Zero,
                    1 => TernaryBit::One,
                    _ => TernaryBit::X,
                })
                .collect();
            dev.store_word(row, &word);
            for (c, b) in word.iter().enumerate() {
                fun.set_cell(row, c, *b);
            }
        }
        check(&dev, &fun, "after host load");
        let key = SearchKey::parse("10-1Z--").unwrap();
        assert_eq!(dev.search(&key), fun.search(&key), "search under faults");
        let wkey = SearchKey::parse("-01----").unwrap();
        let tags = fun.search(&key);
        dev.write(&wkey, &tags);
        fun.write(&wkey, &tags);
        check(&dev, &fun, "after associative write");
    }

    #[test]
    fn new_device_is_all_zero() {
        let t = DeviceTcam::new(2, 2);
        for r in 0..2 {
            for c in 0..2 {
                assert_eq!(t.read_bit(r, c), TernaryBit::Zero);
            }
        }
    }
}
