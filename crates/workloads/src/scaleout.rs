//! Scale-out execution: run a compiled kernel over many elements spread
//! across the PE hierarchy, including MovR-based neighbor exchange for
//! stencil kernels (the §IV-B / §VI-D communication story).
//!
//! One element occupies one SIMD slot; elements are laid out row-major
//! across (PE, row). Stencil kernels receive their left/right neighbors
//! through the data-register mesh: the halo columns are filled by the
//! [`hyperap_arch::transfer::column_transfer`] idiom before the compute
//! stream runs, and the whole machine is driven by Table-I instructions
//! only.

use hyperap_arch::transfer::column_transfer;
use hyperap_arch::{ApMachine, ArchConfig, SlabMachine};
use hyperap_ckpt::{CheckpointSink, Checkpointer, CkptError};
use hyperap_compiler::CompiledKernel;
use hyperap_core::Field;
use hyperap_isa::{lower, Direction, Instruction};
use hyperap_model::timing::OpCounts;

/// Result of a scale-out run.
#[derive(Debug, Clone)]
pub struct ScaleOutRun {
    /// Outputs per element (first output field), element order.
    pub outputs: Vec<u64>,
    /// Machine cycles (makespan across groups).
    pub cycles: u64,
    /// SIMD-level operation counts of group 0.
    pub ops: OpCounts,
}

/// Execute `kernel` for `elements` (tuples of scalar inputs) spread across
/// the machine; all PEs run the same stream (one group).
///
/// # Panics
///
/// Panics if the machine is too small for the element count.
pub fn run_elementwise(
    kernel: &CompiledKernel,
    config: ArchConfig,
    elements: &[Vec<u64>],
) -> ScaleOutRun {
    let rows = config.rows;
    let slots = config.total_pes() * rows;
    assert!(
        elements.len() <= slots,
        "{} elements > {slots} slots",
        elements.len()
    );
    let mut machine = ApMachine::new(config);
    for (e, tuple) in elements.iter().enumerate() {
        let (pe, row) = (e / rows, e % rows);
        for (field, &v) in kernel.input_fields().iter().zip(tuple) {
            field.store(machine.pe_mut(pe), row, v);
        }
    }
    let stream = lower(kernel.program());
    let stats = machine.run(&[stream]);
    let out_field = &kernel.output_fields()[0];
    let outputs = (0..elements.len())
        .map(|e| out_field.read(machine.pe(e / rows), e % rows))
        .collect();
    ScaleOutRun {
        outputs,
        cycles: stats.makespan(),
        ops: stats.group_ops[0],
    }
}

/// A 1-D three-point stencil over `values`, computed fully in-memory:
/// `out[i] = (left + 2·center + right) >> 2` with zero boundaries.
///
/// The per-element kernel gets its `left` input via a MovR column transfer
/// between *rows of adjacent PEs is not needed* — within one PE the
/// neighbor lives one row over, which the data-register path reaches with
/// ReadTag/SetTag shifted loads; across PE boundaries the halo moves over
/// the mesh. For clarity and full Table-I fidelity this implementation
/// keeps one element per PE (the halo is exactly one `column_transfer` per
/// direction) — the geometry the paper's local-interface numbers describe.
pub fn stencil_1d(values: &[u64], width: u8) -> ScaleOutRun {
    // One element per PE, all PEs in one group.
    let n = values.len();
    let config = ArchConfig {
        groups: 1,
        banks_per_group: 1,
        subarrays_per_bank: 1,
        pes_per_subarray: n,
        rows: 1,
        cols: 64,
        tech: hyperap_model::TechParams::rram(),
        mesh: Some((1, n)), // a 1-D chain of PEs
        exec: Default::default(),
        faults: Default::default(),
    };
    let mut machine = ApMachine::new(config);
    let w = width as usize;
    // Layout: center at columns [0, w); left halo at [w, 2w); right halo at
    // [2w, 3w); output at [3w, 4w + 2).
    for (pe, &v) in values.iter().enumerate() {
        for b in 0..w {
            machine.pe_mut(pe).load_bit(0, b, v >> b & 1 == 1);
        }
    }
    // Halo exchange: each center column moves to the right neighbor's
    // left-halo column and the left neighbor's right-halo column.
    let mut stream: Vec<Instruction> = Vec::new();
    let (_, mesh_w) = machine.config().mesh_dims();
    assert!(mesh_w >= n, "1-D stencil expects a single mesh row");
    for b in 0..w {
        stream.extend(column_transfer(
            b as u8,
            (w + b) as u8,
            Direction::Right,
            64,
        ));
        stream.extend(column_transfer(
            b as u8,
            (2 * w + b) as u8,
            Direction::Left,
            64,
        ));
    }
    // Compute stream: out = (left + 2*center + right) >> 2, built by the
    // microcode on a matching layout.
    let mut mc = hyperap_core::microcode::Microcode::new(64);
    let center = mc.alloc_plain_input("center", w);
    let left = mc.alloc_plain_input("left", w);
    let right = mc.alloc_plain_input("right", w);
    // The allocator hands out columns in order, matching the layout above.
    assert_eq!(center.slot(0).base_col(), 0);
    assert_eq!(left.slot(0).base_col(), w);
    assert_eq!(right.slot(0).base_col(), 2 * w);
    let center2 = mc.shl(&center, 1, w + 1);
    let s1 = mc.add(&left, &center2);
    let s2 = mc.add(&s1, &right);
    let out = mc.shr(&s2, 2);
    let prog = mc.into_program();
    stream.extend(lower(&prog));
    let stats = machine.run(&[stream]);
    let outputs = (0..n).map(|pe| out.read(machine.pe(pe), 0)).collect();
    ScaleOutRun {
        outputs,
        cycles: stats.makespan(),
        ops: stats.group_ops[0],
    }
}

/// The shared per-shard stencil recipe: column layout, halo-exchange and
/// compute streams, and the output field — identical for every shard, so a
/// shard checkpoint written by one process restores into any other.
struct StencilPlan {
    halo: Vec<Instruction>,
    compute: Vec<Instruction>,
    out: Field,
    w: usize,
}

impl StencilPlan {
    fn new(width: u8) -> Self {
        let w = width as usize;
        let mut stream: Vec<Instruction> = Vec::new();
        for b in 0..w {
            stream.extend(column_transfer(
                b as u8,
                (w + b) as u8,
                Direction::Right,
                64,
            ));
            stream.extend(column_transfer(
                b as u8,
                (2 * w + b) as u8,
                Direction::Left,
                64,
            ));
        }
        let mut mc = hyperap_core::microcode::Microcode::new(64);
        let center = mc.alloc_plain_input("center", w);
        let left = mc.alloc_plain_input("left", w);
        let right = mc.alloc_plain_input("right", w);
        assert_eq!(center.slot(0).base_col(), 0);
        assert_eq!(left.slot(0).base_col(), w);
        assert_eq!(right.slot(0).base_col(), 2 * w);
        let center2 = mc.shl(&center, 1, w + 1);
        let s1 = mc.add(&left, &center2);
        let s2 = mc.add(&s1, &right);
        let out = mc.shr(&s2, 2);
        let prog = mc.into_program();
        StencilPlan {
            halo: stream,
            compute: lower(&prog),
            out,
            w,
        }
    }

    /// The machine for one shard of `ns` contiguous elements: a 1-D chain
    /// of `ns` PEs, matching the [`stencil_1d`] geometry.
    fn shard_config(ns: usize) -> ArchConfig {
        ArchConfig {
            groups: 1,
            banks_per_group: 1,
            subarrays_per_bank: 1,
            pes_per_subarray: ns,
            rows: 1,
            cols: 64,
            tech: hyperap_model::TechParams::rram(),
            mesh: Some((1, ns)),
            exec: Default::default(),
            faults: Default::default(),
        }
    }
}

/// Outcome of one [`stencil_1d_sharded`] invocation.
#[derive(Debug, Clone)]
pub struct ShardedRun {
    /// Outputs per element, element order. Empty unless `completed`.
    pub outputs: Vec<u64>,
    /// Whether every shard reached its committed barrier (when false, call
    /// again — possibly in a new process — to make further progress).
    pub completed: bool,
    /// Shards restored from a committed checkpoint this invocation.
    pub shards_resumed: usize,
    /// Shards computed (and committed) this invocation.
    pub shards_computed: usize,
    /// Makespan over the shards computed this invocation (shard machines
    /// run concurrently in the modeled deployment).
    pub cycles: u64,
}

/// [`stencil_1d`] across `shards` machine shards with checkpointed
/// barriers: each shard is an independent [`SlabMachine`] (a contiguous
/// slice of the element chain) that computes its slice and commits its
/// full state into `sink` under the `s<i>-` prefix via the
/// [`Checkpointer`] atomic protocol.
///
/// The call is **restartable at every point**: killed anywhere (including
/// mid-commit — see the torn-write model in `hyperap_ckpt::testing`), a
/// rerun over the surviving sink resumes finished shards from their
/// barriers bit-identically and recomputes only the rest. `chunk_pes` is
/// the shard machines' chunk width; a rerun may pick a *different* width
/// and restores through the lossless migration path. `max_new_shards`
/// bounds how many shards one invocation computes (a cooperative yield —
/// the test harness's clean "kill between barriers").
///
/// Cross-shard halo cells are injected by the host after the in-shard
/// mesh exchange (`MovR` shifts zeros in at shard edges), which is exactly
/// the neighbor value the single-machine mesh would have delivered.
///
/// # Errors
///
/// Propagates sink failures ([`CkptError::Sink`]) and hard restore
/// mismatches; a torn shard checkpoint is not an error (the shard is
/// recomputed).
///
/// # Panics
///
/// Panics if `shards == 0` or `width` leaves no column for the output.
pub fn stencil_1d_sharded<S: CheckpointSink>(
    values: &[u64],
    width: u8,
    shards: usize,
    chunk_pes: usize,
    sink: &mut S,
    max_new_shards: Option<usize>,
) -> Result<ShardedRun, CkptError> {
    assert!(shards >= 1, "need at least one shard");
    let n = values.len();
    let plan = StencilPlan::new(width);
    let w = plan.w;
    let per = n.div_ceil(shards).max(1);
    let mut run = ShardedRun {
        outputs: vec![0; n],
        completed: true,
        shards_resumed: 0,
        shards_computed: 0,
        cycles: 0,
    };
    for s in 0..shards {
        let start = (s * per).min(n);
        let end = ((s + 1) * per).min(n);
        if start >= end {
            continue;
        }
        let ns = end - start;
        let mut machine =
            SlabMachine::with_chunk_pes(StencilPlan::shard_config(ns), chunk_pes.clamp(1, ns));
        let mut ck = Checkpointer::with_prefix(&mut *sink, format!("s{s}-"));
        ck.set_keep(1);
        match ck.resume(&mut machine) {
            Ok(_) => run.shards_resumed += 1,
            Err(CkptError::NoCheckpoint) => {
                if max_new_shards.is_some_and(|max| run.shards_computed >= max) {
                    run.completed = false;
                    run.outputs.clear();
                    return Ok(run);
                }
                for (i, &v) in values[start..end].iter().enumerate() {
                    for b in 0..w {
                        machine.load_bit(i, 0, b, v >> b & 1 == 1);
                    }
                }
                // In-shard halo exchange first: MovR fills the shard-edge
                // halos with zeros, which the host then overwrites with
                // the neighboring shard's boundary values.
                let stats = machine.run(std::slice::from_ref(&plan.halo));
                run.cycles = run.cycles.max(stats.makespan());
                if start > 0 {
                    let v = values[start - 1];
                    for b in 0..w {
                        machine.load_bit(0, 0, w + b, v >> b & 1 == 1);
                    }
                }
                if end < n {
                    let v = values[end];
                    for b in 0..w {
                        machine.load_bit(ns - 1, 0, 2 * w + b, v >> b & 1 == 1);
                    }
                }
                let stats = machine.run(std::slice::from_ref(&plan.compute));
                run.cycles = run.cycles.max(stats.makespan());
                // The barrier: the shard's full state becomes durable.
                ck.checkpoint(&machine)?;
                run.shards_computed += 1;
            }
            Err(e) => return Err(e),
        }
        for i in 0..ns {
            run.outputs[start + i] = plan.out.read(&machine.pe_snapshot(i), 0);
        }
    }
    Ok(run)
}

/// Scalar reference for [`stencil_1d`].
pub fn stencil_1d_reference(values: &[u64]) -> Vec<u64> {
    (0..values.len())
        .map(|i| {
            let left = if i > 0 { values[i - 1] } else { 0 };
            let right = if i + 1 < values.len() {
                values[i + 1]
            } else {
                0
            };
            (left + 2 * values[i] + right) >> 2
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::all_kernels;
    use hyperap_compiler::{compile, CompileOptions};

    #[test]
    fn elementwise_scaleout_matches_per_row_execution() {
        let kernel = compile(
            "unsigned int (9) main(unsigned int (8) a, unsigned int (8) b) { return a + b; }",
            &CompileOptions::default(),
        )
        .unwrap();
        let elements: Vec<Vec<u64>> = (0..48u64).map(|i| vec![i * 5 % 256, i * 9 % 256]).collect();
        let run = run_elementwise(&kernel, ArchConfig::tiny(), &elements[..32]);
        for (tuple, out) in elements[..32].iter().zip(&run.outputs) {
            assert_eq!(*out, tuple[0] + tuple[1]);
        }
        assert!(run.cycles > 0);
    }

    #[test]
    fn gaussian_kernel_scales_across_pes() {
        let kernels = all_kernels();
        let g = kernels.iter().find(|k| k.name == "gaussian").unwrap();
        let compiled = g.compile();
        let inputs = g.generate_inputs(&compiled, 24, 5);
        let run = run_elementwise(
            &compiled,
            ArchConfig {
                rows: 8,
                cols: 256,
                ..ArchConfig::tiny()
            },
            &inputs,
        );
        for (tuple, out) in inputs.iter().zip(&run.outputs) {
            assert_eq!(*out, (g.reference)(tuple)[0], "inputs {tuple:?}");
        }
    }

    #[test]
    fn stencil_halo_exchange_over_the_mesh() {
        let values: Vec<u64> = vec![0, 4, 8, 16, 32, 12, 6, 2];
        let run = stencil_1d(&values, 8);
        assert_eq!(run.outputs, stencil_1d_reference(&values));
        // Communication really happened over MovR.
        assert!(run.ops.mov_rs >= 16, "mov_rs = {}", run.ops.mov_rs);
    }

    #[test]
    fn stencil_communication_cost_is_small_vs_compute() {
        // §VI-D: the local interface makes synchronization cheap relative
        // to computation.
        let values: Vec<u64> = (0..6).map(|i| i * 31 % 256).collect();
        let run = stencil_1d(&values, 8);
        let transfer_cycles =
            16 * hyperap_arch::transfer::column_transfer_cycles(&hyperap_model::TechParams::rram());
        assert!(
            transfer_cycles < run.cycles / 2,
            "transfers {} of {} total",
            transfer_cycles,
            run.cycles
        );
    }
}
