//! Technology, timing, energy, and area models for the Hyper-AP reproduction.
//!
//! The paper evaluates Hyper-AP with HSPICE circuit simulation (32 nm PTM) and
//! then computes performance analytically from compilation results, because
//! "instruction latency is deterministic". This crate captures those device- and
//! chip-level constants so that the architecture simulator (`hyperap-arch`) and
//! the benchmark harness can turn *operation counts* into latency, throughput,
//! power efficiency and area efficiency, exactly as §VI of the paper does.
//!
//! Three layers:
//!
//! * [`tech`] — memory-technology parameters (RRAM vs CMOS): search/write
//!   latencies in cycles, per-operation energies, the write/search ratio α that
//!   also parameterizes the compiler's LUT-generation cost function (Eq. 2).
//! * [`area`] — physical-design constants (Fig 14): PE dimensions, array
//!   geometry, chip-level PE/slot counts.
//! * [`config`] — Table II system configurations for Hyper-AP, IMP, and GPU,
//!   plus derived metrics ([`metrics`]).
//!
//! # Example
//!
//! ```
//! use hyperap_model::tech::TechParams;
//! use hyperap_model::timing::OpCounts;
//!
//! let rram = TechParams::rram();
//! let ops = OpCounts { searches: 159, writes_single: 33, set_keys: 159, ..OpCounts::default() };
//! let cycles = ops.cycles(&rram);
//! assert!(cycles > 159); // writes cost 12 cycles each on RRAM
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod area;
pub mod config;
pub mod metrics;
pub mod tech;
pub mod timing;

pub use area::AreaModel;
pub use config::{SystemConfig, GPU_TITAN_XP, IMP_SYSTEM};
pub use metrics::Metrics;
pub use tech::{TechParams, Technology};
pub use timing::OpCounts;
