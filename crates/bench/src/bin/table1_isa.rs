//! Table I: the instruction set architecture.

use hyperap_bench::header;
use hyperap_isa::Instruction;
use hyperap_model::TechParams;
use hyperap_tcam::SearchKey;

fn main() {
    header("Table I: Hyper-AP ISA (cycles @ RRAM, length in bytes)");
    let rram = TechParams::rram();
    let rows: Vec<(&str, Instruction, &str)> = vec![
        (
            "Search",
            Instruction::Search {
                acc: true,
                encode: false,
            },
            "1",
        ),
        (
            "Write (1 cell)",
            Instruction::Write {
                col: 0,
                encode: false,
            },
            "12",
        ),
        (
            "Write (2 cells)",
            Instruction::Write {
                col: 0,
                encode: true,
            },
            "23",
        ),
        (
            "SetKey",
            Instruction::SetKey {
                key: SearchKey::masked(256),
            },
            "1",
        ),
        ("Count", Instruction::Count, "4"),
        ("Index", Instruction::Index, "4"),
        (
            "MovR",
            Instruction::MovR {
                dir: hyperap_isa::Direction::Left,
            },
            "5",
        ),
        ("ReadR", Instruction::ReadR { addr: 0 }, "variable"),
        (
            "WriteR",
            Instruction::WriteR {
                addr: 0,
                imm: vec![0; 64],
            },
            "variable",
        ),
        ("SetTag", Instruction::SetTag, "1"),
        ("ReadTag", Instruction::ReadTag, "1"),
        (
            "Broadcast",
            Instruction::Broadcast { group_mask: 0xFF },
            "1",
        ),
        ("Wait", Instruction::Wait { cycles: 8 }, "variable"),
    ];
    println!(
        "  {:<16} {:>8} {:>8}   paper-cycles",
        "instruction", "cycles", "bytes"
    );
    for (name, inst, paper) in rows {
        println!(
            "  {:<16} {:>8} {:>8}   {}",
            name,
            inst.cycles(&rram),
            inst.length(),
            paper
        );
    }
}
