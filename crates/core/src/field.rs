//! Data layout: logical bits → physical TCAM columns.
//!
//! Vectors are stored column-wise, one element per word row (Fig 2a). A
//! logical bit lives either in a plain column or as one half of a
//! two-bit-encoded pair occupying two adjacent physical columns (Fig 5a).
//! The compiler chooses which operand bits to pair (§V-B4a); the microcode
//! layer pairs same-index operand bits like the paper's examples.

use crate::machine::HyperPe;
use serde::{Deserialize, Serialize};

/// Physical placement of one logical bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Slot {
    /// A plain bit stored directly in column `col`.
    Single {
        /// The physical column.
        col: usize,
    },
    /// The high half of a two-bit-encoded pair occupying columns
    /// `col`, `col + 1`.
    PairHi {
        /// First physical column of the pair.
        col: usize,
    },
    /// The low half of a two-bit-encoded pair occupying columns
    /// `col`, `col + 1`.
    PairLo {
        /// First physical column of the pair.
        col: usize,
    },
}

impl Slot {
    /// First physical column this slot touches.
    pub fn base_col(self) -> usize {
        match self {
            Slot::Single { col } | Slot::PairHi { col } | Slot::PairLo { col } => col,
        }
    }

    /// All physical columns this slot's storage occupies.
    pub fn columns(self) -> Vec<usize> {
        match self {
            Slot::Single { col } => vec![col],
            Slot::PairHi { col } | Slot::PairLo { col } => vec![col, col + 1],
        }
    }

    /// Is this slot half of an encoded pair?
    pub fn is_paired(self) -> bool {
        !matches!(self, Slot::Single { .. })
    }
}

/// A named multi-bit value: slots LSB first.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Field {
    /// Human-readable name (for diagnostics).
    pub name: String,
    /// Bit slots, least-significant bit first.
    pub slots: Vec<Slot>,
}

impl Field {
    /// A field over explicit slots.
    pub fn new(name: impl Into<String>, slots: Vec<Slot>) -> Self {
        Field {
            name: name.into(),
            slots,
        }
    }

    /// Bit width.
    pub fn width(&self) -> usize {
        self.slots.len()
    }

    /// The slot of bit `i` (LSB = 0).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn slot(&self, i: usize) -> Slot {
        self.slots[i]
    }

    /// A sub-field of bits `range` (e.g. for a shifted view: `x >> k` is
    /// `x.bits(k..x.width())`). Views are free — shifts compile to layout
    /// renaming, not data movement.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn bits(&self, range: std::ops::Range<usize>) -> Field {
        Field {
            name: format!("{}[{}..{}]", self.name, range.start, range.end),
            slots: self.slots[range].to_vec(),
        }
    }

    /// Store `value` into this field at `row` via the host load path.
    ///
    /// Pair slots re-encode around the partner bit currently stored, so
    /// fields sharing pairs can be loaded independently.
    pub fn store(&self, pe: &mut HyperPe, row: usize, value: u64) {
        for (i, slot) in self.slots.iter().enumerate() {
            let bit = value >> i & 1 == 1;
            match *slot {
                Slot::Single { col } => pe.load_bit(row, col, bit),
                Slot::PairHi { col } => {
                    let (_, lo) = pe.try_read_encoded_pair(row, col).unwrap_or((false, false));
                    pe.load_encoded_pair(row, col, bit, lo);
                }
                Slot::PairLo { col } => {
                    let (hi, _) = pe.try_read_encoded_pair(row, col).unwrap_or((false, false));
                    pe.load_encoded_pair(row, col, hi, bit);
                }
            }
        }
    }

    /// Read this field's value at `row`.
    ///
    /// # Panics
    ///
    /// Panics if a plain cell stores `X` (never the case for microcode
    /// results) or a pair holds an invalid code.
    pub fn read(&self, pe: &HyperPe, row: usize) -> u64 {
        let mut v = 0u64;
        for (i, slot) in self.slots.iter().enumerate() {
            let bit = match *slot {
                Slot::Single { col } => pe.read_bit(row, col).expect("plain bit is 0/1"),
                Slot::PairHi { col } => pe.read_encoded_pair(row, col).0,
                Slot::PairLo { col } => pe.read_encoded_pair(row, col).1,
            };
            if bit {
                v |= 1 << i;
            }
        }
        v
    }
}

/// Column allocator for one PE's 256 columns, with recycling.
///
/// Freshly allocated columns are guaranteed to hold all-zero (the array's
/// initial state). Recycled columns are returned as *dirty*; callers must
/// zero them (the microcode context does, emitting the corresponding write
/// operations, because on real hardware that costs a write per column).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FieldAllocator {
    n_cols: usize,
    next_fresh: usize,
    free_dirty: Vec<usize>,
}

impl FieldAllocator {
    /// Allocator over `n_cols` physical columns.
    pub fn new(n_cols: usize) -> Self {
        FieldAllocator {
            n_cols,
            next_fresh: 0,
            free_dirty: Vec::new(),
        }
    }

    /// Columns not yet handed out (fresh + recycled).
    pub fn available(&self) -> usize {
        (self.n_cols - self.next_fresh) + self.free_dirty.len()
    }

    /// Allocate one column; returns `(col, dirty)`.
    ///
    /// # Panics
    ///
    /// Panics if the PE is out of columns.
    pub fn alloc_col(&mut self) -> (usize, bool) {
        // Fresh columns are free (the array initializes to zero); recycled
        // ones cost a zeroing write. Prefer fresh while headroom is ample,
        // switch to recycling when the fresh region runs low so that large
        // kernels fit and encoded pairs keep adjacent fresh runs available.
        let low_headroom = self.next_fresh * 4 >= self.n_cols * 3;
        if low_headroom {
            if let Some(col) = self.free_dirty.pop() {
                return (col, true);
            }
        }
        if self.next_fresh < self.n_cols {
            self.next_fresh += 1;
            (self.next_fresh - 1, false)
        } else if let Some(col) = self.free_dirty.pop() {
            (col, true)
        } else {
            panic!("PE out of columns ({} available)", self.n_cols);
        }
    }

    /// Allocate a plain field of `width` bits; returns the field and the
    /// dirty columns that need zeroing.
    pub fn alloc_plain(&mut self, name: impl Into<String>, width: usize) -> (Field, Vec<usize>) {
        let mut slots = Vec::with_capacity(width);
        let mut dirty = Vec::new();
        for _ in 0..width {
            let (col, d) = self.alloc_col();
            if d {
                dirty.push(col);
            }
            slots.push(Slot::Single { col });
        }
        (Field::new(name, slots), dirty)
    }

    /// Allocate two fields of `width` bits stored as encoded pairs: bit `i`
    /// of the first field is the pair-high, bit `i` of the second the
    /// pair-low, in columns `(2i, 2i+1)` of a 2·width column run.
    ///
    /// Returns the two fields and dirty columns needing zero-encoding.
    pub fn alloc_paired(
        &mut self,
        name_hi: impl Into<String>,
        name_lo: impl Into<String>,
        width: usize,
    ) -> (Field, Field, Vec<usize>) {
        let mut hi = Vec::with_capacity(width);
        let mut lo = Vec::with_capacity(width);
        let mut dirty = Vec::new();
        for _ in 0..width {
            let (c0, was_dirty) = self.alloc_adjacent_pair();
            if was_dirty {
                dirty.push(c0);
                dirty.push(c0 + 1);
            }
            hi.push(Slot::PairHi { col: c0 });
            lo.push(Slot::PairLo { col: c0 });
        }
        (Field::new(name_hi, hi), Field::new(name_lo, lo), dirty)
    }

    /// Allocate two **adjacent** columns (for an encoded pair); prefers an
    /// adjacent recycled pair, falls back to fresh columns.
    ///
    /// # Panics
    ///
    /// Panics if neither two fresh columns nor an adjacent recycled pair is
    /// available.
    fn alloc_adjacent_pair(&mut self) -> (usize, bool) {
        // Prefer an adjacent recycled pair (e.g. a previously freed encoded
        // field) to keep the live footprint low.
        let mut sorted: Vec<usize> = self.free_dirty.clone();
        sorted.sort_unstable();
        for w in sorted.windows(2) {
            if w[1] == w[0] + 1 {
                self.free_dirty.retain(|&c| c != w[0] && c != w[1]);
                return (w[0], true);
            }
        }
        if self.next_fresh + 1 < self.n_cols {
            let c = self.next_fresh;
            self.next_fresh += 2;
            return (c, false);
        }
        panic!("PE out of adjacent column pairs ({} columns)", self.n_cols);
    }

    /// Return a field's columns to the free pool (as dirty).
    ///
    /// Columns already in the pool and columns never handed out are skipped,
    /// so freeing overlapping views is safe.
    pub fn free(&mut self, field: &Field) {
        let mut cols: Vec<usize> = field.slots.iter().flat_map(|s| s.columns()).collect();
        cols.sort_unstable();
        cols.dedup();
        for col in cols {
            if col < self.next_fresh && !self.free_dirty.contains(&col) {
                self.free_dirty.push(col);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_field_store_read_round_trip() {
        let mut pe = HyperPe::new(2, 16);
        let mut alloc = FieldAllocator::new(16);
        let (f, dirty) = alloc.alloc_plain("x", 8);
        assert!(dirty.is_empty());
        f.store(&mut pe, 0, 0xA5);
        f.store(&mut pe, 1, 0x3C);
        assert_eq!(f.read(&pe, 0), 0xA5);
        assert_eq!(f.read(&pe, 1), 0x3C);
    }

    #[test]
    fn paired_fields_are_independent() {
        let mut pe = HyperPe::new(1, 16);
        let mut alloc = FieldAllocator::new(16);
        let (a, b, _) = alloc.alloc_paired("a", "b", 4);
        a.store(&mut pe, 0, 0b1010);
        b.store(&mut pe, 0, 0b0110);
        assert_eq!(a.read(&pe, 0), 0b1010);
        assert_eq!(b.read(&pe, 0), 0b0110);
        a.store(&mut pe, 0, 0b0001);
        assert_eq!(b.read(&pe, 0), 0b0110, "partner unchanged");
    }

    #[test]
    fn bits_view_is_a_shift() {
        let mut alloc = FieldAllocator::new(16);
        let (f, _) = alloc.alloc_plain("x", 8);
        let hi = f.bits(3..8);
        assert_eq!(hi.width(), 5);
        assert_eq!(hi.slot(0), f.slot(3));
    }

    #[test]
    fn allocator_recycles_dirty() {
        let mut alloc = FieldAllocator::new(4);
        let (f, dirty) = alloc.alloc_plain("a", 4);
        assert!(dirty.is_empty());
        alloc.free(&f);
        let (_, dirty2) = alloc.alloc_plain("b", 4);
        assert_eq!(dirty2.len(), 4, "recycled columns are dirty");
    }

    #[test]
    #[should_panic(expected = "out of columns")]
    fn allocator_exhaustion_panics() {
        let mut alloc = FieldAllocator::new(2);
        let _ = alloc.alloc_plain("a", 3);
    }

    #[test]
    fn slot_columns() {
        assert_eq!(Slot::Single { col: 3 }.columns(), vec![3]);
        assert_eq!(Slot::PairHi { col: 4 }.columns(), vec![4, 5]);
        assert!(Slot::PairLo { col: 4 }.is_paired());
        assert!(!Slot::Single { col: 0 }.is_paired());
    }
}
