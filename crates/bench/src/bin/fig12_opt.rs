//! Fig 12: operation merging and operand embedding.

use hyperap_bench::header;
use hyperap_compiler::{compile, CompileOptions};

fn main() {
    header("Fig 12a: operation merging (chained 1-bit additions)");
    let src = "unsigned int (3) main(
        unsigned int (1) a, unsigned int (1) b,
        unsigned int (1) c, unsigned int (1) d
    ) {
        unsigned int (2) e; unsigned int (2) f; unsigned int (3) g;
        e = a + b; f = c + d; g = e + f;
        return g;
    }";
    let merged = compile(src, &CompileOptions::default())
        .unwrap()
        .op_counts();
    let unmerged = compile(
        src,
        &CompileOptions {
            enable_merging: false,
            ..Default::default()
        },
    )
    .unwrap()
    .op_counts();
    println!(
        "  without merging: {} searches, {} writes (paper: 8S, 7W)",
        unmerged.searches,
        unmerged.writes()
    );
    println!(
        "  with merging   : {} searches, {} writes (paper: 6S, 3W)",
        merged.searches,
        merged.writes()
    );

    header("Fig 12b: operand embedding (2-bit a + immediate 2)");
    let src = "unsigned int (3) main(unsigned int (2) a) {
        unsigned int (2) b; unsigned int (3) c;
        b = 2; c = a + b; return c;
    }";
    let embedded = compile(src, &CompileOptions::default())
        .unwrap()
        .op_counts();
    let mat = compile(
        src,
        &CompileOptions {
            enable_embedding: false,
            ..Default::default()
        },
    )
    .unwrap()
    .op_counts();
    println!("  without embedding: {} searches (paper: 5)", mat.searches);
    println!(
        "  with embedding   : {} searches (paper: 3)",
        embedded.searches
    );
}
