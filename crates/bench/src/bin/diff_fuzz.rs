//! Differential fuzzer for the three execution engines: random Table-I
//! instruction streams (plus synthetic-arithmetic kernel streams from
//! [`hyperap_workloads::synthetic`]) run on the instruction-at-a-time
//! interpreter, the trace-compiled engine, and the slab engine — with and
//! without a seeded fault model — and any divergence in the run `Result`
//! (stats, `pe_health`, typed fault errors) or the post-run machine state
//! is shrunk to a minimized repro before the fuzzer exits non-zero.
//!
//! Usage: `diff_fuzz [--smoke] [--seed N] [--iters N] [--case N]`
//!
//! * `--smoke` — a short deterministic pass for CI (few iterations).
//! * `--seed N` — base seed; every iteration derives its own case seed.
//! * `--iters N` — number of fuzz cases.
//! * `--case N` — re-run exactly one case seed (the repro header prints
//!   the value to pass here).
//!
//! The RNG is a self-contained splitmix64 so repros are stable across
//! hosts and toolchains.

use hyperap_arch::machine::BROADCAST_ADDR;
use hyperap_arch::{ApMachine, ArchConfig, ExecMode, FaultConfig, SlabMachine};
use hyperap_baselines::reference::OpKind;
use hyperap_isa::{Direction, Instruction};
use hyperap_tcam::{FaultModel, KeyBit, SearchKey};
use hyperap_workloads::synthetic;

/// Geometry under test: `tiny()` is 2 groups x 4 PEs.
const PES: usize = 8;
const GROUPS: usize = 2;
const ROWS: usize = 16;

/// Slab chunk widths exercised per case: single-PE chunks, a short tail
/// chunk, one chunk per group.
const CHUNK_WIDTHS: [usize; 3] = [1, 3, 4];

/// Deterministic splitmix64 — the fuzzer's only entropy source.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `0..n` (n > 0; modulo bias is irrelevant for fuzzing).
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    fn flag(&mut self) -> bool {
        self.below(2) == 0
    }
}

type Load = (usize, usize, usize, bool);

/// One fuzz case: a machine geometry, initial cell loads, a per-group
/// instruction stream, and a (possibly inactive) fault configuration.
struct Case {
    cols: usize,
    loads: Vec<Load>,
    streams: Vec<Vec<Instruction>>,
    faults: FaultConfig,
}

fn random_key(rng: &mut Rng, cols: usize) -> SearchKey {
    (0..cols)
        .map(|_| match rng.below(4) {
            0 => KeyBit::Zero,
            1 => KeyBit::One,
            2 => KeyBit::Z,
            _ => KeyBit::Masked,
        })
        .collect()
}

fn random_instruction(rng: &mut Rng, cols: usize) -> Instruction {
    match rng.below(12) {
        0 => Instruction::SetKey {
            key: random_key(rng, cols),
        },
        1 => Instruction::Search {
            acc: rng.flag(),
            encode: rng.flag(),
        },
        // `encode` needs two adjacent columns, so stop one short.
        2 => Instruction::Write {
            col: rng.below(cols as u64 - 1) as u8,
            encode: rng.flag(),
        },
        3 => Instruction::Count,
        4 => Instruction::Index,
        5 => Instruction::MovR {
            dir: match rng.below(4) {
                0 => Direction::Up,
                1 => Direction::Down,
                2 => Direction::Left,
                _ => Direction::Right,
            },
        },
        6 => Instruction::ReadR {
            addr: rng.below(PES as u64) as u32,
        },
        7 => Instruction::WriteR {
            addr: if rng.flag() {
                BROADCAST_ADDR
            } else {
                rng.below(PES as u64) as u32
            },
            imm: (0..rng.below(4)).map(|_| rng.next() as u8).collect(),
        },
        8 => Instruction::SetTag,
        9 => Instruction::ReadTag,
        10 => Instruction::Broadcast {
            group_mask: rng.next() as u8,
        },
        _ => Instruction::Wait {
            cycles: rng.below(10) as u8,
        },
    }
}

fn random_stream(rng: &mut Rng, cols: usize, max_len: u64) -> Vec<Instruction> {
    (0..rng.below(max_len))
        .map(|_| random_instruction(rng, cols))
        .collect()
}

fn random_faults(rng: &mut Rng) -> FaultConfig {
    // Half the cases run fault-free: the fuzzer differentially tests the
    // zero-fault path (must match today's engines) as much as the faulty
    // one.
    if rng.flag() {
        return FaultConfig::default();
    }
    FaultConfig {
        model: FaultModel {
            seed: rng.next(),
            stuck_per_million: rng.below(60_000) as u32,
            miss_per_million: rng.below(40_000) as u32,
            endurance_limit: rng.flag().then(|| 2 + rng.below(28)),
        },
        spare_cols: rng.below(3) as usize,
    }
}

/// Synthetic-arithmetic kernels mixed into the case pool — their microcode
/// streams are long chains of SetKey/Search/Write with realistic structure
/// random generation never produces.
const KERNELS: [(OpKind, usize); 4] = [
    (OpKind::Add, 16),
    (OpKind::AddImm, 16),
    (OpKind::MultiAdd, 8),
    (OpKind::Mul, 8),
];

fn generate_case(case_seed: u64) -> Case {
    let mut rng = Rng(case_seed);
    // One case in four runs a synthetic kernel stream (on the 256-column
    // geometry its microcode targets); the rest are random Table-I streams
    // on the tiny 64-column geometry.
    let kernel = rng.below(4) == 0;
    let cols = if kernel { 256 } else { 64 };
    let loads = (0..rng.below(64))
        .map(|_| {
            (
                rng.below(PES as u64) as usize,
                rng.below(ROWS as u64) as usize,
                rng.below(cols as u64) as usize,
                rng.flag(),
            )
        })
        .collect();
    let mut streams: Vec<Vec<Instruction>> = if kernel {
        let (op, width) = KERNELS[rng.below(KERNELS.len() as u64) as usize];
        let bench = synthetic::build(op, width);
        vec![bench.stream(), random_stream(&mut rng, cols, 12)]
    } else {
        (0..GROUPS)
            .map(|_| random_stream(&mut rng, cols, 30))
            .collect()
    };
    streams.truncate(GROUPS);
    Case {
        cols,
        loads,
        streams,
        faults: random_faults(&mut rng),
    }
}

fn config(case: &Case, mode: ExecMode) -> ArchConfig {
    let mut cfg = ArchConfig::tiny();
    cfg.cols = case.cols;
    cfg.exec = mode;
    cfg.faults = case.faults;
    cfg
}

fn build_reference(case: &Case) -> ApMachine {
    let mut m = ApMachine::new(config(case, ExecMode::Sequential));
    for &(pe, row, col, v) in &case.loads {
        m.pe_mut(pe).load_bit(row, col, v);
    }
    m
}

fn build_slab(case: &Case, mode: ExecMode, chunk_pes: usize) -> SlabMachine {
    let mut m = SlabMachine::with_chunk_pes(config(case, mode), chunk_pes);
    for &(pe, row, col, v) in &case.loads {
        m.load_bit(pe, row, col, v);
    }
    m
}

/// First state component on which `b` disagrees with the reference, if any.
fn ap_state_divergence(reference: &ApMachine, b: &ApMachine) -> Option<String> {
    for pe in 0..PES {
        if reference.pe(pe) != b.pe(pe) {
            return Some(format!("PE {pe} state (cells/tags/wear/fault bookkeeping)"));
        }
        if reference.data_reg(pe) != b.data_reg(pe) {
            return Some(format!("PE {pe} data register"));
        }
    }
    (reference.data_buffers != b.data_buffers).then(|| "controller data buffers".to_string())
}

fn slab_state_divergence(reference: &ApMachine, b: &SlabMachine) -> Option<String> {
    for pe in 0..PES {
        if *reference.pe(pe) != b.pe_snapshot(pe) {
            return Some(format!("PE {pe} state (cells/tags/wear/fault bookkeeping)"));
        }
        if *reference.data_reg(pe) != b.data_reg(pe) {
            return Some(format!("PE {pe} data register"));
        }
    }
    (reference.data_buffers != b.data_buffers).then(|| "controller data buffers".to_string())
}

/// Run the full engine matrix on `case`; `Some(description)` on the first
/// divergence from the interpreted reference.
fn check(case: &Case) -> Option<String> {
    let mut reference = build_reference(case);
    let ref_result = reference.try_run_interpreted(&case.streams);
    for mode in [ExecMode::Sequential, ExecMode::Parallel] {
        let mut traced = ApMachine::new(config(case, mode));
        for &(pe, row, col, v) in &case.loads {
            traced.pe_mut(pe).load_bit(row, col, v);
        }
        let got = traced.try_run(&case.streams);
        if got != ref_result {
            return Some(format!(
                "trace engine ({mode:?}) result diverged:\n  reference: {ref_result:?}\n  trace:     {got:?}"
            ));
        }
        if let Some(what) = ap_state_divergence(&reference, &traced) {
            return Some(format!("trace engine ({mode:?}) diverged on {what}"));
        }
        for chunk_pes in CHUNK_WIDTHS {
            let mut slab = build_slab(case, mode, chunk_pes);
            let got = slab.try_run(&case.streams);
            if got != ref_result {
                return Some(format!(
                    "slab engine ({mode:?}, {chunk_pes}-PE chunks) result diverged:\n  reference: {ref_result:?}\n  slab:      {got:?}"
                ));
            }
            if let Some(what) = slab_state_divergence(&reference, &slab) {
                return Some(format!(
                    "slab engine ({mode:?}, {chunk_pes}-PE chunks) diverged on {what}"
                ));
            }
        }
    }
    None
}

/// Greedy delta-debugging: repeatedly drop single instructions and loads
/// while the divergence persists, until a fixpoint.
fn minimize(case: &mut Case) {
    loop {
        let mut shrunk = false;
        for g in 0..case.streams.len() {
            let mut i = 0;
            while i < case.streams[g].len() {
                let removed = case.streams[g].remove(i);
                if check(case).is_some() {
                    shrunk = true;
                } else {
                    case.streams[g].insert(i, removed);
                    i += 1;
                }
            }
        }
        let mut i = 0;
        while i < case.loads.len() {
            let removed = case.loads.remove(i);
            if check(case).is_some() {
                shrunk = true;
            } else {
                case.loads.insert(i, removed);
                i += 1;
            }
        }
        if !shrunk {
            break;
        }
    }
}

fn report(case_seed: u64, iteration: u64, case: &Case, divergence: &str) {
    eprintln!("diff_fuzz: DIVERGENCE at iteration {iteration} (case seed {case_seed})");
    eprintln!("diff_fuzz: re-run just this case with: diff_fuzz --case {case_seed}");
    eprintln!("diff_fuzz: minimized repro ({} columns):", case.cols);
    eprintln!("  faults: {:?}", case.faults);
    eprintln!("  loads (pe, row, col, value): {:?}", case.loads);
    for (g, s) in case.streams.iter().enumerate() {
        eprintln!("  group {g} stream ({} instructions): {s:?}", s.len());
    }
    eprintln!("diff_fuzz: {divergence}");
}

/// Run one case end to end; `true` when a divergence was found (already
/// minimized and reported).
fn run_case(case_seed: u64, iteration: u64) -> bool {
    let mut case = generate_case(case_seed);
    let Some(_) = check(&case) else {
        return false;
    };
    minimize(&mut case);
    let divergence = check(&case).unwrap_or_else(|| "divergence vanished while shrinking".into());
    report(case_seed, iteration, &case, &divergence);
    true
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut seed: u64 = 0xD1FF_F027;
    let mut iters: u64 = 256;
    let mut single_case: Option<u64> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--smoke" => iters = 24,
            "--seed" | "--iters" | "--case" => {
                let Some(v) = args.get(i + 1).and_then(|v| v.parse::<u64>().ok()) else {
                    eprintln!("diff_fuzz: {} needs an integer argument", args[i]);
                    std::process::exit(2);
                };
                match args[i].as_str() {
                    "--seed" => seed = v,
                    "--iters" => iters = v,
                    _ => single_case = Some(v),
                }
                i += 1;
            }
            other => {
                eprintln!("diff_fuzz: unknown argument {other}");
                eprintln!("usage: diff_fuzz [--smoke] [--seed N] [--iters N] [--case N]");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    if let Some(case_seed) = single_case {
        let failed = run_case(case_seed, 0);
        if !failed {
            println!("diff_fuzz: case {case_seed} is clean — all engines bit-identical");
        }
        std::process::exit(i32::from(failed));
    }

    let mut derive = Rng(seed);
    for iteration in 0..iters {
        let case_seed = derive.next();
        if run_case(case_seed, iteration) {
            std::process::exit(1);
        }
    }
    println!(
        "diff_fuzz: {iters} cases clean — interpreter, trace, and slab engines bit-identical \
         (with and without faults)"
    );
}
