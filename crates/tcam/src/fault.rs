//! Deterministic, seedable device-fault models and the bookkeeping that
//! applies them to [`crate::TcamArray`] and [`crate::TcamSlab`] storage.
//!
//! The paper's 2D2R RRAM TCAM (§II-E, §IV-B) is built on devices with
//! finite write endurance and real defect rates. This module provides the
//! functional counterpart: a [`FaultModel`] that decides — purely as a hash
//! of a seed and coordinates, so every engine agrees bit-for-bit — which
//! cells are stuck, which rows transiently miss a search, and when a
//! column's wear counter trips its endurance limit.
//!
//! Three fault classes are modeled:
//!
//! * **Stuck-at cells**: a cell permanently stores 0 or 1 regardless of
//!   writes. Stuck bits are a property of the *physical* device, so they
//!   follow the device, not the logical column: when a column is retired
//!   onto a spare, the new device brings its own (hash-derived) stuck bits.
//! * **Transient search misses**: a row fails to discharge its match line
//!   for the duration of one architectural run (one *epoch*). The miss set
//!   is re-hashed per epoch, so different runs see different misses but
//!   every engine executing the same run sees the same set. Holding the
//!   set stable within an epoch is what keeps the trace engine's fusion and
//!   dead-search elision sound under faults.
//! * **Endurance trips**: when a column's existing wear counter reaches
//!   `endurance_limit`, the column is retired onto a spare device at the
//!   end of the run ([`FaultState::retire`]); when no spares remain the
//!   machine surfaces [`FaultError::SparesExhausted`] instead of silently
//!   computing wrong results.
//!
//! The *remap table* is bookkeeping, not indirection: storage stays
//! logical-width and kernels keep their exact zero-fault indexing. What a
//! retirement changes is which physical device backs a logical column —
//! observable only through that device's stuck bits (recomputed from the
//! model) and its fresh wear counter (reset to zero).

use serde::{Deserialize, Serialize};

/// Domain-separation salt for stuck-cell decisions.
const STUCK_SALT: u64 = 0x5EED_57AC_C311_0001;
/// Domain-separation salt for transient search-miss decisions.
const MISS_SALT: u64 = 0x5EED_B115_5000_0002;

/// One round of the splitmix64 finalizer.
fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Hash a salted seed with three coordinates into a uniform `u64`.
fn mix3(seed: u64, a: u64, b: u64, c: u64) -> u64 {
    splitmix(seed ^ splitmix(a ^ splitmix(b ^ splitmix(c))))
}

/// A deterministic, seedable device-fault model.
///
/// Every decision is a pure function of `(seed, coordinates)`, so any two
/// engines given the same model agree on every fault without sharing
/// state. Rates are expressed in events per million to keep the type
/// `Eq`/`Hash`-able (no floats).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FaultModel {
    /// Seed mixed into every fault decision.
    pub seed: u64,
    /// Stuck-cell probability per million cells (split half stuck-at-0,
    /// half stuck-at-1 by hash parity).
    pub stuck_per_million: u32,
    /// Transient search-miss probability per million row-epochs.
    pub miss_per_million: u32,
    /// Retire a column once its wear counter reaches this limit.
    pub endurance_limit: Option<u64>,
}

impl FaultModel {
    /// The fault-free model; storage with this model attached behaves
    /// identically to storage with no fault state at all.
    pub const fn none() -> Self {
        FaultModel {
            seed: 0,
            stuck_per_million: 0,
            miss_per_million: 0,
            endurance_limit: None,
        }
    }

    /// True when any fault class can ever fire.
    pub fn is_active(&self) -> bool {
        self.stuck_per_million > 0 || self.miss_per_million > 0 || self.endurance_limit.is_some()
    }

    /// Stuck state of the cell at `(pe, phys_col, row)`: `Some(true)` for
    /// stuck-at-1, `Some(false)` for stuck-at-0, `None` for a healthy cell.
    ///
    /// `phys_col` is a *physical* device index — spare devices live at
    /// `cols..cols + spares` and carry their own stuck bits.
    pub fn stuck_at(&self, pe: usize, phys_col: usize, row: usize) -> Option<bool> {
        if self.stuck_per_million == 0 {
            return None;
        }
        let h = mix3(
            self.seed ^ STUCK_SALT,
            pe as u64,
            phys_col as u64,
            row as u64,
        );
        if h % 1_000_000 < self.stuck_per_million as u64 {
            Some(h >> 32 & 1 == 1)
        } else {
            None
        }
    }

    /// True when row `row` of PE `pe` misses every search during `epoch`.
    pub fn misses(&self, pe: usize, row: usize, epoch: u64) -> bool {
        if self.miss_per_million == 0 {
            return false;
        }
        let h = mix3(self.seed ^ MISS_SALT, pe as u64, row as u64, epoch);
        h % 1_000_000 < self.miss_per_million as u64
    }

    /// Fill per-block stuck-at-0 / stuck-at-1 masks for one physical column
    /// of one PE. The two masks are disjoint and confined to `rows` bits.
    pub fn stuck_masks_into(
        &self,
        pe: usize,
        phys_col: usize,
        rows: usize,
        stuck0: &mut [u64],
        stuck1: &mut [u64],
    ) {
        stuck0.fill(0);
        stuck1.fill(0);
        if self.stuck_per_million == 0 {
            return;
        }
        for row in 0..rows {
            match self.stuck_at(pe, phys_col, row) {
                Some(true) => stuck1[row / 64] |= 1 << (row % 64),
                Some(false) => stuck0[row / 64] |= 1 << (row % 64),
                None => {}
            }
        }
    }

    /// Fill a per-block mask of rows that miss searches during `epoch`.
    pub fn miss_mask_into(&self, pe: usize, rows: usize, epoch: u64, out: &mut [u64]) {
        out.fill(0);
        if self.miss_per_million == 0 {
            return;
        }
        for row in 0..rows {
            if self.misses(pe, row, epoch) {
                out[row / 64] |= 1 << (row % 64);
            }
        }
    }
}

impl Default for FaultModel {
    fn default() -> Self {
        FaultModel::none()
    }
}

/// Typed degradation error: a fault the machine cannot transparently
/// absorb.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultError {
    /// A column crossed its endurance limit and no spare devices remain in
    /// its PE. Results computed before the trip are intact; the machine
    /// refuses to run further work instead of returning wrong answers.
    SparesExhausted {
        /// Global PE index.
        pe: usize,
        /// Logical column that could not be retired.
        col: u16,
        /// The wear counter value that tripped the limit.
        wear: u64,
    },
}

impl std::fmt::Display for FaultError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultError::SparesExhausted { pe, col, wear } => write!(
                f,
                "PE {pe}: column {col} hit its endurance limit (wear {wear}) with no spares left"
            ),
        }
    }
}

impl std::error::Error for FaultError {}

/// Fill `out` with the all-rows-valid mask (tail bits zero).
fn full_row_mask_into(rows: usize, out: &mut [u64]) {
    out.fill(!0);
    let tail = rows % 64;
    if tail != 0 {
        if let Some(last) = out.last_mut() {
            *last = (1u64 << tail) - 1;
        }
    }
}

/// Per-[`crate::TcamArray`] fault bookkeeping: the model, the remap table
/// from logical columns to backing physical devices, cached stuck masks
/// for the *current* backing devices, and the current epoch's effective
/// search mask.
///
/// All fields participate in `PartialEq`; two engines that executed the
/// same runs agree on the whole structure, remap tables included.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultState {
    /// The fault model every decision is derived from.
    pub model: FaultModel,
    /// Global PE index (hash coordinate; identical across engines).
    pub pe: usize,
    /// Number of rows in the backing array.
    pub rows: usize,
    /// Number of spare column devices this PE reserves.
    pub spares: usize,
    /// Count of spares consumed so far; the next spare is physical device
    /// `cols + next_spare`.
    pub next_spare: u16,
    /// `remap[logical_col]` = physical device index in `0..cols + spares`.
    /// Starts as the identity; retirement redirects one entry at a time.
    pub remap: Vec<u16>,
    /// Retirement log: `(logical_col, new_physical_device)` in order.
    pub retired: Vec<(u16, u16)>,
    /// Stuck-at-0 masks of the current backing devices, `[col][block]`
    /// flattened.
    pub stuck0: Vec<u64>,
    /// Stuck-at-1 masks of the current backing devices, `[col][block]`
    /// flattened.
    pub stuck1: Vec<u64>,
    /// Effective search mask for the current epoch:
    /// `row_mask & !miss_mask`. Searches initialize from this instead of
    /// the raw row mask.
    pub search_mask: Vec<u64>,
    /// Current run epoch (bumped once per architectural run).
    pub epoch: u64,
    /// Set when this PE has exhausted its spares: `(col, wear)` of the
    /// column that could not be retired. Machines fail fast on it.
    pub failed: Option<(u16, u64)>,
}

impl FaultState {
    /// Fresh fault state for a `rows × cols` array on global PE `pe`.
    pub fn new(model: FaultModel, pe: usize, spares: usize, rows: usize, cols: usize) -> Self {
        let bpp = rows.div_ceil(64);
        let mut state = FaultState {
            model,
            pe,
            rows,
            spares,
            next_spare: 0,
            remap: (0..cols as u16).collect(),
            retired: Vec::new(),
            stuck0: vec![0; cols * bpp],
            stuck1: vec![0; cols * bpp],
            search_mask: vec![0; bpp],
            epoch: 0,
            failed: None,
        };
        for col in 0..cols {
            state.refresh_stuck(col);
        }
        state.refresh_search_mask();
        state
    }

    /// Blocks per column (`rows.div_ceil(64)`).
    pub fn blocks(&self) -> usize {
        self.search_mask.len()
    }

    /// Logical column count.
    pub fn cols(&self) -> usize {
        self.remap.len()
    }

    /// Spare devices still unused.
    pub fn spares_left(&self) -> u16 {
        self.spares as u16 - self.next_spare
    }

    /// Stuck-at-0 / stuck-at-1 masks of logical column `col`'s current
    /// backing device.
    pub fn stuck_col(&self, col: usize) -> (&[u64], &[u64]) {
        let bpp = self.blocks();
        let base = col * bpp;
        (
            &self.stuck0[base..base + bpp],
            &self.stuck1[base..base + bpp],
        )
    }

    /// Recompute the cached stuck masks of logical column `col` from its
    /// current backing device.
    fn refresh_stuck(&mut self, col: usize) {
        let bpp = self.blocks();
        let phys = self.remap[col] as usize;
        let base = col * bpp;
        let (pe, rows, model) = (self.pe, self.rows, self.model);
        model.stuck_masks_into(
            pe,
            phys,
            rows,
            &mut self.stuck0[base..base + bpp],
            &mut self.stuck1[base..base + bpp],
        );
    }

    /// Recompute the effective search mask for the current epoch.
    fn refresh_search_mask(&mut self) {
        let (pe, rows, epoch, model) = (self.pe, self.rows, self.epoch, self.model);
        let bpp = self.blocks();
        let mut miss = vec![0u64; bpp];
        model.miss_mask_into(pe, rows, epoch, &mut miss);
        full_row_mask_into(rows, &mut self.search_mask);
        for (m, miss) in self.search_mask.iter_mut().zip(&miss) {
            *m &= !miss;
        }
    }

    /// Start a new run epoch: bump the counter and re-derive the transient
    /// miss set (and thus the effective search mask).
    pub fn advance_epoch(&mut self) {
        self.epoch += 1;
        if self.model.miss_per_million > 0 {
            self.refresh_search_mask();
        }
    }

    /// Retire logical column `col` (whose wear counter read `wear`) onto
    /// the next spare device. Returns the new physical device index; the
    /// caller must re-enforce stuck bits on the column's storage and reset
    /// its wear counter (the spare is a fresh device).
    ///
    /// # Errors
    ///
    /// [`FaultError::SparesExhausted`] when no spares remain; `failed` is
    /// recorded so subsequent runs fail fast.
    pub fn retire(&mut self, col: usize, wear: u64) -> Result<u16, FaultError> {
        if (self.next_spare as usize) >= self.spares {
            self.failed = Some((col as u16, wear));
            return Err(FaultError::SparesExhausted {
                pe: self.pe,
                col: col as u16,
                wear,
            });
        }
        let phys = (self.cols() + self.next_spare as usize) as u16;
        self.next_spare += 1;
        self.remap[col] = phys;
        self.retired.push((col as u16, phys));
        self.refresh_stuck(col);
        Ok(phys)
    }
}

/// Fault bookkeeping for a [`crate::TcamSlab`]: the same information as
/// one [`FaultState`] per PE, but with the stuck and search masks laid out
/// to match the slab's arenas so fused kernels read them with the same
/// strides as the storage itself.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SlabFaultState {
    /// The fault model every decision is derived from.
    pub model: FaultModel,
    /// Global PE index of slot 0 (slot `s` is global PE `pe0 + s`).
    pub pe0: usize,
    /// PEs in the slab.
    pub pes: usize,
    /// Rows per PE.
    pub rows: usize,
    /// Logical columns per PE.
    pub cols: usize,
    /// Spare devices per PE.
    pub spares: usize,
    /// Per-PE count of spares consumed.
    pub next_spare: Vec<u16>,
    /// Remap tables, PE-major: `remap[pe * cols + col]`.
    pub remap: Vec<u16>,
    /// Per-PE retirement logs.
    pub retired: Vec<Vec<(u16, u16)>>,
    /// Stuck-at-0 masks in the slab's bit-plane layout: word
    /// `[col * rows * pw + row * pw + pe / 64]`, bit `pe % 64`, where
    /// `pw = pes.div_ceil(64)`. Bits at PE positions `>= pes` stay zero.
    pub stuck0: Vec<u64>,
    /// Stuck-at-1 masks in bit-plane layout.
    pub stuck1: Vec<u64>,
    /// Effective search masks in bit-plane layout: word
    /// `[row * pw + pe / 64]`, bit `pe % 64` set when the row is live
    /// (in range and not missing this epoch) for that PE.
    pub search_mask: Vec<u64>,
    /// Current run epoch.
    pub epoch: u64,
    /// Per-PE spares-exhausted marker (`(col, wear)`), for fail-fast.
    pub failed: Vec<Option<(u16, u64)>>,
}

impl SlabFaultState {
    /// Fresh fault state for a slab of `pes` PEs (`rows × cols` each)
    /// whose slot 0 is global PE `pe0`.
    pub fn new(
        model: FaultModel,
        pe0: usize,
        spares: usize,
        pes: usize,
        rows: usize,
        cols: usize,
    ) -> Self {
        let pw = pes.div_ceil(64);
        let mut state = SlabFaultState {
            model,
            pe0,
            pes,
            rows,
            cols,
            spares,
            next_spare: vec![0; pes],
            remap: (0..pes).flat_map(|_| 0..cols as u16).collect(),
            retired: vec![Vec::new(); pes],
            stuck0: vec![0; cols * rows * pw],
            stuck1: vec![0; cols * rows * pw],
            search_mask: vec![0; rows * pw],
            epoch: 0,
            failed: vec![None; pes],
        };
        for pe in 0..pes {
            for col in 0..cols {
                state.refresh_stuck(pe, col);
            }
            state.refresh_search_mask(pe);
        }
        state
    }

    /// Blocks per PE column (`rows.div_ceil(64)`).
    pub fn blocks(&self) -> usize {
        self.rows.div_ceil(64)
    }

    /// Spare devices still unused in slot `pe`.
    pub fn spares_left(&self, pe: usize) -> u16 {
        self.spares as u16 - self.next_spare[pe]
    }

    /// Words per plane row (`pes.div_ceil(64)`).
    pub fn pe_words(&self) -> usize {
        self.pes.div_ceil(64)
    }

    /// Words per column plane (`rows * pe_words`).
    pub fn plane_words(&self) -> usize {
        self.rows * self.pe_words()
    }

    /// Recompute the cached stuck masks of `(pe, col)` from the current
    /// backing device: derive the per-row-block masks, then scatter them
    /// into that PE's bit lane of the column's plane.
    fn refresh_stuck(&mut self, pe: usize, col: usize) {
        let bpp = self.blocks();
        let pw = self.pe_words();
        let phys = self.remap[pe * self.cols + col] as usize;
        let (global_pe, rows, model) = (self.pe0 + pe, self.rows, self.model);
        let mut tmp0 = vec![0u64; bpp];
        let mut tmp1 = vec![0u64; bpp];
        model.stuck_masks_into(global_pe, phys, rows, &mut tmp0, &mut tmp1);
        let base = col * rows * pw + pe / 64;
        let lane = 1u64 << (pe % 64);
        for row in 0..rows {
            let idx = base + row * pw;
            let (rw, rs) = (row / 64, row % 64);
            self.stuck0[idx] = self.stuck0[idx] & !lane | (tmp0[rw] >> rs & 1) << (pe % 64);
            self.stuck1[idx] = self.stuck1[idx] & !lane | (tmp1[rw] >> rs & 1) << (pe % 64);
        }
    }

    /// Recompute slot `pe`'s effective search mask for the current epoch
    /// and scatter it into that PE's bit lane of the mask plane.
    fn refresh_search_mask(&mut self, pe: usize) {
        let bpp = self.blocks();
        let pw = self.pe_words();
        let (global_pe, rows, epoch, model) = (self.pe0 + pe, self.rows, self.epoch, self.model);
        let mut miss = vec![0u64; bpp];
        model.miss_mask_into(global_pe, rows, epoch, &mut miss);
        let mut eff = vec![0u64; bpp];
        full_row_mask_into(rows, &mut eff);
        for (m, miss) in eff.iter_mut().zip(&miss) {
            *m &= !miss;
        }
        let lane = 1u64 << (pe % 64);
        for row in 0..rows {
            let idx = row * pw + pe / 64;
            let bit = (eff[row / 64] >> (row % 64) & 1) << (pe % 64);
            self.search_mask[idx] = self.search_mask[idx] & !lane | bit;
        }
    }

    /// Start a new run epoch across all PEs.
    pub fn advance_epoch(&mut self) {
        self.epoch += 1;
        if self.model.miss_per_million > 0 {
            for pe in 0..self.pes {
                self.refresh_search_mask(pe);
            }
        }
    }

    /// Retire logical column `col` of slot `pe` onto its next spare
    /// device; mirrors [`FaultState::retire`].
    ///
    /// # Errors
    ///
    /// [`FaultError::SparesExhausted`] (with the *global* PE index) when
    /// slot `pe` has no spares left.
    pub fn retire(&mut self, pe: usize, col: usize, wear: u64) -> Result<u16, FaultError> {
        if (self.next_spare[pe] as usize) >= self.spares {
            self.failed[pe] = Some((col as u16, wear));
            return Err(FaultError::SparesExhausted {
                pe: self.pe0 + pe,
                col: col as u16,
                wear,
            });
        }
        let phys = (self.cols + self.next_spare[pe] as usize) as u16;
        self.next_spare[pe] += 1;
        self.remap[pe * self.cols + col] = phys;
        self.retired[pe].push((col as u16, phys));
        self.refresh_stuck(pe, col);
        Ok(phys)
    }

    /// Rebuild a slab fault state from serialized bookkeeping (the byte
    /// image carries only the model, remap tables, and counters — stuck
    /// and search masks are pure functions of those and are recomputed
    /// here).
    ///
    /// # Panics
    ///
    /// Panics if the per-PE vectors do not all have `pes` entries (or
    /// `pes * cols` for `remap`).
    #[allow(clippy::too_many_arguments)]
    pub fn restore(
        model: FaultModel,
        pe0: usize,
        spares: usize,
        pes: usize,
        rows: usize,
        cols: usize,
        epoch: u64,
        next_spare: Vec<u16>,
        remap: Vec<u16>,
        retired: Vec<Vec<(u16, u16)>>,
        failed: Vec<Option<(u16, u64)>>,
    ) -> Self {
        assert_eq!(next_spare.len(), pes, "next_spare length mismatch");
        assert_eq!(remap.len(), pes * cols, "remap length mismatch");
        assert_eq!(retired.len(), pes, "retired length mismatch");
        assert_eq!(failed.len(), pes, "failed length mismatch");
        let mut state = SlabFaultState::new(model, pe0, spares, pes, rows, cols);
        state.epoch = epoch;
        state.next_spare = next_spare;
        state.remap = remap;
        state.retired = retired;
        state.failed = failed;
        for pe in 0..pes {
            for col in 0..cols {
                state.refresh_stuck(pe, col);
            }
            state.refresh_search_mask(pe);
        }
        state
    }

    /// Extract slot `pe`'s fault state as a standalone per-array
    /// [`FaultState`], bit-identical to the one an [`crate::TcamArray`]
    /// on the same global PE would hold after the same history.
    pub fn to_array(&self, pe: usize) -> FaultState {
        let bpp = self.blocks();
        let pw = self.pe_words();
        let (w, s) = (pe / 64, pe % 64);
        let mut stuck0 = vec![0u64; self.cols * bpp];
        let mut stuck1 = vec![0u64; self.cols * bpp];
        for col in 0..self.cols {
            for row in 0..self.rows {
                let idx = (col * self.rows + row) * pw + w;
                stuck0[col * bpp + row / 64] |= (self.stuck0[idx] >> s & 1) << (row % 64);
                stuck1[col * bpp + row / 64] |= (self.stuck1[idx] >> s & 1) << (row % 64);
            }
        }
        let mut search_mask = vec![0u64; bpp];
        for row in 0..self.rows {
            search_mask[row / 64] |= (self.search_mask[row * pw + w] >> s & 1) << (row % 64);
        }
        FaultState {
            model: self.model,
            pe: self.pe0 + pe,
            rows: self.rows,
            spares: self.spares,
            next_spare: self.next_spare[pe],
            remap: self.remap[pe * self.cols..(pe + 1) * self.cols].to_vec(),
            retired: self.retired[pe].clone(),
            stuck0,
            stuck1,
            search_mask,
            epoch: self.epoch,
            failed: self.failed[pe],
        }
    }

    /// Reassemble a slab fault state from per-array states.
    ///
    /// # Panics
    ///
    /// The states must share model, geometry, spare count, and epoch, and
    /// cover contiguous global PEs (`states[i].pe == states[0].pe + i`).
    pub fn from_arrays(states: &[&FaultState]) -> Self {
        let first = states[0];
        let (rows, cols) = (first.rows, first.cols());
        let bpp = first.blocks();
        let pes = states.len();
        let pw = pes.div_ceil(64);
        let mut slab = SlabFaultState {
            model: first.model,
            pe0: first.pe,
            pes,
            rows,
            cols,
            spares: first.spares,
            next_spare: Vec::with_capacity(pes),
            remap: vec![0; pes * cols],
            retired: Vec::with_capacity(pes),
            stuck0: vec![0; cols * rows * pw],
            stuck1: vec![0; cols * rows * pw],
            search_mask: vec![0; rows * pw],
            epoch: first.epoch,
            failed: Vec::with_capacity(pes),
        };
        for (i, st) in states.iter().enumerate() {
            assert_eq!(st.model, first.model, "fault model mismatch");
            assert_eq!(st.pe, first.pe + i, "fault PE ids must be contiguous");
            assert_eq!(st.rows, rows, "fault geometry mismatch");
            assert_eq!(st.cols(), cols, "fault geometry mismatch");
            assert_eq!(st.spares, first.spares, "fault spare count mismatch");
            assert_eq!(st.epoch, first.epoch, "fault epoch mismatch");
            slab.next_spare.push(st.next_spare);
            slab.retired.push(st.retired.clone());
            slab.failed.push(st.failed);
            slab.remap[i * cols..(i + 1) * cols].copy_from_slice(&st.remap);
            let lane = 1u64 << (i % 64);
            for col in 0..cols {
                for row in 0..rows {
                    let idx = (col * rows + row) * pw + i / 64;
                    if st.stuck0[col * bpp + row / 64] >> (row % 64) & 1 != 0 {
                        slab.stuck0[idx] |= lane;
                    }
                    if st.stuck1[col * bpp + row / 64] >> (row % 64) & 1 != 0 {
                        slab.stuck1[idx] |= lane;
                    }
                }
            }
            for row in 0..rows {
                if st.search_mask[row / 64] >> (row % 64) & 1 != 0 {
                    slab.search_mask[row * pw + i / 64] |= lane;
                }
            }
        }
        slab
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> FaultModel {
        FaultModel {
            seed: 42,
            stuck_per_million: 80_000,
            miss_per_million: 50_000,
            endurance_limit: Some(100),
        }
    }

    #[test]
    fn none_is_inactive() {
        assert!(!FaultModel::none().is_active());
        assert!(model().is_active());
        assert!(FaultModel {
            endurance_limit: Some(1),
            ..FaultModel::none()
        }
        .is_active());
    }

    #[test]
    fn decisions_are_deterministic_and_masks_disjoint() {
        let m = model();
        let rows: usize = 130;
        let bpp = rows.div_ceil(64);
        let (mut s0a, mut s1a) = (vec![0; bpp], vec![0; bpp]);
        let (mut s0b, mut s1b) = (vec![0; bpp], vec![0; bpp]);
        m.stuck_masks_into(3, 7, rows, &mut s0a, &mut s1a);
        m.stuck_masks_into(3, 7, rows, &mut s0b, &mut s1b);
        assert_eq!(s0a, s0b);
        assert_eq!(s1a, s1b);
        for (a, b) in s0a.iter().zip(&s1a) {
            assert_eq!(a & b, 0, "stuck-at-0 and stuck-at-1 overlap");
        }
        // Tail bits beyond `rows` stay clear.
        assert_eq!(s0a[bpp - 1] >> (rows % 64), 0);
        assert_eq!(s1a[bpp - 1] >> (rows % 64), 0);
        // At 8% density over 260 cells both polarities should appear.
        let any0: u64 = s0a.iter().sum();
        let any1: u64 = s1a.iter().sum();
        assert!(any0 != 0 || any1 != 0, "expected some stuck cells");
    }

    #[test]
    fn miss_mask_depends_on_epoch() {
        let m = model();
        let rows = 256;
        let bpp = rows / 64;
        let mut e0 = vec![0; bpp];
        let mut e1 = vec![0; bpp];
        m.miss_mask_into(0, rows, 0, &mut e0);
        m.miss_mask_into(0, rows, 1, &mut e1);
        assert_ne!(e0, e1, "miss set should be re-hashed per epoch");
    }

    #[test]
    fn retire_walks_spares_then_fails_typed() {
        let mut st = FaultState::new(model(), 5, 2, 64, 8);
        assert_eq!(st.spares_left(), 2);
        let p0 = st.retire(3, 120).unwrap();
        assert_eq!(p0, 8);
        assert_eq!(st.remap[3], 8);
        let p1 = st.retire(3, 120).unwrap();
        assert_eq!(p1, 9);
        assert_eq!(st.retired, vec![(3, 8), (3, 9)]);
        assert_eq!(st.spares_left(), 0);
        let err = st.retire(1, 130).unwrap_err();
        assert_eq!(
            err,
            FaultError::SparesExhausted {
                pe: 5,
                col: 1,
                wear: 130
            }
        );
        assert_eq!(st.failed, Some((1, 130)));
        assert!(err.to_string().contains("PE 5"));
    }

    #[test]
    fn retirement_swaps_the_backing_devices_stuck_bits() {
        let m = FaultModel {
            stuck_per_million: 300_000,
            ..model()
        };
        let mut st = FaultState::new(m, 1, 1, 256, 4);
        let before: (Vec<u64>, Vec<u64>) = {
            let (a, b) = st.stuck_col(2);
            (a.to_vec(), b.to_vec())
        };
        st.retire(2, 50).unwrap();
        let (a, b) = st.stuck_col(2);
        assert!(
            (a, b) != (&before.0[..], &before.1[..]),
            "spare device should have different stuck bits at 30% density"
        );
    }

    #[test]
    fn slab_round_trips_through_arrays() {
        let m = model();
        let mut slab = SlabFaultState::new(m, 4, 2, 3, 100, 6);
        slab.advance_epoch();
        slab.retire(1, 2, 200).unwrap();
        slab.retire(1, 2, 200).unwrap();
        assert!(slab.retire(1, 4, 300).is_err());
        let arrays: Vec<FaultState> = (0..3).map(|pe| slab.to_array(pe)).collect();
        assert_eq!(arrays[1].retired, vec![(2, 6), (2, 7)]);
        assert_eq!(arrays[1].failed, Some((4, 300)));
        assert_eq!(arrays[0].pe, 4);
        assert_eq!(arrays[2].pe, 6);
        let rebuilt = SlabFaultState::from_arrays(&arrays.iter().collect::<Vec<_>>());
        assert_eq!(rebuilt, slab);
    }

    #[test]
    fn slab_to_array_matches_standalone_construction() {
        let m = model();
        let slab = SlabFaultState::new(m, 10, 1, 4, 96, 5);
        for pe in 0..4 {
            assert_eq!(slab.to_array(pe), FaultState::new(m, 10 + pe, 1, 96, 5));
        }
    }
}
