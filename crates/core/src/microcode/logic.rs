//! Bitwise logic, copies, and shifts.
//!
//! Shifts by constants are pure layout renames ([`Field::bits`] views plus
//! shared zero columns) and cost zero operations — one of the "efficient
//! shift and bit-wise logical operations" the paper credits for Hyper-AP's
//! advantage on complex operations (§VI-C).

use super::bit;
use super::Microcode;
use crate::field::{Field, Slot};

impl Microcode {
    /// Bitwise binary operation `f` applied per bit (zero-extending the
    /// narrower operand).
    pub fn bitwise(
        &mut self,
        a: &Field,
        b: &Field,
        f: impl Fn(bool, bool) -> bool,
        name: &str,
    ) -> Field {
        let w = a.width().max(b.width());
        let out = self.alloc_plain(name, w);
        for i in 0..w {
            let ai = (i < a.width()).then(|| a.slot(i));
            let bi = (i < b.width()).then(|| b.slot(i));
            let col = out.slot(i).base_col();
            match (ai, bi) {
                (Some(sa), Some(sb)) => {
                    self.lut1_into(vec![sa, sb], |m| f(bit(m, 0), bit(m, 1)), col)
                }
                (Some(sa), None) => self.lut1_into(vec![sa], |m| f(bit(m, 0), false), col),
                (None, Some(sb)) => self.lut1_into(vec![sb], |m| f(false, bit(m, 0)), col),
                (None, None) => unreachable!("w = max(widths)"),
            }
        }
        out
    }

    /// `a & b`.
    pub fn and(&mut self, a: &Field, b: &Field) -> Field {
        self.bitwise(a, b, |x, y| x && y, "and")
    }

    /// `a | b`.
    pub fn or(&mut self, a: &Field, b: &Field) -> Field {
        self.bitwise(a, b, |x, y| x || y, "or")
    }

    /// `a ^ b`.
    pub fn xor(&mut self, a: &Field, b: &Field) -> Field {
        self.bitwise(a, b, |x, y| x != y, "xor")
    }

    /// `!a` (bitwise complement).
    pub fn not(&mut self, a: &Field) -> Field {
        let out = self.alloc_plain("not", a.width());
        for i in 0..a.width() {
            self.lut1_into(vec![a.slot(i)], |m| !bit(m, 0), out.slot(i).base_col());
        }
        out
    }

    /// Copy `a` into fresh plain columns (1 search + 1 write per bit).
    pub fn copy(&mut self, a: &Field) -> Field {
        let out = self.alloc_plain(format!("copy({})", a.name), a.width());
        for i in 0..a.width() {
            self.lut1_into(vec![a.slot(i)], |m| bit(m, 0), out.slot(i).base_col());
        }
        out
    }

    /// `a << k` within `width` result bits: a free layout rename.
    pub fn shl(&mut self, a: &Field, k: usize, width: usize) -> Field {
        let zeros = self.zero_field(k.min(width));
        let mut slots: Vec<Slot> = zeros.slots.clone();
        for i in 0..width.saturating_sub(k) {
            if i < a.width() {
                slots.push(a.slot(i));
            } else {
                slots.push(self.zero_field(1).slot(0));
            }
        }
        slots.truncate(width);
        Field::new(format!("{}<<{k}", a.name), slots)
    }

    /// `a >> k` (logical): a free layout rename, zero-extended to `a`'s
    /// width.
    pub fn shr(&mut self, a: &Field, k: usize) -> Field {
        let w = a.width();
        let mut slots: Vec<Slot> = (k..w).map(|i| a.slot(i)).collect();
        let zeros = self.zero_field(w - slots.len());
        slots.extend(zeros.slots);
        Field::new(format!("{}>>{k}", a.name), slots)
    }

    /// Select per row: `pred ? t : f`, zero-extending the narrower arm.
    ///
    /// # Panics
    ///
    /// Panics if `pred` is not a 1-bit field.
    pub fn select(&mut self, pred: &Field, t: &Field, f: &Field) -> Field {
        assert_eq!(pred.width(), 1, "predicate must be one bit");
        let p = pred.slot(0);
        let w = t.width().max(f.width());
        let out = self.alloc_plain("select", w);
        for i in 0..w {
            let ti = (i < t.width()).then(|| t.slot(i));
            let fi = (i < f.width()).then(|| f.slot(i));
            let col = out.slot(i).base_col();
            match (ti, fi) {
                (Some(st), Some(sf)) => self.lut1_into(
                    vec![p, st, sf],
                    |m| if bit(m, 0) { bit(m, 1) } else { bit(m, 2) },
                    col,
                ),
                (Some(st), None) => self.lut1_into(vec![p, st], |m| bit(m, 0) && bit(m, 1), col),
                (None, Some(sf)) => self.lut1_into(vec![p, sf], |m| !bit(m, 0) && bit(m, 1), col),
                (None, None) => unreachable!(),
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::*;
    use super::*;
    use crate::machine::HyperPe;

    const CASES: [(u64, u64); 5] = [(0, 0), (0xFF, 0x0F), (0xA5, 0x5A), (1, 2), (0x42, 0x42)];

    #[test]
    fn and_or_xor_not_are_correct() {
        let and = run_binary_plain(8, &CASES, |mc, a, b| mc.and(a, b));
        let or = run_binary_plain(8, &CASES, |mc, a, b| mc.or(a, b));
        let xor = run_binary_plain(8, &CASES, |mc, a, b| mc.xor(a, b));
        for (i, (a, b)) in CASES.iter().enumerate() {
            assert_eq!(and[i], a & b);
            assert_eq!(or[i], a | b);
            assert_eq!(xor[i], a ^ b);
        }
        let values = [0u64, 0xFF, 0xA5];
        let not = run_unary(8, &values, |mc, a| mc.not(a));
        for (v, n) in values.iter().zip(&not) {
            assert_eq!(*n, !v & 0xFF);
        }
    }

    #[test]
    fn paired_xor_needs_one_search_per_bit() {
        let mut mc = Microcode::new(128);
        let (a, b) = mc.alloc_paired_inputs("a", "b", 8);
        mc.xor(&a, &b);
        let c = mc.program().op_counts();
        assert_eq!(c.searches, 8, "pair subset {{01,10}} is a single key");
        assert_eq!(c.writes(), 8);
    }

    #[test]
    fn shifts_are_free_and_correct() {
        let mut mc = Microcode::new(64);
        let a = mc.alloc_plain_input("a", 8);
        let l = mc.shl(&a, 3, 8);
        let r = mc.shr(&a, 2);
        let baseline = mc.program().op_counts();
        assert_eq!(baseline.searches, 0, "shifts are layout renames");
        assert_eq!(baseline.writes(), 0);
        let mut pe = HyperPe::new(1, 64);
        a.store(&mut pe, 0, 0b1011_0110);
        mc.program().run(&mut pe);
        assert_eq!(l.read(&pe, 0), (0b1011_0110u64 << 3) & 0xFF);
        assert_eq!(r.read(&pe, 0), 0b1011_0110u64 >> 2);
    }

    #[test]
    fn copy_duplicates_and_detaches() {
        let values = [3u64, 250];
        let outs = run_unary(8, &values, |mc, a| mc.copy(a));
        assert_eq!(outs, vec![3, 250]);
    }

    #[test]
    fn select_picks_per_row() {
        let mut mc = Microcode::new(128);
        let p = mc.alloc_plain_input("p", 1);
        let t = mc.alloc_plain_input("t", 8);
        let f = mc.alloc_plain_input("f", 8);
        let out = mc.select(&p, &t, &f);
        let mut pe = HyperPe::new(2, 128);
        for row in 0..2 {
            p.store(&mut pe, row, row as u64); // row0: pred=0, row1: pred=1
            t.store(&mut pe, row, 0xAA);
            f.store(&mut pe, row, 0x55);
        }
        mc.program().run(&mut pe);
        assert_eq!(out.read(&pe, 0), 0x55);
        assert_eq!(out.read(&pe, 1), 0xAA);
    }
}
