//! Trace compilation: precompiled per-PE segment traces.
//!
//! The interpreter ([`crate::ApMachine::run_interpreted`]) re-decodes every
//! [`Instruction`] per group per step and — in threaded modes — forks and
//! joins worker threads once *per instruction*. Hyper-AP programs are
//! bit-serial loops (the lowered 32-bit adder is 380 stream instructions of
//! repeating `SetKey`/`Search`/`Write` shapes), so almost all of that work
//! can be hoisted out of the hot loop and paid once per stream instead of
//! once per instruction per PE.
//!
//! [`CompiledTrace::compile`] turns an `&[Instruction]` stream into:
//!
//! * **Resolved micro-ops** ([`MicroOp`]): every `SetKey` is folded into a
//!   precompiled `(column, bit)` search plan (shared by all PEs of the
//!   group), every `Write` is resolved to its store value at compile time,
//!   and the per-instruction bookkeeping (`OpCounts` deltas, Table-I
//!   cycles) is pre-aggregated per segment.
//! * **Segments** split at cross-PE synchronization points (`Count`,
//!   `Index`, `MovR`, `ReadR`/`WriteR` host transfers, `Broadcast`; see
//!   [`SyncClass`]). Within a segment every PE is independent, so execution
//!   inverts the loop: each worker runs its PE chunk through the *entire
//!   segment* before joining — one fork-join per segment instead of one per
//!   instruction, and each PE's columns stay cache-resident across the
//!   whole segment.
//! * **Fused micro-ops** from the peephole pass ([`CompiledTrace::peephole`],
//!   applied by [`compile`](CompiledTrace::compile) and skipped by
//!   [`compile_unfused`](CompiledTrace::compile_unfused)): the canonical AP
//!   rhythm `Search → [Search acc]* → Write…` collapses into
//!   [`MicroOp::SearchWrite`] / [`MicroOp::SearchWriteMulti`], consecutive
//!   writes batch into [`MicroOp::WriteMulti`], dead and redundant searches
//!   are elided (billed through [`Segment::elided`] so per-PE `OpCounts`
//!   stay architecturally unfused), and a search whose plan extends the
//!   previous one narrows the live tags incrementally via
//!   [`MicroOp::SearchDelta`]. The fused ops execute as single-sweep slab
//!   kernels ([`hyperap_tcam::slab::TcamSlab::search_write_multi`]) that
//!   never materialize intermediate tag vectors.
//!
//! # Equivalence guarantee
//!
//! Trace execution is bit-identical to the interpreter (property-tested in
//! `tests/engine_equivalence.rs`, including `RunStats`, per-PE `OpCounts`
//! and wear accounting) because:
//!
//! * Segment-internal micro-ops touch only PE-private state (TCAM cells,
//!   tags, latch) — no other group can observe them, so executing a whole
//!   segment as one block commutes with every other group's work.
//! * `SetTag`/`ReadTag` touch the group's data registers, which *are*
//!   remotely writable (`MovR`/`ReadR`/`WriteR`). They stay segment-internal
//!   only when no **other** stream contains a remote-register instruction
//!   ([`Instruction::touches_remote_regs`]); otherwise the compiler demotes
//!   them to synchronization points, restoring instruction-granular order.
//! * Synchronization points execute through the interpreter's own
//!   instruction path, and the event loop schedules *steps* by the same
//!   `(issue cycle, group)` key the interpreter uses for instructions — all
//!   cycle costs are static (Table I), so sync points from different groups
//!   retire in exactly the interpreter's order.
//!
//! # Fault-model soundness
//!
//! The peephole pass stays bit-identical under an active
//! [`hyperap_tcam::FaultModel`] (`tests/fault_equivalence.rs`) because
//! every fault mechanism is invariant under the rewrites it performs:
//!
//! * **Stuck cells** are a property of the *storage*, enforced idempotently
//!   after every write path. Fusing a search→write chain changes when the
//!   enforcement pass runs (once per written column at kernel end instead
//!   of per write), never what it computes — the fused kernel's tiles are
//!   disjoint and read before they write, so re-clamping a column at the
//!   end equals clamping after each store.
//! * **Transient search misses** are a pure function of `(PE, row, run
//!   epoch)`, static for an entire run. Eliding a dead or redundant search,
//!   or narrowing incrementally via [`MicroOp::SearchDelta`], is sound
//!   because the repeated/extended search would have masked exactly the
//!   same rows; the epoch only advances between runs, never inside one.
//! * **Endurance retirement** is serviced at run end, in global PE order,
//!   from wear counters the fused kernels maintain identically to the
//!   unfused ops — so remap tables and spare exhaustion cannot depend on
//!   fusion decisions.

use crate::config::ArchConfig;
use hyperap_isa::{Instruction, SyncClass};
use hyperap_model::timing::OpCounts;
use hyperap_tcam::bit::KeyBit;
use hyperap_tcam::key::SearchKey;

/// Maximum number of search plans or write columns folded into one fused
/// micro-op ([`MicroOp::SearchWriteMulti`], [`MicroOp::WriteMulti`]), so
/// engines can resolve them into fixed-size stack buffers instead of
/// allocating per dispatch. Longer chains split; the continuation chain
/// starts with `acc = true` and excess writes trail as their own batch.
pub const MAX_FUSED: usize = 8;

/// Which precompiled search plan a micro-op uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanRef {
    /// The key register's contents when the trace run starts (a stream may
    /// `Search` before its first `SetKey`, inheriting machine state).
    Entry,
    /// The plan compiled from the n-th `SetKey` of the stream.
    Compiled(usize),
}

/// One resolved per-PE operation of a segment. Everything a micro-op needs
/// beyond PE state is precomputed: plans are indices into the trace's plan
/// table, write values are resolved `KeyBit`s.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MicroOp {
    /// `Search`: apply a precompiled plan; optionally latch into the
    /// encoder DFF stage.
    Search {
        /// The plan to apply.
        plan: PlanRef,
        /// OR into the tags through the accumulation unit.
        acc: bool,
        /// Latch the result for a later encoded write.
        encode: bool,
    },
    /// Single-column `Write` whose store value was resolved at compile time
    /// (emitted only when the key bit actually stores — a masked bit is a
    /// no-op on PE state and folds into the segment's `OpCounts` delta).
    Write {
        /// Target column.
        col: u8,
        /// Resolved key-register value (never `Masked`).
        value: KeyBit,
    },
    /// Single-column `Write` issued before the stream's first `SetKey`: the
    /// value comes from the entry key register at run time.
    WriteEntry {
        /// Target column.
        col: u8,
    },
    /// Encoded two-column `Write` through the two-bit encoder.
    WriteEncoded {
        /// First of the two target columns.
        col: u8,
    },
    /// Copy the PE's data register into its tags.
    SetTag,
    /// Copy the PE's tags into its data register.
    ReadTag,
    /// Peephole-fused `Search` followed by a single-column `Write`: one
    /// linear pass computes the tags and conditionally stores, without
    /// materializing the tag vector between the two architectural ops.
    SearchWrite {
        /// The plan to apply.
        plan: PlanRef,
        /// OR into the tags through the accumulation unit.
        acc: bool,
        /// Latch the search result for a later encoded write.
        encode: bool,
        /// Target column of the fused write.
        col: u8,
        /// Resolved key-register value (never `Masked`).
        value: KeyBit,
    },
    /// Peephole-fused chain of searches (first with `acc` as given, the
    /// rest accumulating: `tags = (acc ? tags : 0) | match(plan₀) | …`)
    /// followed by zero or more single-column writes under the final tags.
    /// At most [`MAX_FUSED`] plans and writes each; writes apply in order,
    /// so repeated columns behave like the unfused sequence.
    SearchWriteMulti {
        /// Plans of the fused search chain, in program order.
        plans: Vec<PlanRef>,
        /// Whether the *first* search accumulates into the incoming tags.
        acc: bool,
        /// Latch the final tags for a later encoded write (only the last
        /// search of a fused chain may carry the encode flag).
        encode: bool,
        /// Fused `(column, resolved value)` writes, in program order.
        writes: Vec<(u8, KeyBit)>,
    },
    /// Peephole-batched run of consecutive single-column writes under the
    /// same tags (at most [`MAX_FUSED`], applied in order).
    WriteMulti {
        /// `(column, resolved value)` writes, in program order.
        writes: Vec<(u8, KeyBit)>,
    },
    /// Incremental search: the previous search's plan is a subset of this
    /// one and its columns are unwritten since, so the live tags already
    /// hold the common prefix — narrow them by the extra `(column, bit)`
    /// entries only, skipping the row-mask re-initialization. `plan`
    /// indexes [`CompiledTrace::plans`] (delta plans are appended there by
    /// the peephole pass). Architecturally this is still one full
    /// `SetKey`+`Search`, and is counted as such.
    SearchDelta {
        /// Index of the delta plan in the trace's plan table.
        plan: usize,
        /// Latch the result for a later encoded write.
        encode: bool,
    },
}

/// A maximal run of instructions between synchronization points: per-PE
/// micro-ops plus the pre-aggregated group-level bookkeeping of every
/// instruction folded into it (including ops with no PE-state effect, e.g.
/// `SetKey` and `Wait`).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Segment {
    /// Per-PE operations, in program order.
    pub ops: Vec<MicroOp>,
    /// Group-level `RunStats` delta for the folded instructions.
    pub ops_delta: OpCounts,
    /// Number of stream instructions folded into this segment.
    pub instructions: usize,
    /// Architectural per-PE ops the peephole pass elided (dead and
    /// redundant searches). The engines skip the work but every active PE
    /// is still billed these counts, so `OpCounts` — and with it the
    /// paper-facing cycle numbers — report the *unfused* instruction
    /// stream.
    pub elided: OpCounts,
}

impl Segment {
    /// The `OpCounts` delta one *active PE* accrues executing this segment —
    /// what the per-PE engine adds per micro-op, pre-aggregated so a slab
    /// engine can account a whole segment with one `add` per active PE.
    ///
    /// `entry` is the group's entry-key snapshot; it decides whether a
    /// `WriteEntry` actually stores (a masked entry bit is a no-op the
    /// per-PE path never reaches [`hyperap_core::machine::HyperPe::write`]
    /// for).
    ///
    /// # Panics
    ///
    /// Panics if the segment contains a `WriteEntry` and `entry` is `None`.
    pub fn pe_ops_delta(&self, entry: Option<&SearchKey>) -> OpCounts {
        let mut d = OpCounts::default();
        for op in &self.ops {
            match op {
                // search_planned counts one search plus one SetKey.
                MicroOp::Search { .. } => {
                    d.searches += 1;
                    d.set_keys += 1;
                }
                MicroOp::Write { .. } => d.writes_single += 1,
                MicroOp::WriteEntry { col } => {
                    let value = entry.expect("entry key snapshotted").bit(*col as usize);
                    if value.write_value().is_some() {
                        d.writes_single += 1;
                    }
                }
                MicroOp::WriteEncoded { .. } => d.writes_encoded += 1,
                // Tag transfers are counted at group level only.
                MicroOp::SetTag | MicroOp::ReadTag => {}
                // Fused ops bill their unfused architectural constituents.
                MicroOp::SearchWrite { .. } => {
                    d.searches += 1;
                    d.set_keys += 1;
                    d.writes_single += 1;
                }
                MicroOp::SearchWriteMulti { plans, writes, .. } => {
                    d.searches += plans.len() as u64;
                    d.set_keys += plans.len() as u64;
                    d.writes_single += writes.len() as u64;
                }
                MicroOp::WriteMulti { writes } => d.writes_single += writes.len() as u64,
                MicroOp::SearchDelta { .. } => {
                    d.searches += 1;
                    d.set_keys += 1;
                }
            }
        }
        d.add(&self.elided);
        d
    }
}

/// One schedulable step of a compiled trace.
#[derive(Debug, Clone, PartialEq)]
pub enum StepKind {
    /// Run a whole segment (index into [`CompiledTrace::segments`]) with a
    /// single fork-join.
    Segment(usize),
    /// Execute one synchronization-point instruction through the
    /// interpreter path.
    Sync(Instruction),
}

/// A step plus its total Table-I cycle cost (a segment's cost is the sum of
/// its folded instructions'), so the cross-group event loop can schedule
/// steps by the same `(issue cycle, group)` key the interpreter uses.
#[derive(Debug, Clone, PartialEq)]
pub struct Step {
    /// Cycle cost of the whole step.
    pub cycles: u64,
    /// What the step does.
    pub kind: StepKind,
}

/// A stream precompiled for segment execution. Compile once, run on any
/// machine with the geometry it was compiled for ([`crate::ApMachine::run_compiled`]).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CompiledTrace {
    /// Scheduling steps in program order.
    pub steps: Vec<Step>,
    /// Segment bodies referenced by [`StepKind::Segment`].
    pub segments: Vec<Segment>,
    /// Precompiled search plans, one per `SetKey` in stream order.
    pub plans: Vec<Vec<(usize, KeyBit)>>,
    /// The last `SetKey`'s key — restored into the group's key register
    /// when the trace finishes, so a later run sees the same machine state
    /// the interpreter would leave.
    pub final_key: Option<SearchKey>,
    /// Plan-table index of [`final_key`](Self::final_key)'s compiled plan
    /// (`Some` iff `final_key` is). The peephole pass appends delta plans
    /// to [`plans`](Self::plans), so "the last plan" is not "the last
    /// `SetKey`'s plan" — engines restore through this index.
    pub final_plan: Option<usize>,
    /// True if any micro-op reads the entry key/plan (the machine snapshots
    /// the group's key state at run start only when needed).
    pub uses_entry_key: bool,
}

impl CompiledTrace {
    /// Compile one stream and apply the [`peephole`](Self::peephole)
    /// fusion pass. `reg_sync` demotes `SetTag`/`ReadTag` to
    /// synchronization points — required when another group's stream can
    /// touch this group's data registers (see [`compile_streams`], which
    /// derives the flag; pass `false` for a single-stream machine).
    pub fn compile(stream: &[Instruction], config: &ArchConfig, reg_sync: bool) -> Self {
        let mut trace = Self::compile_unfused(stream, config, reg_sync);
        trace.peephole();
        trace
    }

    /// Compile one stream without the peephole pass: every segment holds
    /// exactly the unfused micro-ops of its instructions. This is the
    /// reference the equivalence suites pin the fused engines against, and
    /// the baseline the benchmarks compare fusion to.
    pub fn compile_unfused(stream: &[Instruction], config: &ArchConfig, reg_sync: bool) -> Self {
        let mut trace = CompiledTrace::default();
        let mut seg = Segment::default();
        let mut seg_cycles = 0u64;
        // The current key as a compile-time value: `None` until the first
        // SetKey (searches/writes before it resolve against the entry key).
        let mut cur_key: Option<&SearchKey> = None;
        let mut cur_plan = PlanRef::Entry;
        let flush = |trace: &mut CompiledTrace, seg: &mut Segment, seg_cycles: &mut u64| {
            if seg.instructions > 0 {
                trace.steps.push(Step {
                    cycles: *seg_cycles,
                    kind: StepKind::Segment(trace.segments.len()),
                });
                trace.segments.push(std::mem::take(seg));
            }
            *seg_cycles = 0;
        };
        for inst in stream {
            let sync = match inst.sync_class() {
                SyncClass::PeLocal => false,
                SyncClass::DataReg => reg_sync,
                SyncClass::SyncPoint => true,
            };
            if sync {
                flush(&mut trace, &mut seg, &mut seg_cycles);
                trace.steps.push(Step {
                    cycles: inst.cycles(&config.tech),
                    kind: StepKind::Sync(inst.clone()),
                });
                continue;
            }
            seg_cycles += inst.cycles(&config.tech);
            seg.instructions += 1;
            let delta = &mut seg.ops_delta;
            match inst {
                Instruction::SetKey { key } => {
                    trace.plans.push(key.compile_plan());
                    cur_plan = PlanRef::Compiled(trace.plans.len() - 1);
                    cur_key = Some(key);
                    delta.set_keys += 1;
                }
                Instruction::Search { acc, encode } => {
                    seg.ops.push(MicroOp::Search {
                        plan: cur_plan,
                        acc: *acc,
                        encode: *encode,
                    });
                    trace.uses_entry_key |= cur_plan == PlanRef::Entry;
                    delta.searches += 1;
                }
                Instruction::Write { col, encode } => {
                    if *encode {
                        seg.ops.push(MicroOp::WriteEncoded { col: *col });
                        delta.writes_encoded += 1;
                    } else {
                        delta.writes_single += 1;
                        match cur_key {
                            Some(key) => {
                                let value = key.bit(*col as usize);
                                if value.write_value().is_some() {
                                    seg.ops.push(MicroOp::Write { col: *col, value });
                                }
                                // A masked value stores nothing: no micro-op.
                            }
                            None => {
                                seg.ops.push(MicroOp::WriteEntry { col: *col });
                                trace.uses_entry_key = true;
                            }
                        }
                    }
                }
                Instruction::SetTag => {
                    seg.ops.push(MicroOp::SetTag);
                    delta.tag_ops += 1;
                }
                Instruction::ReadTag => {
                    seg.ops.push(MicroOp::ReadTag);
                    delta.tag_ops += 1;
                }
                Instruction::Wait { cycles } => {
                    delta.wait_cycles += *cycles as u64;
                }
                // SyncPoint instructions never reach this arm.
                _ => unreachable!("sync points are flushed above"),
            }
        }
        flush(&mut trace, &mut seg, &mut seg_cycles);
        trace.final_key = cur_key.cloned();
        trace.final_plan = match cur_plan {
            PlanRef::Compiled(i) => Some(i),
            PlanRef::Entry => None,
        };
        trace
    }

    /// Rewrite every segment's micro-ops through the fusion peephole, in
    /// four passes per segment:
    ///
    /// 1. **Dead-search elimination** — a non-latching `Search` whose tags
    ///    are overwritten (`SetTag` or a non-accumulating `Search`) before
    ///    anything reads them is removed.
    /// 2. **Redundant / incremental searches** — a search identical to the
    ///    still-valid previous one is elided; one whose plan extends the
    ///    previous becomes a [`MicroOp::SearchDelta`] over the extra
    ///    entries only.
    /// 3. **Write batching** — consecutive `Write`s collapse into
    ///    [`MicroOp::WriteMulti`].
    /// 4. **Search→write fusion** — a maximal `Search → [Search acc]*`
    ///    chain plus an optional trailing write batch becomes one
    ///    [`MicroOp::SearchWrite`] / [`MicroOp::SearchWriteMulti`].
    ///
    /// Elided searches are billed through [`Segment::elided`]; fused ops
    /// bill their unfused constituents in [`Segment::pe_ops_delta`] — the
    /// pass never changes any `OpCounts` or cycle number, only the number
    /// of arena sweeps the engines perform.
    pub fn peephole(&mut self) {
        for seg in &mut self.segments {
            peephole::eliminate_dead_searches(seg);
            peephole::narrow_repeated_searches(seg, &mut self.plans);
            peephole::batch_writes(seg);
            peephole::fuse_search_writes(seg);
        }
    }

    /// Number of segments.
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// Number of synchronization-point steps.
    pub fn sync_count(&self) -> usize {
        self.steps
            .iter()
            .filter(|s| matches!(s.kind, StepKind::Sync(_)))
            .count()
    }

    /// Total stream instructions represented (segments + sync points).
    pub fn instruction_count(&self) -> usize {
        self.segments.iter().map(|s| s.instructions).sum::<usize>() + self.sync_count()
    }
}

/// The segment-local rewrite passes behind [`CompiledTrace::peephole`].
mod peephole {
    use super::{KeyBit, MicroOp, PlanRef, Segment, MAX_FUSED};

    /// Remove searches whose tags nothing ever observes: every micro-op
    /// either reads the tags (`Write*`, `ReadTag`, an accumulating
    /// `Search`) or overwrites them (`SetTag`, a non-accumulating
    /// `Search`), so a non-latching search is dead exactly when the *next*
    /// op overwrites. Looping handles cascades (a chain of overwritten
    /// searches dies back to front). Tags are live at segment end — a sync
    /// point or a later run may read them.
    pub(super) fn eliminate_dead_searches(seg: &mut Segment) {
        loop {
            let dead = (0..seg.ops.len()).find(|&i| {
                matches!(seg.ops[i], MicroOp::Search { encode: false, .. })
                    && matches!(
                        seg.ops.get(i + 1),
                        Some(MicroOp::SetTag | MicroOp::Search { acc: false, .. })
                    )
            });
            let Some(i) = dead else { break };
            seg.ops.remove(i);
            seg.elided.searches += 1;
            seg.elided.set_keys += 1;
        }
    }

    /// What pass 2 does with a repeated search.
    enum Rewrite {
        /// Tags already hold exactly this result: drop the op.
        Elide,
        /// Narrow the live tags by a delta plan (appended to the table).
        Delta(usize),
        /// No relation to the previous search: keep it as-is.
        Keep,
    }

    /// Elide searches identical to the still-valid previous one and turn
    /// plan-extension searches into incremental [`MicroOp::SearchDelta`]s.
    ///
    /// Validity: the tags hold `match(prev)` *as of the defining search*,
    /// so any rewrite requires that no column of `prev`'s plan has been
    /// written since (writes to the delta's extra columns are fine — the
    /// delta re-reads them). An `Entry` plan has unknown columns, so it
    /// only ever elides an identical `Entry` search with no intervening
    /// writes at all.
    pub(super) fn narrow_repeated_searches(
        seg: &mut Segment,
        plans: &mut Vec<Vec<(usize, KeyBit)>>,
    ) {
        let mut out = Vec::with_capacity(seg.ops.len());
        // Tags == match of this plan, computed when it was pushed…
        let mut known: Option<PlanRef> = None;
        // …modulo writes to these columns since then.
        let mut written: Vec<usize> = Vec::new();
        for op in std::mem::take(&mut seg.ops) {
            match op {
                MicroOp::Search {
                    plan,
                    acc: false,
                    encode,
                } => {
                    let rewrite = match (known, plan) {
                        (Some(PlanRef::Compiled(prev)), PlanRef::Compiled(next)) => {
                            rewrite_compiled(prev, next, &written, encode, plans)
                        }
                        (Some(PlanRef::Entry), PlanRef::Entry) if written.is_empty() && !encode => {
                            Rewrite::Elide
                        }
                        _ => Rewrite::Keep,
                    };
                    match rewrite {
                        Rewrite::Elide => {
                            // Tags unchanged: `known`/`written` stand.
                            seg.elided.searches += 1;
                            seg.elided.set_keys += 1;
                        }
                        Rewrite::Delta(delta) => {
                            out.push(MicroOp::SearchDelta {
                                plan: delta,
                                encode,
                            });
                            known = Some(plan);
                            written.clear();
                        }
                        Rewrite::Keep => {
                            out.push(MicroOp::Search {
                                plan,
                                acc: false,
                                encode,
                            });
                            known = Some(plan);
                            written.clear();
                        }
                    }
                }
                other => {
                    match &other {
                        // Accumulation mixes old tags in; a register load
                        // replaces them: either way no single plan
                        // describes the result any more.
                        MicroOp::Search { .. } | MicroOp::SetTag => {
                            known = None;
                            written.clear();
                        }
                        MicroOp::Write { col, .. } | MicroOp::WriteEntry { col } => {
                            written.push(*col as usize);
                        }
                        MicroOp::WriteEncoded { col } => {
                            written.push(*col as usize);
                            written.push(*col as usize + 1);
                        }
                        MicroOp::ReadTag => {}
                        // Fused ops only exist after the later passes.
                        _ => {
                            known = None;
                            written.clear();
                        }
                    }
                    out.push(other);
                }
            }
        }
        seg.ops = out;
    }

    /// Decide between eliding, delta-narrowing, or keeping a compiled
    /// search whose predecessor's plan is `plans[prev]`.
    fn rewrite_compiled(
        prev: usize,
        next: usize,
        written: &[usize],
        encode: bool,
        plans: &mut Vec<Vec<(usize, KeyBit)>>,
    ) -> Rewrite {
        let (p, n) = (&plans[prev], &plans[next]);
        let prev_clobbered = written.iter().any(|&c| p.iter().any(|&(pc, _)| pc == c));
        if prev_clobbered || !p.iter().all(|e| n.contains(e)) {
            return Rewrite::Keep;
        }
        let delta: Vec<(usize, KeyBit)> = n.iter().filter(|e| !p.contains(e)).copied().collect();
        if delta.is_empty() && !encode {
            return Rewrite::Elide;
        }
        // An identical-but-latching search keeps an empty delta: the
        // engine skips the narrowing sweep and just latches the tags.
        plans.push(delta);
        Rewrite::Delta(plans.len() - 1)
    }

    /// Collapse runs of consecutive `Write`s into [`MicroOp::WriteMulti`]
    /// batches of at most [`MAX_FUSED`] (order is preserved, so repeated
    /// columns behave exactly like the unfused sequence).
    pub(super) fn batch_writes(seg: &mut Segment) {
        let mut out = Vec::with_capacity(seg.ops.len());
        let mut run: Vec<(u8, KeyBit)> = Vec::new();
        fn flush(out: &mut Vec<MicroOp>, run: &mut Vec<(u8, KeyBit)>) {
            for chunk in run.chunks(MAX_FUSED) {
                if let [(col, value)] = *chunk {
                    out.push(MicroOp::Write { col, value });
                } else {
                    out.push(MicroOp::WriteMulti {
                        writes: chunk.to_vec(),
                    });
                }
            }
            run.clear();
        }
        for op in std::mem::take(&mut seg.ops) {
            if let MicroOp::Write { col, value } = op {
                run.push((col, value));
            } else {
                flush(&mut out, &mut run);
                out.push(op);
            }
        }
        flush(&mut out, &mut run);
        seg.ops = out;
    }

    /// Fuse each maximal `Search → [Search acc]*` chain plus an optional
    /// trailing write batch into one fused micro-op. A latching search
    /// ends its chain (the fused kernels latch the *final* tags, so only
    /// the last search of a chain may carry `encode`); chains longer than
    /// [`MAX_FUSED`] split, the continuation accumulating into the tags
    /// the previous fused op left behind.
    pub(super) fn fuse_search_writes(seg: &mut Segment) {
        let ops = std::mem::take(&mut seg.ops);
        let mut out = Vec::with_capacity(ops.len());
        let mut i = 0;
        while i < ops.len() {
            let MicroOp::Search { plan, acc, encode } = ops[i] else {
                out.push(ops[i].clone());
                i += 1;
                continue;
            };
            let mut plans = vec![plan];
            let mut chain_encode = encode;
            let mut j = i + 1;
            while !chain_encode && plans.len() < MAX_FUSED {
                let Some(MicroOp::Search {
                    plan: p,
                    acc: true,
                    encode: e,
                }) = ops.get(j)
                else {
                    break;
                };
                plans.push(*p);
                chain_encode = *e;
                j += 1;
            }
            let writes: Vec<(u8, KeyBit)> = match ops.get(j) {
                Some(&MicroOp::Write { col, value }) => {
                    j += 1;
                    vec![(col, value)]
                }
                Some(MicroOp::WriteMulti { writes }) => {
                    j += 1;
                    writes.clone()
                }
                _ => Vec::new(),
            };
            out.push(match (plans.len(), writes.len()) {
                (1, 0) => MicroOp::Search { plan, acc, encode },
                (1, 1) => MicroOp::SearchWrite {
                    plan,
                    acc,
                    encode: chain_encode,
                    col: writes[0].0,
                    value: writes[0].1,
                },
                _ => MicroOp::SearchWriteMulti {
                    plans,
                    acc,
                    encode: chain_encode,
                    writes,
                },
            });
            i = j;
        }
        seg.ops = out;
    }
}

/// The cross-group event loop shared by every trace-executing engine
/// ([`crate::ApMachine::run_compiled`], [`crate::SlabMachine::run_compiled`]):
/// repeatedly pick the group whose local clock is earliest (ties broken by
/// group index — the interpreter's `(issue cycle, group)` key), advance its
/// clock by the step's cycle cost, and hand the step to `f`. Returns the
/// final per-group clocks (groups beyond `traces.len()` idle at zero).
pub(crate) fn drive_steps<T, F>(traces: &[T], groups: usize, mut f: F) -> Vec<u64>
where
    T: std::borrow::Borrow<CompiledTrace>,
    F: FnMut(usize, &Step),
{
    let n = groups.min(traces.len());
    let mut steps = vec![0usize; n];
    let mut clocks = vec![0u64; groups];
    loop {
        let next = (0..n)
            .filter(|&g| steps[g] < traces[g].borrow().steps.len())
            .min_by_key(|&g| (clocks[g], g));
        let Some(g) = next else { break };
        let step = &traces[g].borrow().steps[steps[g]];
        steps[g] += 1;
        clocks[g] += step.cycles;
        f(g, step);
    }
    clocks
}

/// Content hash of a multi-group program: FNV-1a over each stream's
/// canonical ISA byte encoding ([`hyperap_isa::encoding::encode`]), with
/// per-stream length separators so stream boundaries are part of the
/// identity. Two stream sets with equal hashes are *probably* equal — a
/// shared program cache must still validate candidates with full stream
/// equality before reuse (the vectorized `SearchKey` comparison makes that
/// cheap).
pub fn stream_set_hash(streams: &[Vec<Instruction>]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(PRIME);
        }
    };
    eat(&(streams.len() as u64).to_le_bytes());
    for stream in streams {
        let bytes = hyperap_isa::encoding::encode(stream);
        eat(&(bytes.len() as u64).to_le_bytes());
        eat(&bytes);
    }
    h
}

/// Compile every stream of a multi-group program, deriving each stream's
/// `reg_sync` flag: a stream's `SetTag`/`ReadTag` stay segment-internal
/// only if no *other* stream contains an instruction that can touch remote
/// data registers ([`Instruction::touches_remote_regs`]).
pub fn compile_streams(streams: &[Vec<Instruction>], config: &ArchConfig) -> Vec<CompiledTrace> {
    compile_streams_with(streams, config, CompiledTrace::compile)
}

/// [`compile_streams`] without the peephole pass — the unfused baseline for
/// the equivalence suites and the fusion benchmarks.
pub fn compile_streams_unfused(
    streams: &[Vec<Instruction>],
    config: &ArchConfig,
) -> Vec<CompiledTrace> {
    compile_streams_with(streams, config, CompiledTrace::compile_unfused)
}

fn compile_streams_with(
    streams: &[Vec<Instruction>],
    config: &ArchConfig,
    compile: fn(&[Instruction], &ArchConfig, bool) -> CompiledTrace,
) -> Vec<CompiledTrace> {
    let remote: Vec<bool> = streams
        .iter()
        .map(|s| s.iter().any(Instruction::touches_remote_regs))
        .collect();
    let reg_syncs: Vec<bool> = (0..streams.len())
        .map(|g| {
            remote
                .iter()
                .enumerate()
                .any(|(other, &touches)| other != g && touches)
        })
        .collect();
    // SPMD programs run the same stream on every group; compiling (and
    // peephole-optimizing) each copy separately would multiply the compile
    // cost by the group count, so identical (stream, reg_sync) inputs share
    // one compilation via clone.
    let mut traces: Vec<CompiledTrace> = Vec::with_capacity(streams.len());
    for (g, stream) in streams.iter().enumerate() {
        let dup = (0..g).find(|&p| reg_syncs[p] == reg_syncs[g] && streams[p] == *stream);
        traces.push(match dup {
            Some(p) => traces[p].clone(),
            None => compile(stream, config, reg_syncs[g]),
        });
    }
    traces
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyperap_isa::Direction;

    fn cfg() -> ArchConfig {
        ArchConfig::tiny()
    }

    fn setkey(s: &str) -> Instruction {
        Instruction::SetKey {
            key: SearchKey::parse(s).unwrap(),
        }
    }

    const SEARCH: Instruction = Instruction::Search {
        acc: false,
        encode: false,
    };

    #[test]
    fn local_run_compiles_to_one_segment() {
        let stream = vec![
            setkey("1-"),
            SEARCH,
            setkey("-1"),
            Instruction::Write {
                col: 1,
                encode: false,
            },
            Instruction::Wait { cycles: 7 },
        ];
        let t = CompiledTrace::compile(&stream, &cfg(), false);
        assert_eq!(t.segment_count(), 1);
        assert_eq!(t.sync_count(), 0);
        assert_eq!(t.instruction_count(), 5);
        let seg = &t.segments[0];
        // SetKey and Wait fold into bookkeeping; the Search and Write fuse
        // into one single-sweep micro-op.
        assert_eq!(
            seg.ops,
            vec![MicroOp::SearchWrite {
                plan: PlanRef::Compiled(0),
                acc: false,
                encode: false,
                col: 1,
                value: KeyBit::One,
            }]
        );
        assert_eq!(seg.ops_delta.set_keys, 2);
        assert_eq!(seg.ops_delta.searches, 1);
        assert_eq!(seg.ops_delta.writes_single, 1);
        assert_eq!(seg.ops_delta.wait_cycles, 7);
        // Cycles: 1 + 1 + 1 + 12 + 7.
        assert_eq!(t.steps[0].cycles, 22);
        assert_eq!(t.final_key, Some(SearchKey::parse("-1").unwrap()));
        assert_eq!(t.final_plan, Some(1));
        // The unfused compile keeps the two micro-ops separate, with the
        // same bookkeeping.
        let u = CompiledTrace::compile_unfused(&stream, &cfg(), false);
        assert_eq!(u.segments[0].ops.len(), 2);
        assert_eq!(u.segments[0].ops_delta, seg.ops_delta);
        assert_eq!(u.segments[0].pe_ops_delta(None), seg.pe_ops_delta(None));
    }

    #[test]
    fn sync_points_split_segments() {
        let stream = vec![
            setkey("1-"),
            SEARCH,
            Instruction::Count,
            SEARCH,
            Instruction::Index,
            Instruction::MovR {
                dir: Direction::Right,
            },
            SEARCH,
        ];
        let t = CompiledTrace::compile(&stream, &cfg(), false);
        assert_eq!(t.segment_count(), 3);
        assert_eq!(t.sync_count(), 3);
        assert_eq!(t.steps.len(), 6);
        assert!(matches!(
            t.steps[1].kind,
            StepKind::Sync(Instruction::Count)
        ));
        // The searches after Count/MovR reuse the same compiled plan.
        assert_eq!(t.plans.len(), 1);
        for seg in &t.segments[1..] {
            assert_eq!(
                seg.ops,
                vec![MicroOp::Search {
                    plan: PlanRef::Compiled(0),
                    acc: false,
                    encode: false
                }]
            );
        }
    }

    #[test]
    fn write_values_resolve_at_compile_time() {
        let stream = vec![
            setkey("1Z"),
            Instruction::Write {
                col: 0,
                encode: false,
            },
            Instruction::Write {
                col: 1,
                encode: false,
            },
            Instruction::Write {
                col: 3, // masked in the key: no store, delta only
                encode: false,
            },
        ];
        let t = CompiledTrace::compile(&stream, &cfg(), false);
        let seg = &t.segments[0];
        // The two storing writes batch into one multi-write; the masked
        // write emits no micro-op at all.
        assert_eq!(
            seg.ops,
            vec![MicroOp::WriteMulti {
                writes: vec![(0, KeyBit::One), (1, KeyBit::Z)],
            }]
        );
        assert_eq!(seg.ops_delta.writes_single, 3, "masked write still counts");
        assert_eq!(seg.pe_ops_delta(None).writes_single, 2);
        let u = CompiledTrace::compile_unfused(&stream, &cfg(), false);
        assert_eq!(
            u.segments[0].ops,
            vec![
                MicroOp::Write {
                    col: 0,
                    value: KeyBit::One
                },
                MicroOp::Write {
                    col: 1,
                    value: KeyBit::Z
                },
            ]
        );
    }

    #[test]
    fn pre_setkey_ops_reference_entry_state() {
        let stream = vec![
            SEARCH,
            Instruction::Write {
                col: 2,
                encode: false,
            },
            setkey("1"),
            SEARCH,
        ];
        let t = CompiledTrace::compile(&stream, &cfg(), false);
        assert!(t.uses_entry_key);
        let seg = &t.segments[0];
        assert_eq!(
            seg.ops[0],
            MicroOp::Search {
                plan: PlanRef::Entry,
                acc: false,
                encode: false
            }
        );
        assert_eq!(seg.ops[1], MicroOp::WriteEntry { col: 2 });
        // SetKey folds into the plan table without emitting a micro-op, so
        // the post-SetKey search is the third op.
        assert_eq!(
            seg.ops[2],
            MicroOp::Search {
                plan: PlanRef::Compiled(0),
                acc: false,
                encode: false
            }
        );
    }

    #[test]
    fn reg_sync_demotes_tag_transfers() {
        let stream = vec![SEARCH, Instruction::ReadTag, Instruction::SetTag, SEARCH];
        let local = CompiledTrace::compile(&stream, &cfg(), false);
        assert_eq!(local.segment_count(), 1);
        assert_eq!(local.sync_count(), 0);
        let synced = CompiledTrace::compile(&stream, &cfg(), true);
        assert_eq!(synced.segment_count(), 2);
        assert_eq!(synced.sync_count(), 2);
        assert_eq!(synced.instruction_count(), local.instruction_count());
    }

    #[test]
    fn compile_streams_derives_reg_sync_from_other_streams() {
        let tags = vec![Instruction::ReadTag, Instruction::SetTag];
        let mover = vec![Instruction::MovR {
            dir: Direction::Left,
        }];
        // Alone: tag transfers stay inside the segment.
        let solo = compile_streams(std::slice::from_ref(&tags), &cfg());
        assert_eq!(solo[0].sync_count(), 0);
        // Next to a stream that can push into our data registers: demoted.
        let multi = compile_streams(&[tags.clone(), mover.clone()], &cfg());
        assert_eq!(multi[0].sync_count(), 2);
        // The mover itself is unaffected by its own remote ops.
        assert_eq!(multi[1].sync_count(), 1);
        // Two tag-only streams: neither forces the other to sync.
        let quiet = compile_streams(&[tags.clone(), tags], &cfg());
        assert_eq!(quiet[0].sync_count(), 0);
        assert_eq!(quiet[1].sync_count(), 0);
    }

    #[test]
    fn empty_stream_compiles_to_nothing() {
        let t = CompiledTrace::compile(&[], &cfg(), false);
        assert!(t.steps.is_empty());
        assert_eq!(t.instruction_count(), 0);
        assert_eq!(t.final_key, None);
        assert_eq!(t.final_plan, None);
        assert!(!t.uses_entry_key);
    }

    const SEARCH_ACC: Instruction = Instruction::Search {
        acc: true,
        encode: false,
    };

    /// The add32 inner-loop shape: a fresh search, accumulating searches,
    /// then a conditional write — one fused single-sweep micro-op.
    #[test]
    fn fuses_search_chains_with_trailing_writes() {
        let stream = vec![
            setkey("1-"),
            SEARCH,
            setkey("-1"),
            SEARCH_ACC,
            Instruction::Write {
                col: 1,
                encode: false,
            },
        ];
        let t = CompiledTrace::compile(&stream, &cfg(), false);
        let seg = &t.segments[0];
        assert_eq!(
            seg.ops,
            vec![MicroOp::SearchWriteMulti {
                plans: vec![PlanRef::Compiled(0), PlanRef::Compiled(1)],
                acc: false,
                encode: false,
                writes: vec![(1, KeyBit::One)],
            }]
        );
        // Per-PE counts are the unfused architectural ones.
        let d = seg.pe_ops_delta(None);
        assert_eq!((d.searches, d.set_keys, d.writes_single), (2, 2, 1));
        let u = CompiledTrace::compile_unfused(&stream, &cfg(), false);
        assert_eq!(u.segments[0].pe_ops_delta(None), d);
        assert_eq!(u.segments[0].ops.len(), 3);
    }

    /// A latching search must end its fused chain — the kernels latch the
    /// final tags, which would be wrong for an intermediate encode.
    #[test]
    fn latching_search_ends_the_fused_chain() {
        let stream = vec![
            setkey("1-"),
            Instruction::Search {
                acc: false,
                encode: true,
            },
            setkey("-1"),
            SEARCH_ACC,
        ];
        let t = CompiledTrace::compile(&stream, &cfg(), false);
        assert_eq!(t.segments[0].ops.len(), 2, "no fusion across the latch");
        // With the encode on the *last* search the whole chain fuses.
        let stream = vec![
            setkey("1-"),
            SEARCH,
            setkey("-1"),
            Instruction::Search {
                acc: true,
                encode: true,
            },
        ];
        let t = CompiledTrace::compile(&stream, &cfg(), false);
        assert_eq!(
            t.segments[0].ops,
            vec![MicroOp::SearchWriteMulti {
                plans: vec![PlanRef::Compiled(0), PlanRef::Compiled(1)],
                acc: false,
                encode: true,
                writes: vec![],
            }]
        );
    }

    /// A search overwritten before anything reads its tags is removed from
    /// the ops but still billed to every active PE via `Segment::elided`.
    #[test]
    fn dead_searches_are_elided_but_billed() {
        let stream = vec![setkey("1"), SEARCH, Instruction::SetTag, SEARCH];
        let t = CompiledTrace::compile(&stream, &cfg(), false);
        let seg = &t.segments[0];
        assert_eq!(
            seg.ops,
            vec![
                MicroOp::SetTag,
                MicroOp::Search {
                    plan: PlanRef::Compiled(0),
                    acc: false,
                    encode: false
                }
            ]
        );
        assert_eq!(seg.elided.searches, 1);
        let u = CompiledTrace::compile_unfused(&stream, &cfg(), false);
        assert_eq!(u.segments[0].pe_ops_delta(None), seg.pe_ops_delta(None));
        assert_eq!(u.segments[0].ops_delta, seg.ops_delta);
    }

    /// Re-searching the same still-valid key is elided entirely; searching
    /// an *extension* of it narrows the live tags with a delta plan.
    #[test]
    fn repeated_and_extension_searches_are_narrowed() {
        let same = vec![setkey("1"), SEARCH, Instruction::ReadTag, SEARCH];
        let t = CompiledTrace::compile(&same, &cfg(), false);
        assert_eq!(t.segments[0].ops.len(), 2, "identical re-search elided");
        assert_eq!(t.segments[0].elided.searches, 1);
        assert_eq!(
            t.segments[0].pe_ops_delta(None),
            CompiledTrace::compile_unfused(&same, &cfg(), false).segments[0].pe_ops_delta(None)
        );

        let extend = vec![
            setkey("1-"),
            SEARCH,
            Instruction::ReadTag,
            setkey("11"),
            SEARCH,
        ];
        let t = CompiledTrace::compile(&extend, &cfg(), false);
        let seg = &t.segments[0];
        assert_eq!(
            seg.ops[2],
            MicroOp::SearchDelta {
                plan: 2,
                encode: false
            }
        );
        assert_eq!(t.plans[2], vec![(1, KeyBit::One)]);
        // The delta is still a full SetKey+Search architecturally.
        assert_eq!(seg.pe_ops_delta(None).searches, 2);
        // `final_plan` still resolves the last SetKey even though the
        // delta plan now sits at the end of the plan table.
        assert_eq!(t.final_plan, Some(1));
        assert_eq!(t.final_key, Some(SearchKey::parse("11").unwrap()));

        // A write clobbering the previous plan's column blocks both
        // rewrites: the tags no longer reflect the current cell contents.
        let clobbered = vec![
            setkey("1-"),
            SEARCH,
            Instruction::Write {
                col: 0,
                encode: false,
            },
            setkey("11"),
            SEARCH,
        ];
        let t = CompiledTrace::compile(&clobbered, &cfg(), false);
        assert!(t.segments[0]
            .ops
            .iter()
            .all(|op| !matches!(op, MicroOp::SearchDelta { .. })));
        assert_eq!(t.segments[0].elided, OpCounts::default());
    }

    /// Chains and write runs longer than `MAX_FUSED` split, with the
    /// continuation chain accumulating into the previous fused tags.
    #[test]
    fn fusion_caps_split_long_chains() {
        let mut stream = vec![setkey("1"), SEARCH];
        for _ in 0..9 {
            stream.push(setkey("1"));
            stream.push(SEARCH_ACC);
        }
        let t = CompiledTrace::compile(&stream, &cfg(), false);
        let seg = &t.segments[0];
        assert_eq!(seg.ops.len(), 2);
        let (
            MicroOp::SearchWriteMulti {
                plans: a,
                acc: false,
                ..
            },
            MicroOp::SearchWriteMulti {
                plans: b,
                acc: true,
                ..
            },
        ) = (&seg.ops[0], &seg.ops[1])
        else {
            panic!("expected two fused chains, got {:?}", seg.ops);
        };
        assert_eq!((a.len(), b.len()), (MAX_FUSED, 2));
        assert_eq!(seg.pe_ops_delta(None).searches, 10);

        let mut stream = vec![setkey("1111111111")];
        for col in 0..10 {
            stream.push(Instruction::Write { col, encode: false });
        }
        let t = CompiledTrace::compile(&stream, &cfg(), false);
        let seg = &t.segments[0];
        assert_eq!(seg.ops.len(), 2);
        assert!(matches!(&seg.ops[0], MicroOp::WriteMulti { writes } if writes.len() == MAX_FUSED));
        assert!(matches!(&seg.ops[1], MicroOp::WriteMulti { writes } if writes.len() == 2));
        assert_eq!(seg.pe_ops_delta(None).writes_single, 10);
    }
}
