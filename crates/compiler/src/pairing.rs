//! Two-bit-encoding bit-pairing search (§V-B4a, Fig 11).
//!
//! Different pairings of a lookup table's input bits lead to different
//! numbers of search operations. Following the paper, this module
//! *enumerates all possible pairings* (perfect and partial matchings of the
//! input set — singles are allowed, since bits may be stored unencoded like
//! `Cin` in Fig 5d), counts the searches each needs via the MV-SOP
//! minimizer, and returns the best. The space is small because LUT inputs
//! are bounded (§V-B4: ≤ 12; exhaustive enumeration here is practical to
//! ~10 inputs — the number of matchings of 10 elements is 9496).

use hyperap_tcam::mvsop::{minimize, Cover, PosKind};

/// A pairing: disjoint index pairs plus leftover single indices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pairing {
    /// Paired input indices (hi, lo).
    pub pairs: Vec<(usize, usize)>,
    /// Unpaired input indices.
    pub singles: Vec<usize>,
}

/// Result of the pairing search.
#[derive(Debug, Clone)]
pub struct PairingChoice {
    /// The winning pairing.
    pub pairing: Pairing,
    /// Searches needed under the winning pairing.
    pub best_searches: usize,
    /// Searches needed under the worst enumerated pairing (for reporting
    /// the Fig 11 spread).
    pub worst_searches: usize,
    /// Searches with no pairing at all (all bits single).
    pub unpaired_searches: usize,
}

/// Enumerate every pairing of `0..n` (all involutions).
pub fn enumerate_pairings(n: usize) -> Vec<Pairing> {
    let mut out = Vec::new();
    let mut pairs = Vec::new();
    let mut singles = Vec::new();
    fn recurse(
        remaining: &[usize],
        pairs: &mut Vec<(usize, usize)>,
        singles: &mut Vec<usize>,
        out: &mut Vec<Pairing>,
    ) {
        let Some((&first, rest)) = remaining.split_first() else {
            out.push(Pairing {
                pairs: pairs.clone(),
                singles: singles.clone(),
            });
            return;
        };
        // first stays single…
        singles.push(first);
        recurse(rest, pairs, singles, out);
        singles.pop();
        // …or pairs with each later element.
        for (i, &other) in rest.iter().enumerate() {
            let mut next: Vec<usize> = rest.to_vec();
            next.remove(i);
            pairs.push((first, other));
            recurse(&next, pairs, singles, out);
            pairs.pop();
        }
    }
    let all: Vec<usize> = (0..n).collect();
    recurse(&all, &mut pairs, &mut singles, &mut out);
    out
}

/// Count the searches a LUT (ON-set over `n` inputs) needs under a pairing.
pub fn searches_under_pairing(_n: usize, on_set: &[u16], pairing: &Pairing) -> usize {
    let mut positions = Vec::new();
    // Position order: pairs first, then singles.
    for _ in &pairing.pairs {
        positions.push(PosKind::Pair);
    }
    for _ in &pairing.singles {
        positions.push(PosKind::Single);
    }
    let on: Vec<Vec<u8>> = on_set
        .iter()
        .map(|&m| {
            let mut v = Vec::with_capacity(positions.len());
            for &(hi, lo) in &pairing.pairs {
                v.push(((m >> hi & 1) << 1 | (m >> lo & 1)) as u8);
            }
            for &s in &pairing.singles {
                v.push((m >> s & 1) as u8);
            }
            v
        })
        .collect();
    minimize(&Cover::new(positions, on)).num_searches()
}

/// Exhaustively choose the best pairing for a LUT (the paper's §V-B4a
/// procedure: enumerate, count, pick the minimum).
///
/// # Panics
///
/// Panics if `n > 10` (enumeration would be too large; the compiler's
/// layout heuristics handle wider LUTs).
pub fn choose_pairing(n: usize, on_set: &[u16]) -> PairingChoice {
    assert!(n <= 10, "exhaustive pairing search limited to 10 inputs");
    let mut best: Option<(usize, Pairing)> = None;
    let mut worst = 0usize;
    for p in enumerate_pairings(n) {
        let s = searches_under_pairing(n, on_set, &p);
        worst = worst.max(s);
        if best.as_ref().is_none_or(|(bs, _)| s < *bs) {
            best = Some((s, p));
        }
    }
    let (best_searches, pairing) = best.expect("at least the all-singles pairing exists");
    let unpaired = Pairing {
        pairs: vec![],
        singles: (0..n).collect(),
    };
    let unpaired_searches = searches_under_pairing(n, on_set, &unpaired);
    PairingChoice {
        pairing,
        best_searches,
        worst_searches: worst,
        unpaired_searches,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pairing_counts_match_involutions() {
        // Number of involutions: 1, 1, 2, 4, 10, 26, 76.
        for (n, expect) in [(0, 1), (1, 1), (2, 2), (3, 4), (4, 10), (5, 26), (6, 76)] {
            assert_eq!(enumerate_pairings(n).len(), expect, "n = {n}");
        }
    }

    #[test]
    fn fig11_example_best_pairing_is_one_search() {
        // Fig 11: inputs A,B,C,D (indices 3,2,1,0 — minterm bit i = input i
        // with A=bit 3 … D=bit 0): ON-set {1000, 0100, 1011, 0111}.
        let on = vec![0b1000, 0b0100, 0b1011, 0b0111];
        let choice = choose_pairing(4, &on);
        assert_eq!(choice.best_searches, 1, "A-B and C-D pairing: one search");
        assert!(choice.worst_searches >= 4, "A-C/B-D pairing needs four");
        // The winning pairing must pair {3,2} and {1,0}.
        let mut ps: Vec<(usize, usize)> = choice
            .pairing
            .pairs
            .iter()
            .map(|&(a, b)| (a.max(b), a.min(b)))
            .collect();
        ps.sort_unstable();
        assert_eq!(ps, vec![(1, 0), (3, 2)]);
    }

    #[test]
    fn pairing_never_hurts() {
        // The best pairing can never need more searches than unpaired.
        let on = vec![0b000, 0b011, 0b101, 0b110];
        let choice = choose_pairing(3, &on);
        assert!(choice.best_searches <= choice.unpaired_searches);
    }

    #[test]
    fn full_adder_sum_pairing_matches_fig5d() {
        // Sum ON-set over (A=bit0, B=bit1, Cin=bit2).
        let on = vec![0b001, 0b010, 0b100, 0b111];
        let choice = choose_pairing(3, &on);
        assert_eq!(choice.best_searches, 2);
        assert_eq!(choice.unpaired_searches, 4);
    }
}
