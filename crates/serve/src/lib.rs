//! Multi-tenant batch serving over a pool of [`hyperap_arch::SlabMachine`]s
//! — the production front-end of the stack (ROADMAP item 3).
//!
//! Everything below the serving layer executes one program on one machine;
//! this crate turns that into a service:
//!
//! * [`ServePool`] owns N machines, one per worker thread, and schedules
//!   submitted jobs across them with work stealing: each worker drains its
//!   own deque from the front and steals from the back of its peers' when
//!   idle, so a burst landing on one tenant's stripe spreads over every
//!   core.
//! * [`ProgramCache`] promotes the per-machine content-addressed trace
//!   cache into one shared, capacity-bounded LRU keyed by
//!   `(stream-set hash, geometry hash)`: N tenants submitting the same
//!   kernel compile it **once**, and every hit is validated by full stream
//!   equality plus the geometry witness before reuse, so a hash collision
//!   can never serve the wrong program.
//! * Compatible submissions — same cached program, no cross-PE traffic,
//!   zero-fault config — are **batched**: coalesced onto disjoint group
//!   ranges of one machine and executed as a single sweep, amortizing the
//!   scrub and dispatch cost over every rider.
//! * Per-tenant admission control gives backpressure a typed surface:
//!   a tenant over its queue bound gets [`SubmitError::QueueFull`] instead
//!   of unbounded memory growth, and fairness — one tenant's backlog
//!   cannot starve another's admission budget.
//! * Fault fail-fast is pool-aware: a machine whose
//!   [`hyperap_tcam::FaultError::SparesExhausted`] latches is quarantined
//!   (its queue drained onto healthy workers, the machine marked unhealthy
//!   in [`PoolStats`]) instead of poisoning unrelated tenants' jobs.
//!
//! Isolation is by construction: a machine is [`scrubbed`] back to its
//! as-constructed state before every batch, so a job's results are
//! bit-identical to running it alone on a fresh machine — property-tested
//! against isolated machines in `tests/concurrent_cache.rs`.
//!
//! [`scrubbed`]: hyperap_arch::SlabMachine::scrub

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod job;
pub mod pool;

pub use cache::{CacheStats, CachedProgram, ProgramCache};
pub use job::{CellLoad, JobError, JobHandle, JobOutput, JobSpec, SubmitError, TenantId};
pub use pool::{PoolStats, QuarantineCause, QuarantineReport, ServeConfig, ServePool, TenantStats};
