//! Comparisons and predicated arithmetic.
//!
//! Comparisons ripple a borrow/inequality bit; predicated subtraction is the
//! workhorse of the iterative division/sqrt/exp methods — the predicate
//! simply becomes one more LUT input, so "branches" cost one extra key bit
//! instead of control flow (cf. the conditional-statement flattening of
//! Fig 13b).

use super::{bit, Microcode};
use crate::field::{Field, Slot};

impl Microcode {
    /// 1-bit predicate: `a >= b` (unsigned; widths may differ).
    pub fn cmp_ge(&mut self, a: &Field, b: &Field) -> Field {
        let borrow = self.borrow_out(a, b);
        let out = self.alloc_plain(format!("{}>={}", a.name, b.name), 1);
        self.lut1_into(vec![borrow], |m| !bit(m, 0), out.slot(0).base_col());
        self.free_slot(borrow);
        out
    }

    /// 1-bit predicate: `a < b`.
    pub fn cmp_lt(&mut self, a: &Field, b: &Field) -> Field {
        let borrow = self.borrow_out(a, b);
        Field::new(format!("{}<{}", a.name, b.name), vec![borrow])
    }

    /// The borrow-out slot of `a - b` over `max(width)` bits
    /// (1 ⇔ `a < b`).
    fn borrow_out(&mut self, a: &Field, b: &Field) -> Slot {
        let w = a.width().max(b.width());
        let mut borrow: Option<Slot> = None;
        for i in 0..w {
            let ai = (i < a.width()).then(|| a.slot(i));
            let bi = (i < b.width()).then(|| b.slot(i));
            let mut inputs = Vec::new();
            if let Some(s) = ai {
                inputs.push(s);
            }
            if let Some(s) = bi {
                inputs.push(s);
            }
            let brw_idx = borrow.map(|s| {
                inputs.push(s);
                inputs.len() - 1
            });
            let has_a = ai.is_some();
            let has_b = bi.is_some();
            let f = move |m: u16| -> bool {
                let mut idx = 0;
                let av = if has_a {
                    idx += 1;
                    bit(m, idx - 1)
                } else {
                    false
                };
                let bv = if has_b {
                    idx += 1;
                    bit(m, idx - 1)
                } else {
                    false
                };
                let brw = brw_idx.map(|j| bit(m, j)).unwrap_or(false);
                (av as i32 - bv as i32 - brw as i32) < 0
            };
            let next = self.lut1(inputs, f, "brw");
            if let Some(prev) = borrow {
                self.free_slot(prev);
            }
            borrow = Some(next);
        }
        borrow.expect("width >= 1")
    }

    /// 1-bit predicate: `a >= imm` via the **first-difference method**: the
    /// comparison against a constant is a disjunction of exact-prefix
    /// patterns, so it compiles to one accumulated search per zero bit of
    /// `imm` (plus one for equality) and a **single write** — no borrow
    /// chain is ever materialized. Operand embedding at its best (§V-B4c).
    pub fn cmp_ge_imm(&mut self, a: &Field, imm: u64) -> Field {
        if imm == 0 {
            // Always true.
            let one = self.const_bit(true);
            return Field::new(format!("{}>={imm:#x}", a.name), vec![one]);
        }
        if a.width() < 64 && imm >> a.width() != 0 {
            // a can never reach imm.
            return self.zero_field(1);
        }
        let w = a.width();
        // Allocate (and zero, if recycled) the output BEFORE the search
        // series — zeroing manipulates the tags.
        let out = self.alloc_plain(format!("{}>={imm:#x}", a.name), 1);
        // a >= imm  ⇔  a == imm, or ∃i: imm_i = 0, a_i = 1, and
        // a_j = imm_j for all j > i (first difference from the top is up).
        let mut first = true;
        for i in (0..w).rev() {
            if imm >> i & 1 == 1 {
                continue;
            }
            let mut constraints: Vec<(Slot, bool)> = vec![(a.slot(i), true)];
            for j in i + 1..w {
                constraints.push((a.slot(j), imm >> j & 1 == 1));
            }
            if let Some(key) = self.key_from_constraints(&constraints) {
                self.prog.search(key, !first);
                first = false;
            }
        }
        // Equality term.
        let eq_constraints: Vec<(Slot, bool)> =
            (0..w).map(|i| (a.slot(i), imm >> i & 1 == 1)).collect();
        if let Some(key) = self.key_from_constraints(&eq_constraints) {
            self.prog.search(key, !first);
            first = false;
        }
        if first {
            // Every term was unsatisfiable: the predicate is constantly 0
            // and the (pre-zeroed) output column is already correct.
            return out;
        }
        self.prog.push(crate::program::ApOp::Write {
            col: out.slot(0).base_col(),
            value: hyperap_tcam::bit::KeyBit::One,
        });
        out
    }

    /// Build the exact-match search key for a conjunction of
    /// (slot, required value) constraints, merging constraints that land on
    /// the same encoded pair or column. Returns `None` when the conjunction
    /// is unsatisfiable (the same stored bit required to be both 0 and 1 —
    /// e.g. via a shared constant-zero column), in which case the term can
    /// simply be skipped.
    pub(crate) fn key_from_constraints(
        &self,
        constraints: &[(Slot, bool)],
    ) -> Option<hyperap_tcam::key::SearchKey> {
        use hyperap_tcam::bit::KeyBit;
        use hyperap_tcam::encoding::{key_for_subset, PairSubset};
        let mut key = hyperap_tcam::key::SearchKey::masked(0);
        let mut pair_subsets: std::collections::BTreeMap<usize, PairSubset> =
            std::collections::BTreeMap::new();
        for &(slot, v) in constraints {
            match slot {
                Slot::Single { col } => {
                    let want = KeyBit::from(v);
                    let existing = key.bit(col);
                    if existing != KeyBit::Masked && existing != want {
                        return None; // conflicting requirements
                    }
                    key.set_bit(col, want);
                }
                Slot::PairHi { col } => {
                    let s = pair_subsets.entry(col).or_insert(PairSubset::FULL);
                    *s = PairSubset(s.0 & if v { 0b1100 } else { 0b0011 });
                }
                Slot::PairLo { col } => {
                    let s = pair_subsets.entry(col).or_insert(PairSubset::FULL);
                    *s = PairSubset(s.0 & if v { 0b1010 } else { 0b0101 });
                }
            }
        }
        for (col, subset) in pair_subsets {
            let [k1, k0] = key_for_subset(subset)?;
            if k1 != KeyBit::Masked {
                key.set_bit(col, k1);
            }
            if k0 != KeyBit::Masked {
                key.set_bit(col + 1, k0);
            }
        }
        Some(key)
    }

    /// `pred ? a - imm : a` (wrapping), fused into one LUT chain per bit —
    /// the restoring-update step of the iterative exp/sqrt methods with the
    /// constant embedded.
    pub fn cond_sub_imm(&mut self, a: &Field, imm: u64, pred: &Field) -> Field {
        assert_eq!(pred.width(), 1, "predicate must be one bit");
        let p = pred.slot(0);
        let w = a.width();
        let out = self.alloc_plain("csubi", w);
        let mut borrow: Option<Slot> = None;
        for i in 0..w {
            let k = imm >> i & 1 == 1;
            let ai = a.slot(i);
            let mut inputs = vec![p, ai];
            let brw_idx = borrow.map(|s| {
                inputs.push(s);
                inputs.len() - 1
            });
            let eval = move |m: u16| -> (bool, bool) {
                let pv = bit(m, 0);
                let av = bit(m, 1);
                let brw = brw_idx.map(|j| bit(m, j)).unwrap_or(false);
                if !pv {
                    (av, false)
                } else {
                    let t = av as i32 - k as i32 - brw as i32;
                    (t & 1 == 1, t < 0)
                }
            };
            let need_borrow = i + 1 < w && (imm >> (i + 1) != 0 || borrow.is_some() || k);
            if need_borrow {
                let b2 = self.alloc_plain("cbi", 1).slot(0);
                self.lut2_into(
                    inputs,
                    move |m| eval(m).0,
                    out.slot(i).base_col(),
                    move |m| eval(m).1,
                    b2.base_col(),
                );
                if let Some(prev) = borrow {
                    self.free_slot(prev);
                }
                borrow = Some(b2);
            } else {
                self.lut1_into(inputs, move |m| eval(m).0, out.slot(i).base_col());
                if let Some(prev) = borrow {
                    self.free_slot(prev);
                }
                borrow = None;
            }
        }
        if let Some(prev) = borrow {
            self.free_slot(prev);
        }
        out
    }

    /// 1-bit predicate: `a == b`.
    pub fn cmp_eq(&mut self, a: &Field, b: &Field) -> Field {
        let w = a.width().max(b.width());
        let mut neq: Option<Slot> = None;
        for i in 0..w {
            let ai = (i < a.width()).then(|| a.slot(i));
            let bi = (i < b.width()).then(|| b.slot(i));
            let mut inputs = Vec::new();
            if let Some(s) = ai {
                inputs.push(s);
            }
            if let Some(s) = bi {
                inputs.push(s);
            }
            let prev = neq.map(|s| {
                inputs.push(s);
                inputs.len() - 1
            });
            let has_a = ai.is_some();
            let has_b = bi.is_some();
            let f = move |m: u16| {
                let mut idx = 0;
                let av = if has_a {
                    idx += 1;
                    bit(m, idx - 1)
                } else {
                    false
                };
                let bv = if has_b {
                    idx += 1;
                    bit(m, idx - 1)
                } else {
                    false
                };
                av != bv || prev.map(|j| bit(m, j)).unwrap_or(false)
            };
            let next = self.lut1(inputs, f, "neq");
            if let Some(prev) = neq {
                self.free_slot(prev);
            }
            neq = Some(next);
        }
        let out = self.alloc_plain(format!("{}=={}", a.name, b.name), 1);
        let last = neq.expect("width >= 1");
        self.lut1_into(vec![last], |m| !bit(m, 0), out.slot(0).base_col());
        self.free_slot(last);
        out
    }

    /// 1-bit predicate: `a == imm` — a single multi-bit search: equality
    /// against a constant is ONE search on an associative machine, at any
    /// width (the key is built directly, bypassing the LUT minimizer).
    pub fn cmp_eq_imm(&mut self, a: &Field, imm: u64) -> Field {
        if a.width() < 64 && imm >> a.width() != 0 {
            return self.zero_field(1);
        }
        let constraints: Vec<(Slot, bool)> = a
            .slots
            .iter()
            .enumerate()
            .map(|(i, &slot)| (slot, imm >> i & 1 == 1))
            .collect();
        let out = self.alloc_plain(format!("{}=={imm:#x}", a.name), 1);
        let Some(key) = self.key_from_constraints(&constraints) else {
            return out; // unsatisfiable: predicate is constantly 0
        };
        self.prog.search(key, false);
        self.prog.push(crate::program::ApOp::Write {
            col: out.slot(0).base_col(),
            value: hyperap_tcam::bit::KeyBit::One,
        });
        out
    }

    /// `pred ? a - b : a` (wrapping at `a`'s width), the inner step of
    /// restoring division and the iterative square root.
    ///
    /// # Panics
    ///
    /// Panics if `pred` is not 1 bit or `b` is wider than `a`.
    pub fn cond_sub(&mut self, a: &Field, b: &Field, pred: &Field) -> Field {
        assert_eq!(pred.width(), 1, "predicate must be one bit");
        assert!(b.width() <= a.width(), "subtrahend wider than minuend");
        let p = pred.slot(0);
        let w = a.width();
        let out = self.alloc_plain("csub", w);
        let mut borrow: Option<Slot> = None;
        for i in 0..w {
            let ai = a.slot(i);
            let bi = (i < b.width()).then(|| b.slot(i));
            let mut inputs = vec![p, ai];
            if let Some(s) = bi {
                inputs.push(s);
            }
            let brw_idx = borrow.map(|s| {
                inputs.push(s);
                inputs.len() - 1
            });
            let has_b = bi.is_some();
            let eval = move |m: u16| -> (bool, bool) {
                let pv = bit(m, 0);
                let av = bit(m, 1);
                let bv = if has_b { bit(m, 2) } else { false };
                let brw = brw_idx.map(|j| bit(m, j)).unwrap_or(false);
                if !pv {
                    // Borrow chain stays 0 when pred = 0, so diff = a.
                    (av, false)
                } else {
                    let t = av as i32 - bv as i32 - brw as i32;
                    (t & 1 == 1, t < 0)
                }
            };
            let diff_col = out.slot(i).base_col();
            let need_borrow = i + 1 < w;
            if need_borrow {
                let brw_slot = self.alloc_plain("cb", 1).slot(0);
                self.lut2_into(
                    inputs,
                    move |m| eval(m).0,
                    diff_col,
                    move |m| eval(m).1,
                    brw_slot.base_col(),
                );
                if let Some(prev) = borrow {
                    self.free_slot(prev);
                }
                borrow = Some(brw_slot);
            } else {
                self.lut1_into(inputs, move |m| eval(m).0, diff_col);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::*;
    use super::*;
    use crate::machine::HyperPe;

    #[test]
    fn cmp_ge_lt_eq_are_correct() {
        let cases: Vec<(u64, u64)> = vec![(5, 3), (3, 5), (7, 7), (0, 0), (255, 254)];
        let ge = run_binary_paired(8, &cases, |mc, a, b| mc.cmp_ge(a, b));
        let lt = run_binary_paired(8, &cases, |mc, a, b| mc.cmp_lt(a, b));
        let eq = run_binary_paired(8, &cases, |mc, a, b| mc.cmp_eq(a, b));
        for (i, (a, b)) in cases.iter().enumerate() {
            assert_eq!(ge[i] == 1, a >= b, "{a} >= {b}");
            assert_eq!(lt[i] == 1, a < b, "{a} < {b}");
            assert_eq!(eq[i] == 1, a == b, "{a} == {b}");
        }
    }

    #[test]
    fn cmp_ge_imm_is_correct() {
        for imm in [0u64, 1, 100, 128, 255, 256, 300] {
            let values: Vec<u64> = vec![0, 1, 99, 100, 101, 255];
            let outs = run_unary(8, &values, |mc, a| mc.cmp_ge_imm(a, imm));
            for (v, o) in values.iter().zip(&outs) {
                assert_eq!(*o == 1, *v >= imm, "{v} >= {imm}");
            }
        }
    }

    #[test]
    fn cmp_eq_imm_is_one_search() {
        let mut mc = Microcode::new(128);
        let a = mc.alloc_plain_input("a", 8);
        mc.cmp_eq_imm(&a, 0x42);
        let c = mc.program().op_counts();
        assert_eq!(c.searches, 1, "constant equality is a single search");
        let values: Vec<u64> = vec![0x41, 0x42, 0x43];
        let outs = run_unary(8, &values, |mc, a| mc.cmp_eq_imm(a, 0x42));
        assert_eq!(outs, vec![0, 1, 0]);
    }

    #[test]
    fn cmp_ge_imm_out_of_range_is_constant_zero() {
        let values: Vec<u64> = vec![0, 255];
        let outs = run_unary(8, &values, |mc, a| mc.cmp_ge_imm(a, 300));
        assert_eq!(outs, vec![0, 0]);
    }

    #[test]
    fn cond_sub_subtracts_only_when_predicated() {
        let mut mc = Microcode::new(200);
        let (a, b) = mc.alloc_paired_inputs("a", "b", 8);
        let p = mc.alloc_plain_input("p", 1);
        let out = mc.cond_sub(&a, &b, &p);
        let mut pe = HyperPe::new(4, 200);
        let rows = [(10u64, 3u64, 1u64), (10, 3, 0), (3, 10, 1), (0, 0, 1)];
        for (row, &(va, vb, vp)) in rows.iter().enumerate() {
            a.store(&mut pe, row, va);
            b.store(&mut pe, row, vb);
            p.store(&mut pe, row, vp);
        }
        mc.program().run(&mut pe);
        for (row, &(va, vb, vp)) in rows.iter().enumerate() {
            let expect = if vp == 1 {
                va.wrapping_sub(vb) & 0xFF
            } else {
                va
            };
            assert_eq!(out.read(&pe, row), expect, "row {row}");
        }
    }

    #[test]
    fn mixed_width_compare() {
        let mut mc = Microcode::new(128);
        let a = mc.alloc_plain_input("a", 8);
        let b = mc.alloc_plain_input("b", 4);
        let ge = mc.cmp_ge(&a, &b);
        let mut pe = HyperPe::new(2, 128);
        a.store(&mut pe, 0, 200);
        b.store(&mut pe, 0, 15);
        a.store(&mut pe, 1, 3);
        b.store(&mut pe, 1, 15);
        mc.program().run(&mut pe);
        assert_eq!(ge.read(&pe, 0), 1);
        assert_eq!(ge.read(&pe, 1), 0);
    }
}
