//! Property tests for the fault subsystem's differential guarantee: under
//! the same seeded [`FaultModel`] (stuck-at cells, transient search misses,
//! endurance-driven column sparing), random instruction streams produce
//! bit-identical results from all three engines — the instruction-at-a-time
//! interpreter, the trace-compiled engine, and the slab engine — across
//! every [`ExecMode`] and chunk width. "Bit-identical" covers the full
//! `Result`: `RunStats` (op counts, reductions, `pe_health`), per-PE state
//! including the fault bookkeeping (remap tables, retirement logs, stuck
//! masks ride in `TcamArray`'s `Eq`), data registers, controller buffers —
//! and, on the degradation path, the exact same typed
//! [`FaultError::SparesExhausted`].

use hyperap_arch::machine::BROADCAST_ADDR;
use hyperap_arch::{ApMachine, ArchConfig, ExecMode, FaultConfig, SlabMachine};
use hyperap_isa::{Direction, Instruction};
use hyperap_tcam::{FaultError, FaultModel, KeyBit};
use proptest::prelude::*;

/// Geometry under test: `tiny()` is 2 groups x 4 PEs of 16x64.
const PES: usize = 8;
const ROWS: usize = 16;
const COLS: usize = 64;

/// Chunk widths under test: single-PE chunks, a short tail chunk, and one
/// chunk covering a whole group.
const CHUNK_WIDTHS: [usize; 3] = [1, 3, 4];

fn inst_strategy() -> impl Strategy<Value = Instruction> {
    prop_oneof![
        prop::collection::vec(0u8..4, COLS).prop_map(|bits| Instruction::SetKey {
            key: bits
                .iter()
                .map(|b| match b {
                    0 => KeyBit::Zero,
                    1 => KeyBit::One,
                    2 => KeyBit::Z,
                    _ => KeyBit::Masked,
                })
                .collect(),
        }),
        (any::<bool>(), any::<bool>())
            .prop_map(|(acc, encode)| Instruction::Search { acc, encode }),
        // `encode` needs two adjacent columns, so stop one short.
        (0u8..(COLS as u8 - 1), any::<bool>())
            .prop_map(|(col, encode)| Instruction::Write { col, encode }),
        Just(Instruction::Count),
        Just(Instruction::Index),
        (0u8..4).prop_map(|d| Instruction::MovR {
            dir: match d {
                0 => Direction::Up,
                1 => Direction::Down,
                2 => Direction::Left,
                _ => Direction::Right,
            },
        }),
        (0u32..PES as u32).prop_map(|addr| Instruction::ReadR { addr }),
        (0u32..=PES as u32, prop::collection::vec(any::<u8>(), 0..4)).prop_map(|(a, imm)| {
            Instruction::WriteR {
                addr: if a == PES as u32 { BROADCAST_ADDR } else { a },
                imm,
            }
        }),
        Just(Instruction::SetTag),
        Just(Instruction::ReadTag),
        any::<u8>().prop_map(|m| Instruction::Broadcast { group_mask: m }),
        (0u8..10).prop_map(|cycles| Instruction::Wait { cycles }),
    ]
}

type Load = (usize, usize, usize, bool);

fn loads_strategy() -> impl Strategy<Value = Vec<Load>> {
    prop::collection::vec(
        (0usize..PES, 0usize..ROWS, 0usize..COLS, any::<bool>()),
        0..64,
    )
}

/// Fault configurations dense enough that every run actually exercises
/// stuck bits, transient misses, retirements — and sometimes exhaustion.
fn fault_strategy() -> impl Strategy<Value = FaultConfig> {
    (
        any::<u64>(),
        0u32..60_000,
        0u32..40_000,
        (any::<bool>(), 2u64..30),
        0usize..3,
    )
        .prop_map(
            |(seed, stuck, miss, (limited, limit), spares)| FaultConfig {
                model: FaultModel {
                    seed,
                    stuck_per_million: stuck,
                    miss_per_million: miss,
                    endurance_limit: limited.then_some(limit),
                },
                spare_cols: spares,
            },
        )
}

fn build_reference(faults: FaultConfig, loads: &[Load]) -> ApMachine {
    let mut cfg = ArchConfig::tiny();
    cfg.exec = ExecMode::Sequential;
    cfg.faults = faults;
    let mut m = ApMachine::new(cfg);
    for &(pe, row, col, v) in loads {
        m.pe_mut(pe).load_bit(row, col, v);
    }
    m
}

fn build_traced(faults: FaultConfig, mode: ExecMode, loads: &[Load]) -> ApMachine {
    let mut cfg = ArchConfig::tiny();
    cfg.exec = mode;
    cfg.faults = faults;
    let mut m = ApMachine::new(cfg);
    for &(pe, row, col, v) in loads {
        m.pe_mut(pe).load_bit(row, col, v);
    }
    m
}

fn build_slab(
    faults: FaultConfig,
    mode: ExecMode,
    chunk_pes: usize,
    loads: &[Load],
) -> SlabMachine {
    let mut cfg = ArchConfig::tiny();
    cfg.exec = mode;
    cfg.faults = faults;
    let mut m = SlabMachine::with_chunk_pes(cfg, chunk_pes);
    for &(pe, row, col, v) in loads {
        m.load_bit(pe, row, col, v);
    }
    m
}

fn assert_ap_machines_identical(a: &ApMachine, b: &ApMachine) {
    for pe in 0..PES {
        assert_eq!(a.pe(pe), b.pe(pe), "PE {pe} state diverged");
        assert_eq!(
            a.pe(pe).fault(),
            b.pe(pe).fault(),
            "PE {pe} fault bookkeeping diverged"
        );
        assert_eq!(
            a.data_reg(pe),
            b.data_reg(pe),
            "PE {pe} data register diverged"
        );
    }
    assert_eq!(
        a.data_buffers, b.data_buffers,
        "controller data buffers diverged"
    );
}

fn assert_slab_matches_reference(reference: &ApMachine, slab: &SlabMachine) {
    for pe in 0..PES {
        let snapshot = slab.pe_snapshot(pe);
        assert_eq!(reference.pe(pe), &snapshot, "PE {pe} state diverged");
        assert_eq!(
            reference.pe(pe).fault(),
            snapshot.fault(),
            "PE {pe} fault bookkeeping diverged"
        );
        assert_eq!(
            reference.data_reg(pe),
            &slab.data_reg(pe),
            "PE {pe} data register diverged"
        );
    }
    assert_eq!(
        reference.data_buffers, slab.data_buffers,
        "controller data buffers diverged"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The interpreter is the reference; under an active fault model the
    /// trace engine (every mode) and the slab engine (every mode × chunk
    /// width) must match it bit-for-bit: same `Result` — stats with
    /// `pe_health` on `Ok`, the same typed error on exhaustion — and the
    /// same machine state (cells, stuck enforcement, wear, remap tables)
    /// either way.
    #[test]
    fn three_engines_agree_under_seeded_faults(
        faults in fault_strategy(),
        loads in loads_strategy(),
        s0 in prop::collection::vec(inst_strategy(), 0..25),
        s1 in prop::collection::vec(inst_strategy(), 0..25),
    ) {
        let streams = vec![s0, s1];
        let mut reference = build_reference(faults, &loads);
        let ref_result = reference.try_run_interpreted(&streams);
        for mode in [ExecMode::Sequential, ExecMode::Parallel, ExecMode::Auto] {
            let mut traced = build_traced(faults, mode, &loads);
            let trace_result = traced.try_run(&streams);
            prop_assert_eq!(
                &ref_result, &trace_result,
                "trace result diverged under {:?}", mode
            );
            assert_ap_machines_identical(&reference, &traced);
            for chunk_pes in CHUNK_WIDTHS {
                let mut slab = build_slab(faults, mode, chunk_pes, &loads);
                let slab_result = slab.try_run(&streams);
                prop_assert_eq!(
                    &ref_result, &slab_result,
                    "slab result diverged under {:?} with {}-PE chunks", mode, chunk_pes
                );
                assert_slab_matches_reference(&reference, &slab);
            }
        }
    }

    /// Fault bookkeeping must carry across runs identically: epochs advance
    /// (re-rolling the transient-miss pattern), wear accumulates toward
    /// retirement, and the second run picks up whatever remap tables the
    /// first run's endurance service left behind.
    #[test]
    fn engines_agree_across_consecutive_faulty_runs(
        faults in fault_strategy(),
        loads in loads_strategy(),
        first in prop::collection::vec(inst_strategy(), 0..20),
        second in prop::collection::vec(inst_strategy(), 0..20),
    ) {
        let mut reference = build_reference(faults, &loads);
        let mut traced = build_traced(faults, ExecMode::Sequential, &loads);
        let mut slab = build_slab(faults, ExecMode::Sequential, 3, &loads);
        for stream in [&first, &second] {
            let streams = std::slice::from_ref(stream);
            let a = reference.try_run_interpreted(streams);
            let b = traced.try_run(streams);
            let c = slab.try_run(streams);
            prop_assert_eq!(&a, &b, "trace engine diverged");
            prop_assert_eq!(&a, &c, "slab engine diverged");
            assert_ap_machines_identical(&reference, &traced);
            assert_slab_matches_reference(&reference, &slab);
            if a.is_err() {
                break; // all three latched the same degradation
            }
        }
    }

    /// The zero-fault configuration must behave exactly like a machine with
    /// no fault plumbing at all: `FaultModel::none()` attaches nothing, and
    /// the runs match a default-config machine bit-for-bit.
    #[test]
    fn inactive_fault_model_is_transparent(
        loads in loads_strategy(),
        s0 in prop::collection::vec(inst_strategy(), 0..25),
    ) {
        let streams = vec![s0.clone(), s0];
        let none = FaultConfig { model: FaultModel::none(), spare_cols: 4 };
        prop_assert!(!none.is_active());
        let mut plain = build_reference(FaultConfig::default(), &loads);
        let mut zeroed = build_reference(none, &loads);
        let a = plain.try_run(&streams);
        let b = zeroed.try_run(&streams);
        prop_assert_eq!(&a, &b);
        assert_ap_machines_identical(&plain, &zeroed);
        prop_assert!(a.unwrap().pe_health.is_empty(), "no health rows without faults");
    }
}

/// A worn column retires onto a spare; when the spares run out the run
/// reports a typed [`FaultError::SparesExhausted`] — identically from all
/// three engines — and every later run fails fast with the same error
/// instead of computing wrong results.
#[test]
fn spares_exhaustion_is_typed_identical_and_latched() {
    // Endurance only: encoded writes wear two columns per instruction, so
    // four of them push columns 3 and 4 to the limit in one run.
    let faults = FaultConfig {
        model: FaultModel {
            seed: 1,
            stuck_per_million: 0,
            miss_per_million: 0,
            endurance_limit: Some(4),
        },
        spare_cols: 2,
    };
    let stream: Vec<Instruction> = (0..4)
        .map(|_| Instruction::Write {
            col: 3,
            encode: true,
        })
        .collect();
    let streams = vec![stream.clone(), stream];

    let mut reference = build_reference(faults, &[]);
    let mut traced = build_traced(faults, ExecMode::Parallel, &[]);
    let mut slab = build_slab(faults, ExecMode::Parallel, 3, &[]);

    // First run: columns 3 and 4 blow their endurance budget and retire
    // onto the two spares — degraded but healthy, and every engine reports
    // the same per-PE health rows.
    let a = reference
        .try_run_interpreted(&streams)
        .expect("spares cover run 1");
    let b = traced.try_run(&streams).expect("spares cover run 1");
    let c = slab.try_run(&streams).expect("spares cover run 1");
    assert_eq!(a, b);
    assert_eq!(a, c);
    assert_eq!(a.pe_health.len(), PES, "every PE retired columns");
    for (i, h) in a.pe_health.iter().enumerate() {
        assert_eq!(h.pe, i);
        assert_eq!(h.spares_left, 0);
        assert_eq!(
            h.retired,
            vec![(3, COLS as u16), (4, COLS as u16 + 1)],
            "PE {i} retired the wrong columns"
        );
    }
    assert_ap_machines_identical(&reference, &traced);
    assert_slab_matches_reference(&reference, &slab);

    // Second run: the remapped columns wear out again with no spares left.
    // Global service order is ascending PE, ascending column, so PE 0 /
    // column 3 is the first casualty everywhere.
    let expected = FaultError::SparesExhausted {
        pe: 0,
        col: 3,
        wear: 4,
    };
    let a = reference.try_run_interpreted(&streams).unwrap_err();
    let b = traced.try_run(&streams).unwrap_err();
    let c = slab.try_run(&streams).unwrap_err();
    assert_eq!(a, expected);
    assert_eq!(b, expected);
    assert_eq!(c, expected);
    assert_ap_machines_identical(&reference, &traced);
    assert_slab_matches_reference(&reference, &slab);

    // Third run: the failure is latched — every engine fails fast before
    // executing anything, even a trivially healthy stream.
    let idle = vec![vec![Instruction::Count], vec![Instruction::Count]];
    assert_eq!(reference.try_run_interpreted(&idle).unwrap_err(), expected);
    assert_eq!(traced.try_run(&idle).unwrap_err(), expected);
    assert_eq!(slab.try_run(&idle).unwrap_err(), expected);
}
