//! Multiplication: carry-save accumulation with the accumulator kept in
//! two-bit-encoded (sum, carry) pairs.
//!
//! Each iteration folds one partial product row into the redundant
//! accumulator with **no carry ripple**; the (s, c) pair of every position is
//! rewritten with a single encoded write (the PE's two-bit encoder, Fig 7 /
//! §IV-A2), which both halves the write count and keeps the accumulator
//! searchable with multi-pattern keys. A final carry-propagate addition
//! converts to binary — and its operands are already pair-encoded, so it
//! enjoys the cheap Fig 5d adder LUTs.

use super::{bit, Microcode};
use crate::field::{Field, Slot};
use crate::program::ApOp;

impl Microcode {
    /// `a * b` keeping the low `a.width()` bits (C unsigned wrap semantics).
    ///
    /// # Panics
    ///
    /// Panics if widths differ (pad operands first if needed).
    pub fn mul_wrapping(&mut self, a: &Field, b: &Field) -> Field {
        assert_eq!(a.width(), b.width(), "mul operands must match in width");
        self.mul_impl(a, b, a.width())
    }

    /// `a * b` with the full `2w`-bit product.
    ///
    /// # Panics
    ///
    /// Panics if widths differ.
    pub fn mul_full(&mut self, a: &Field, b: &Field) -> Field {
        assert_eq!(a.width(), b.width(), "mul operands must match in width");
        self.mul_impl(a, b, 2 * a.width())
    }

    fn mul_impl(&mut self, a: &Field, b: &Field, out_width: usize) -> Field {
        let w = a.width();
        // Redundant accumulator: position i holds the encoded pair
        // (s_i, c_i); invariant: acc value = Σ (s_i + c_i)·2^i.
        let (s_field, c_field, _dirty) = self.alloc.alloc_paired("mul.s", "mul.c", out_width);

        // Iteration j = 0 initializes every pair: s_i = a_i & b_0, c_i = 0.
        // (write_encoded covers all rows, so no pre-zeroing is needed.)
        for i in 0..out_width {
            if i < w {
                let key_inputs = vec![a.slot(i), b.slot(0)];
                self.search_on_set(&key_inputs, &[0b11]); // a_i = 1 AND b_0 = 1
                self.prog.push(ApOp::Latch);
                self.prog.push(ApOp::TagNone); // c_i = 0
                self.prog.push(ApOp::WriteEncoded {
                    col: s_field.slot(i).base_col(),
                });
            } else {
                // s_i = c_i = 0: program the (0,0) code with plain writes —
                // a latch after TagNone would not survive ISA lowering
                // (Latch only folds into a preceding Search).
                let col = s_field.slot(i).base_col();
                self.prog.push(ApOp::TagAll);
                self.prog.push(ApOp::Write {
                    col,
                    value: hyperap_tcam::bit::KeyBit::Z,
                });
                self.prog.push(ApOp::Write {
                    col: col + 1,
                    value: hyperap_tcam::bit::KeyBit::Zero,
                });
            }
        }

        // Iterations j = 1..w: acc += (a << j)·b_j in carry-save form.
        // Position j+w receives only the carry out of position j+w-1.
        // Process positions high→low so c'_i can still read position i-1.
        for j in 1..w {
            let hi = out_width.min(j + w + 1);
            for i in (j..hi).rev() {
                let pair_i = s_field.slot(i); // PairHi covers (s_i, c_i)
                                              // s'_i = s_i ⊕ c_i ⊕ (a_{i-j}·b_j)
                {
                    let s_has_pp = i - j < w;
                    let mut inputs = vec![pair_i, c_field.slot(i)];
                    if s_has_pp {
                        inputs.push(a.slot(i - j));
                        inputs.push(b.slot(j));
                    }
                    // inputs: 0 = s_i (pair hi), 1 = c_i (pair lo), 2 = a, 3 = b
                    self.lut_search_series(inputs, move |m| {
                        let s = bit(m, 0);
                        let c = bit(m, 1);
                        let pp = s_has_pp && bit(m, 2) && bit(m, 3);
                        s ^ c ^ pp
                    });
                }
                self.prog.push(ApOp::Latch);
                // c'_i = maj(s_{i-1}, c_{i-1}, a_{i-1-j}·b_j); c'_j = 0.
                if i == j {
                    self.prog.push(ApOp::TagNone);
                } else {
                    let pm1 = s_field.slot(i - 1);
                    let has_pp = i > j && i - 1 - j < w;
                    let mut inputs = vec![pm1, c_field.slot(i - 1)];
                    if has_pp {
                        inputs.push(a.slot(i - 1 - j));
                        inputs.push(b.slot(j));
                    }
                    self.lut_search_series(inputs, move |m| {
                        let s = bit(m, 0);
                        let c = bit(m, 1);
                        let pp = has_pp && bit(m, 2) && bit(m, 3);
                        (s as u8 + c as u8 + pp as u8) >= 2
                    });
                }
                self.prog.push(ApOp::WriteEncoded {
                    col: pair_i.base_col(),
                });
            }
        }

        // Carry-propagate conversion: out = S + C (pair-encoded adder).
        let sum = self.add(&s_field, &c_field);
        // The redundant accumulator is dead after conversion.
        self.free(&s_field);
        self.free(&c_field);
        sum.bits(0..out_width)
    }

    /// Emit the minimized accumulating search series for an ON-set over the
    /// given input slots, leaving the result in the tags (no write).
    pub(crate) fn lut_search_series(&mut self, inputs: Vec<Slot>, f: impl Fn(u16) -> bool) {
        let n = inputs.len();
        let ons = super::on_set(n, f);
        self.search_on_set(&inputs, &ons);
    }

    /// As [`lut_search_series`](Self::lut_search_series) with an explicit
    /// ON-set.
    pub(crate) fn search_on_set(&mut self, inputs: &[Slot], ons: &[u16]) {
        use crate::lut::{Lut, LutOutput};
        if ons.is_empty() {
            self.prog.push(ApOp::TagNone);
            return;
        }
        // Reuse the LUT lowering machinery, then strip the trailing write.
        // The output column is a placeholder; its write is stripped below.
        let lut = Lut {
            inputs: inputs.to_vec(),
            outputs: vec![LutOutput::Plain {
                col: 0,
                on_set: ons.to_vec(),
            }],
        };
        let lowered = lut.lower_hyper();
        for op in lowered.ops() {
            match op {
                ApOp::Search { key, accumulate } => self.prog.search(key.clone(), *accumulate),
                ApOp::Write { .. } => {} // the sentinel write: dropped
                other => self.prog.push(other.clone()),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::Microcode;
    use crate::machine::HyperPe;

    fn check_mul(width: usize, cases: &[(u64, u64)], full: bool) {
        let mut mc = Microcode::new(256);
        let a = mc.alloc_plain_input("a", width);
        let b = mc.alloc_plain_input("b", width);
        let out = if full {
            mc.mul_full(&a, &b)
        } else {
            mc.mul_wrapping(&a, &b)
        };
        let mut pe = HyperPe::new(cases.len(), 256);
        for (row, &(va, vb)) in cases.iter().enumerate() {
            a.store(&mut pe, row, va);
            b.store(&mut pe, row, vb);
        }
        mc.program().run(&mut pe);
        let mask = if full {
            (1u128 << (2 * width)) - 1
        } else {
            (1u128 << width) - 1
        };
        for (row, &(va, vb)) in cases.iter().enumerate() {
            let expect = ((va as u128 * vb as u128) & mask) as u64;
            assert_eq!(out.read(&pe, row), expect, "{va} * {vb} (w={width})");
        }
    }

    #[test]
    fn mul_full_8bit_is_correct() {
        check_mul(
            8,
            &[(0, 0), (1, 1), (255, 255), (13, 19), (200, 100), (2, 128)],
            true,
        );
    }

    #[test]
    fn mul_wrapping_8bit_is_correct() {
        check_mul(8, &[(255, 255), (16, 16), (17, 15), (0, 77)], false);
    }

    #[test]
    fn mul_full_5bit_exhaustive_diagonal() {
        let cases: Vec<(u64, u64)> = (0..32).map(|i| (i, (i * 7 + 3) % 32)).collect();
        check_mul(5, &cases, true);
    }

    #[test]
    fn mul_uses_encoded_writes() {
        let mut mc = Microcode::new(256);
        let a = mc.alloc_plain_input("a", 8);
        let b = mc.alloc_plain_input("b", 8);
        mc.mul_wrapping(&a, &b);
        let c = mc.program().op_counts();
        assert!(
            c.writes_encoded > c.writes_single,
            "CSA accumulator rewrites dominate: {c:?}"
        );
    }

    #[test]
    fn wrapping_is_cheaper_than_full() {
        let count = |full: bool| {
            let mut mc = Microcode::new(256);
            let a = mc.alloc_plain_input("a", 8);
            let b = mc.alloc_plain_input("b", 8);
            if full {
                mc.mul_full(&a, &b);
            } else {
                mc.mul_wrapping(&a, &b);
            }
            mc.program()
                .op_counts()
                .cycles(&hyperap_model::TechParams::rram())
        };
        assert!(count(false) < count(true));
    }
}

impl Microcode {
    /// `a * k` keeping the low `a.width()` bits, with the constant embedded:
    /// only the set bits of `k` contribute partial-product iterations
    /// (operand embedding, §V-B4c), and the multiplier bit disappears from
    /// every lookup table.
    pub fn mul_imm_wrapping(&mut self, a: &Field, k: u64) -> Field {
        let w = a.width();
        let out_width = w;
        if k & (((1u128 << w) - 1) as u64) == 0 {
            return self.zero_field(w);
        }
        let (s_field, c_field, _dirty) = self.alloc.alloc_paired("muli.s", "muli.c", out_width);
        let set_bits: Vec<usize> = (0..w).filter(|&j| k >> j & 1 == 1).collect();
        let j0 = set_bits[0];
        // First set bit initializes: s_i = a_{i-j0} for i >= j0, else 0.
        for i in 0..out_width {
            if i >= j0 && i - j0 < w {
                self.search_on_set(&[a.slot(i - j0)], &[0b1]);
            } else {
                self.prog.push(ApOp::TagNone);
            }
            self.prog.push(ApOp::Latch);
            self.prog.push(ApOp::TagNone); // c_i = 0
            self.prog.push(ApOp::WriteEncoded {
                col: s_field.slot(i).base_col(),
            });
        }
        for &j in &set_bits[1..] {
            let hi = out_width.min(j + w + 1);
            for i in (j..hi).rev() {
                let pair_i = s_field.slot(i);
                {
                    let s_has_pp = i - j < w;
                    let mut inputs = vec![pair_i, c_field.slot(i)];
                    if s_has_pp {
                        inputs.push(a.slot(i - j));
                    }
                    self.lut_search_series(inputs, move |m| {
                        let s = bit(m, 0);
                        let c = bit(m, 1);
                        let pp = s_has_pp && bit(m, 2);
                        s ^ c ^ pp
                    });
                }
                self.prog.push(ApOp::Latch);
                if i == j {
                    self.prog.push(ApOp::TagNone);
                } else {
                    let has_pp = i > j && i - 1 - j < w;
                    let mut inputs = vec![s_field.slot(i - 1), c_field.slot(i - 1)];
                    if has_pp {
                        inputs.push(a.slot(i - 1 - j));
                    }
                    self.lut_search_series(inputs, move |m| {
                        let s = bit(m, 0);
                        let c = bit(m, 1);
                        let pp = has_pp && bit(m, 2);
                        (s as u8 + c as u8 + pp as u8) >= 2
                    });
                }
                self.prog.push(ApOp::WriteEncoded {
                    col: pair_i.base_col(),
                });
            }
        }
        let sum = self.add(&s_field, &c_field);
        self.free(&s_field);
        self.free(&c_field);
        sum.bits(0..out_width)
    }
}

#[cfg(test)]
mod imm_tests {
    use super::super::Microcode;
    use crate::machine::HyperPe;

    #[test]
    fn mul_imm_is_correct() {
        for k in [0u64, 1, 2, 3, 0x5A, 0xFF, 0x81] {
            let mut mc = Microcode::new(256);
            let a = mc.alloc_plain_input("a", 8);
            let out = mc.mul_imm_wrapping(&a, k);
            let values = [0u64, 1, 7, 100, 255];
            let mut pe = HyperPe::new(values.len(), 256);
            for (row, &v) in values.iter().enumerate() {
                a.store(&mut pe, row, v);
            }
            mc.program().run(&mut pe);
            for (row, &v) in values.iter().enumerate() {
                assert_eq!(out.read(&pe, row), v.wrapping_mul(k) & 0xFF, "{v} * {k}");
            }
        }
    }

    #[test]
    fn mul_imm_is_cheaper_than_general_mul() {
        let rram = hyperap_model::TechParams::rram();
        let cost_imm = {
            let mut mc = Microcode::new(256);
            let a = mc.alloc_plain_input("a", 16);
            mc.mul_imm_wrapping(&a, 0x5A5A);
            mc.program().op_counts().cycles(&rram)
        };
        let cost_full = {
            let mut mc = Microcode::new(256);
            let a = mc.alloc_plain_input("a", 16);
            let b = mc.alloc_plain_input("b", 16);
            mc.mul_wrapping(&a, &b);
            mc.program().op_counts().cycles(&rram)
        };
        assert!(cost_imm < cost_full, "{cost_imm} vs {cost_full}");
    }
}

impl Microcode {
    /// Radix-4 CSA multiplication: processes **two** multiplier bits per
    /// iteration, halving the encoded-write count relative to
    /// [`mul_wrapping`](Self::mul_wrapping). Needs one precomputed `3a`
    /// row; when `b` is stored self-paired
    /// ([`alloc_self_paired_input`](Self::alloc_self_paired_input)), each
    /// digit is a single multi-valued key position.
    pub fn mul_radix4_wrapping(&mut self, a: &Field, b: &Field) -> Field {
        assert_eq!(a.width(), b.width(), "mul operands must match in width");
        let w = a.width();
        let out_width = w;
        // 3a = a + 2a (plain, width w + 2).
        let a2 = self.shl(a, 1, w + 1);
        let t3 = self.add(&a2, a); // width w + 2
        let (s_field, c_field, _dirty) = self.alloc.alloc_paired("mul4.s", "mul4.c", out_width);

        // pp bit k for digit d: 0 | a_k | (2a)_k = a_{k-1} | (3a)_k = t3_k.
        // Builds the LUT input list for one (position, digit) and returns
        // the evaluator of pp over the minterm, given the index offset where
        // the pp-source inputs begin.
        let n_digits = w.div_ceil(2);
        for dj in 0..n_digits {
            let j = 2 * dj;
            let hi_bound = out_width.min(j + w + 2 + 1);
            let digit_hi = (j + 1 < w).then(|| b.slot(j + 1));
            let digit_lo = b.slot(j);
            // Closure-friendly description of pp inputs at relative bit k.
            let pp_inputs = |mcx: &Field, t3x: &Field, k: usize| -> Vec<(Slot, u8)> {
                // (slot, role): role 0 = a_k, 1 = a_{k-1}, 2 = t3_k
                let mut v = Vec::new();
                if k < mcx.width() {
                    v.push((mcx.slot(k), 0u8));
                }
                if k >= 1 && k - 1 < mcx.width() {
                    v.push((mcx.slot(k - 1), 1u8));
                }
                if k < t3x.width() {
                    v.push((t3x.slot(k), 2u8));
                }
                v
            };
            let eval_pp = |m: u16, base: usize, roles: &[u8], digit: u8| -> bool {
                match digit {
                    0 => false,
                    1 => roles
                        .iter()
                        .position(|&r| r == 0)
                        .map(|p| bit(m, base + p))
                        .unwrap_or(false),
                    2 => roles
                        .iter()
                        .position(|&r| r == 1)
                        .map(|p| bit(m, base + p))
                        .unwrap_or(false),
                    _ => roles
                        .iter()
                        .position(|&r| r == 2)
                        .map(|p| bit(m, base + p))
                        .unwrap_or(false),
                }
            };
            if dj == 0 {
                // Initialize every accumulator pair: s_i = pp_i, c_i = 0.
                for i in 0..out_width {
                    let srcs = pp_inputs(a, &t3, i);
                    let mut inputs = vec![digit_lo];
                    if let Some(h) = digit_hi {
                        inputs.push(h);
                    }
                    let base = inputs.len();
                    let has_hi = digit_hi.is_some();
                    let roles: Vec<u8> = srcs.iter().map(|&(_, r)| r).collect();
                    inputs.extend(srcs.iter().map(|&(s, _)| s));
                    let rl = roles.clone();
                    self.lut_search_series(inputs, move |m| {
                        let d = (bit(m, 0) as u8) | (((has_hi && bit(m, 1)) as u8) * 2);
                        eval_pp(m, base, &rl, d)
                    });
                    self.prog.push(ApOp::Latch);
                    self.prog.push(ApOp::TagNone);
                    self.prog.push(ApOp::WriteEncoded {
                        col: s_field.slot(i).base_col(),
                    });
                }
                continue;
            }
            for i in (j..hi_bound).rev() {
                let pair_i = s_field.slot(i);
                // s'_i = s_i ^ c_i ^ pp_{i-j}
                {
                    let srcs = pp_inputs(a, &t3, i - j);
                    let mut inputs = vec![pair_i, c_field.slot(i), digit_lo];
                    if let Some(h) = digit_hi {
                        inputs.push(h);
                    }
                    let base = inputs.len();
                    let has_hi = digit_hi.is_some();
                    let roles: Vec<u8> = srcs.iter().map(|&(_, r)| r).collect();
                    inputs.extend(srcs.iter().map(|&(s, _)| s));
                    let rl = roles.clone();
                    self.lut_search_series(inputs, move |m| {
                        let d = (bit(m, 2) as u8) | (((has_hi && bit(m, 3)) as u8) * 2);
                        bit(m, 0) ^ bit(m, 1) ^ eval_pp(m, base, &rl, d)
                    });
                }
                self.prog.push(ApOp::Latch);
                // c'_i = maj(s_{i-1}, c_{i-1}, pp_{i-1-j}); c'_j = 0.
                if i == j {
                    self.prog.push(ApOp::TagNone);
                } else {
                    let srcs = pp_inputs(a, &t3, i - 1 - j);
                    let mut inputs = vec![s_field.slot(i - 1), c_field.slot(i - 1), digit_lo];
                    if let Some(h) = digit_hi {
                        inputs.push(h);
                    }
                    let base = inputs.len();
                    let has_hi = digit_hi.is_some();
                    let roles: Vec<u8> = srcs.iter().map(|&(_, r)| r).collect();
                    inputs.extend(srcs.iter().map(|&(s, _)| s));
                    let rl = roles.clone();
                    self.lut_search_series(inputs, move |m| {
                        let d = (bit(m, 2) as u8) | (((has_hi && bit(m, 3)) as u8) * 2);
                        let pp = eval_pp(m, base, &rl, d);
                        (bit(m, 0) as u8 + bit(m, 1) as u8 + pp as u8) >= 2
                    });
                }
                self.prog.push(ApOp::WriteEncoded {
                    col: pair_i.base_col(),
                });
            }
        }
        self.free(&t3);
        let sum = self.add(&s_field, &c_field);
        self.free(&s_field);
        self.free(&c_field);
        sum.bits(0..out_width)
    }
}

#[cfg(test)]
mod radix4_tests {
    use super::super::Microcode;
    use crate::machine::HyperPe;

    fn check_r4(width: usize, self_paired: bool, cases: &[(u64, u64)]) {
        let mut mc = Microcode::new(256);
        let a = mc.alloc_plain_input("a", width);
        let b = if self_paired {
            mc.alloc_self_paired_input("b", width)
        } else {
            mc.alloc_plain_input("b", width)
        };
        let out = mc.mul_radix4_wrapping(&a, &b);
        let mut pe = HyperPe::new(cases.len(), 256);
        for (row, &(va, vb)) in cases.iter().enumerate() {
            a.store(&mut pe, row, va);
            b.store(&mut pe, row, vb);
        }
        mc.program().run(&mut pe);
        let mask = ((1u128 << width) - 1) as u64;
        for (row, &(va, vb)) in cases.iter().enumerate() {
            assert_eq!(
                out.read(&pe, row),
                va.wrapping_mul(vb) & mask,
                "{va} * {vb} (w={width}, paired={self_paired})"
            );
        }
    }

    #[test]
    fn radix4_8bit_is_correct() {
        let cases = [
            (0u64, 0u64),
            (255, 255),
            (13, 19),
            (200, 100),
            (1, 254),
            (85, 3),
        ];
        check_r4(8, true, &cases);
        check_r4(8, false, &cases);
    }

    #[test]
    fn radix4_odd_width() {
        let cases = [(0u64, 0u64), (31, 31), (17, 5), (9, 21)];
        check_r4(5, true, &cases);
    }

    #[test]
    fn radix4_5bit_exhaustive_diagonal() {
        let cases: Vec<(u64, u64)> = (0..32).map(|i| (i, (i * 11 + 2) % 32)).collect();
        check_r4(5, true, &cases);
    }

    #[test]
    fn radix4_beats_radix2() {
        let rram = hyperap_model::TechParams::rram();
        let r4 = {
            let mut mc = Microcode::new(256);
            let a = mc.alloc_plain_input("a", 32);
            let b = mc.alloc_self_paired_input("b", 32);
            mc.mul_radix4_wrapping(&a, &b);
            mc.program().op_counts().cycles(&rram)
        };
        let r2 = {
            let mut mc = Microcode::new(256);
            let a = mc.alloc_plain_input("a", 32);
            let b = mc.alloc_plain_input("b", 32);
            mc.mul_wrapping(&a, &b);
            mc.program().op_counts().cycles(&rram)
        };
        assert!(r4 < r2, "radix-4 {r4} vs radix-2 {r2}");
        println!("radix4 {r4} radix2 {r2}");
    }
}
