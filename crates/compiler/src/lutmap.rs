//! LUT generation (§V-B4): cut-based technology mapping of an AIG into
//! lookup tables of at most `max_inputs` inputs, adapted from the priority-
//! cuts algorithm \[42\] with the paper's cost function (Eq. 2):
//!
//! ```text
//! Cost1[i] = Σ Cost1[j]  +  N_patterns  +  α        (j: input clusters)
//! ```
//!
//! `N_patterns` is the number of search operations for the cluster's lookup
//! table and α = Twrite/Tsearch weighs the write that follows them, so the
//! same mapper retargets between RRAM (α = 10: prefer fewer, larger LUTs)
//! and CMOS (α = 1). Unlike FPGA technology mapping, the objective is total
//! search+write cost, not critical-path depth (§V-B4). Mapping runs over
//! whole DFG regions, so clusters freely cross DFG node boundaries — this
//! is the paper's **operation merging** optimization.

use crate::aig::{lit_inverted, lit_node, Aig, AigNode, Lit};
use hyperap_tcam::mvsop::{minimize, Cover, PosKind};
use std::collections::{HashMap, HashSet};

/// Mapping options.
#[derive(Debug, Clone)]
pub struct MapOptions {
    /// Maximum LUT inputs (the paper uses 12; see §V-B4 on why it is
    /// bounded).
    pub max_inputs: usize,
    /// Eq. 2's α = Twrite/Tsearch.
    pub alpha: f64,
    /// Priority-cut pool size per node.
    pub cuts_per_node: usize,
}

impl Default for MapOptions {
    fn default() -> Self {
        MapOptions {
            max_inputs: 6,
            alpha: 10.0,
            cuts_per_node: 6,
        }
    }
}

/// One mapped LUT: computes AIG node `root` (positive polarity) from the
/// leaf nodes.
#[derive(Debug, Clone)]
pub struct MappedLut {
    /// Root AIG node id.
    pub root: u32,
    /// Leaf node ids (LUT inputs), sorted.
    pub leaves: Vec<u32>,
    /// ON-set minterms over the leaves (bit `i` of a minterm = leaf `i`).
    pub on_set: Vec<u16>,
}

/// The result of mapping: LUTs in topological order (every LUT's non-input
/// leaves are roots of earlier LUTs or members of the initial leaf set).
#[derive(Debug, Clone, Default)]
pub struct Mapping {
    /// Chosen LUTs.
    pub luts: Vec<MappedLut>,
}

impl Mapping {
    /// Total estimated searches (Σ N_patterns over LUTs, single-bit
    /// positions — the pairing step may reduce this further).
    pub fn total_patterns(&self) -> usize {
        self.luts.iter().map(estimate_patterns_exact).sum()
    }
}

fn estimate_patterns_exact(l: &MappedLut) -> usize {
    let cover = Cover::new(
        vec![PosKind::Single; l.leaves.len()],
        min_to_vecs(&l.on_set, l.leaves.len()),
    );
    minimize(&cover).num_searches()
}

fn min_to_vecs(on: &[u16], k: usize) -> Vec<Vec<u8>> {
    on.iter()
        .map(|&m| (0..k).map(|i| (m >> i & 1) as u8).collect())
        .collect()
}

/// The ON-set of ¬f over `k` inputs: every minterm *not* in `on_set`.
/// Used by inverted-literal absorption — a LUT whose output is only ever
/// consumed inverted writes the complemented function instead of paying a
/// downstream inverter LUT.
pub fn complement_on_set(on_set: &[u16], k: usize) -> Vec<u16> {
    let present: std::collections::HashSet<u16> = on_set.iter().copied().collect();
    (0..1u32 << k)
        .map(|m| m as u16)
        .filter(|m| !present.contains(m))
        .collect()
}

/// Rewrite an ON-set for an input whose backing column stores the
/// *complement* of the logical leaf: flip bit `input` of every minterm.
pub fn flip_on_set_input(on_set: &[u16], input: usize) -> Vec<u16> {
    on_set.iter().map(|&m| m ^ (1 << input)).collect()
}

/// Map the cones of `outputs` into LUTs. Nodes in `extra_leaves` are
/// treated as free inputs (already materialized in storage).
pub fn map(g: &Aig, outputs: &[Lit], extra_leaves: &HashSet<u32>, opts: &MapOptions) -> Mapping {
    let cone = g.cone(outputs);
    let is_leaf = |id: u32| -> bool {
        matches!(g.node(id), AigNode::Const0 | AigNode::Input { .. }) || extra_leaves.contains(&id)
    };

    // Cut enumeration with Eq. 2 costing.
    #[derive(Clone)]
    struct Cut {
        leaves: Vec<u32>,
        cost: f64,
    }
    let mut cuts: HashMap<u32, Vec<Cut>> = HashMap::new();
    let mut best_cost: HashMap<u32, f64> = HashMap::new();
    let mut pattern_memo: HashMap<(usize, Vec<u64>), usize> = HashMap::new();

    let n_patterns = |g: &Aig,
                      root: u32,
                      leaves: &[u32],
                      memo: &mut HashMap<(usize, Vec<u64>), usize>|
     -> usize {
        let (tt, k) = truth_table(g, root, leaves);
        if let Some(&p) = memo.get(&(k, tt.clone())) {
            return p;
        }
        let on: Vec<Vec<u8>> = (0..1usize << k)
            .filter(|&m| tt[m / 64] >> (m % 64) & 1 == 1)
            .map(|m| (0..k).map(|i| (m >> i & 1) as u8).collect())
            .collect();
        let sol = minimize(&Cover::new(vec![PosKind::Single; k], on));
        let p = sol.num_searches();
        memo.insert((k, tt), p);
        p
    };

    for &id in &cone {
        if is_leaf(id) {
            cuts.insert(
                id,
                vec![Cut {
                    leaves: vec![id],
                    cost: 0.0,
                }],
            );
            best_cost.insert(id, 0.0);
            continue;
        }
        let AigNode::And(la, lb) = g.node(id) else {
            unreachable!("non-leaf is an AND")
        };
        let (na, nb) = (lit_node(la), lit_node(lb));
        let mut pool: Vec<Cut> = Vec::new();
        // Children contribute their cut pools plus their trivial self-cut
        // (using the child as a materialized leaf), which guarantees every
        // AND node has at least the {na, nb} cut.
        let with_trivial = |node: u32, cuts: &HashMap<u32, Vec<Cut>>, best: &HashMap<u32, f64>| {
            let mut v = cuts.get(&node).cloned().unwrap_or_default();
            if !v.iter().any(|c| c.leaves == [node]) {
                v.push(Cut {
                    leaves: vec![node],
                    cost: *best.get(&node).unwrap_or(&0.0),
                });
            }
            v
        };
        let ca = with_trivial(na, &cuts, &best_cost);
        let cb = with_trivial(nb, &cuts, &best_cost);
        for a in &ca {
            for b in &cb {
                let mut leaves: Vec<u32> =
                    a.leaves.iter().chain(b.leaves.iter()).copied().collect();
                leaves.sort_unstable();
                leaves.dedup();
                if leaves.len() > opts.max_inputs {
                    continue;
                }
                if pool.iter().any(|c| c.leaves == leaves) {
                    continue;
                }
                let patterns = n_patterns(g, id, &leaves, &mut pattern_memo);
                let leaf_cost: f64 = leaves
                    .iter()
                    .map(|l| *best_cost.get(l).unwrap_or(&0.0))
                    .sum();
                pool.push(Cut {
                    cost: leaf_cost + patterns as f64 + opts.alpha,
                    leaves,
                });
            }
        }
        pool.sort_by(|x, y| x.cost.total_cmp(&y.cost));
        pool.truncate(opts.cuts_per_node);
        let best = pool.first().map(|c| c.cost).unwrap_or(f64::INFINITY);
        best_cost.insert(id, best);
        cuts.insert(id, pool);
    }

    // Top-down cover extraction.
    let mut required: Vec<u32> = outputs
        .iter()
        .map(|&l| lit_node(l))
        .filter(|&n| !is_leaf(n))
        .collect();
    required.sort_unstable();
    required.dedup();
    let mut chosen: HashMap<u32, Vec<u32>> = HashMap::new();
    let mut work = required.clone();
    while let Some(id) = work.pop() {
        if chosen.contains_key(&id) {
            continue;
        }
        let cut = cuts[&id]
            .first()
            .unwrap_or_else(|| panic!("node {id} has no feasible cut (fanin cone too wide?)"));
        chosen.insert(id, cut.leaves.clone());
        for &leaf in &cut.leaves {
            if !is_leaf(leaf) && !chosen.contains_key(&leaf) {
                work.push(leaf);
            }
        }
    }

    // Emit in topological (cone) order.
    let mut luts = Vec::new();
    for &id in &cone {
        if let Some(leaves) = chosen.get(&id) {
            let (tt, k) = truth_table(g, id, leaves);
            let on_set: Vec<u16> = (0..1usize << k)
                .filter(|&m| tt[m / 64] >> (m % 64) & 1 == 1)
                .map(|m| m as u16)
                .collect();
            luts.push(MappedLut {
                root: id,
                leaves: leaves.clone(),
                on_set,
            });
        }
    }
    Mapping { luts }
}

/// Truth table of node `root` over `leaves` (bit `m` of the packed table =
/// value at minterm `m`; minterm bit `i` = leaf `i`).
pub fn truth_table(g: &Aig, root: u32, leaves: &[u32]) -> (Vec<u64>, usize) {
    let k = leaves.len();
    assert!(k <= 16, "LUT wider than 16 inputs");
    let leaf_index: HashMap<u32, usize> = leaves.iter().enumerate().map(|(i, &n)| (n, i)).collect();
    let mut tt = vec![0u64; (1usize << k).div_ceil(64)];
    // Local cone from root down to leaves.
    let mut vals: HashMap<u32, bool> = HashMap::new();
    for m in 0..1usize << k {
        vals.clear();
        let v = eval_to_leaves(g, root, &leaf_index, m, &mut vals);
        if v {
            tt[m / 64] |= 1 << (m % 64);
        }
    }
    (tt, k)
}

fn eval_to_leaves(
    g: &Aig,
    id: u32,
    leaves: &HashMap<u32, usize>,
    minterm: usize,
    vals: &mut HashMap<u32, bool>,
) -> bool {
    if let Some(&i) = leaves.get(&id) {
        return minterm >> i & 1 == 1;
    }
    if let Some(&v) = vals.get(&id) {
        return v;
    }
    let v = match g.node(id) {
        AigNode::Const0 => false,
        AigNode::Input { .. } => {
            panic!("cut does not cover input node {id}")
        }
        AigNode::And(a, b) => {
            let va = eval_to_leaves(g, lit_node(a), leaves, minterm, vals) ^ lit_inverted(a);
            let vb = eval_to_leaves(g, lit_node(b), leaves, minterm, vals) ^ lit_inverted(b);
            va && vb
        }
    };
    vals.insert(id, v);
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rtl;

    #[test]
    fn complement_on_set_inverts_the_function() {
        // f(a,b) = a·b over 2 inputs: on-set {3} → complement {0,1,2}.
        let mut comp = complement_on_set(&[3], 2);
        comp.sort_unstable();
        assert_eq!(comp, vec![0, 1, 2]);
        // Complementing twice is the identity.
        let mut twice = complement_on_set(&comp, 2);
        twice.sort_unstable();
        assert_eq!(twice, vec![3]);
    }

    #[test]
    fn flip_on_set_input_rewires_a_complemented_leaf() {
        // f(a,b) = a·b with leaf 0 stored complemented: the table must
        // answer with ¬a in slot a, i.e. on-set {3} → {2}.
        assert_eq!(flip_on_set_input(&[3], 0), vec![2]);
        assert_eq!(flip_on_set_input(&[2], 0), vec![3]);
        // Semantics check by exhaustive evaluation over both inputs.
        let f = |on: &[u16], a: u16, b: u16| on.contains(&(a | (b << 1)));
        let flipped = flip_on_set_input(&[1, 2], 1);
        for a in 0..2u16 {
            for b in 0..2u16 {
                assert_eq!(f(&flipped, a, b), f(&[1, 2], a, 1 - b));
            }
        }
    }

    #[test]
    fn maps_small_adder_into_few_luts() {
        let mut g = Aig::new();
        let a: Vec<Lit> = (0..3).map(|_| g.input()).collect();
        let b: Vec<Lit> = (0..3).map(|_| g.input()).collect();
        let sum = rtl::add(&mut g, &a.clone(), &b.clone(), 4);
        let mapping = map(&g, &sum, &HashSet::new(), &MapOptions::default());
        // 4 output bits; with 8-input LUTs the whole 3-bit adder fits in
        // at most 4 LUTs (one per output), usually fewer nodes duplicated.
        assert!(!mapping.luts.is_empty());
        assert!(mapping.luts.len() <= 6, "got {}", mapping.luts.len());
        // Verify each LUT's truth table against direct AIG evaluation.
        for lut in &mapping.luts {
            for m in 0..1u16 << lut.leaves.len() {
                let expected = {
                    let leaf_idx: HashMap<u32, usize> = lut
                        .leaves
                        .iter()
                        .enumerate()
                        .map(|(i, &n)| (n, i))
                        .collect();
                    let mut vals = HashMap::new();
                    eval_to_leaves(&g, lut.root, &leaf_idx, m as usize, &mut vals)
                };
                assert_eq!(lut.on_set.contains(&m), expected);
            }
        }
    }

    #[test]
    fn alpha_steers_lut_granularity() {
        // High α (RRAM) should never need more LUTs (writes) than low α.
        let build = |alpha: f64| {
            let mut g = Aig::new();
            let a: Vec<Lit> = (0..4).map(|_| g.input()).collect();
            let b: Vec<Lit> = (0..4).map(|_| g.input()).collect();
            let sum = rtl::add(&mut g, &a, &b, 5);
            let opts = MapOptions {
                alpha,
                ..MapOptions::default()
            };
            map(&g, &sum, &HashSet::new(), &opts).luts.len()
        };
        assert!(build(10.0) <= build(1.0));
    }

    #[test]
    fn extra_leaves_act_as_inputs() {
        let mut g = Aig::new();
        let a = g.input();
        let b = g.input();
        let x = g.and(a, b);
        let y = g.xor(x, a);
        // Declare x materialized: the mapping must treat it as a leaf.
        let mut leaves = HashSet::new();
        leaves.insert(lit_node(x));
        let mapping = map(&g, &[y], &leaves, &MapOptions::default());
        assert_eq!(mapping.luts.len(), 1);
        assert!(mapping.luts[0].leaves.contains(&lit_node(x)));
    }

    #[test]
    fn truth_table_of_xor() {
        let mut g = Aig::new();
        let a = g.input();
        let b = g.input();
        let x = g.xor(a, b);
        // The xor literal is complemented: the underlying node is an XNOR.
        let (tt, k) = truth_table(&g, lit_node(x), &[lit_node(a), lit_node(b)]);
        assert_eq!(k, 2);
        let expect = if crate::aig::lit_inverted(x) {
            0b1001
        } else {
            0b0110
        };
        assert_eq!(tt[0] & 0xF, expect);
    }

    #[test]
    fn mapping_covers_outputs_topologically() {
        let mut g = Aig::new();
        let ins: Vec<Lit> = (0..6).map(|_| g.input()).collect();
        let mut acc = ins[0];
        for &l in &ins[1..] {
            let x = g.xor(acc, l);
            acc = g.and(x, ins[0]);
        }
        let mapping = map(
            &g,
            &[acc],
            &HashSet::new(),
            &MapOptions {
                max_inputs: 4,
                ..MapOptions::default()
            },
        );
        // Every non-primary leaf must appear as an earlier LUT root.
        let mut produced: HashSet<u32> = HashSet::new();
        for lut in &mapping.luts {
            for &leaf in &lut.leaves {
                if matches!(g.node(leaf), AigNode::And(..)) {
                    assert!(produced.contains(&leaf), "leaf {leaf} not yet produced");
                }
            }
            produced.insert(lut.root);
        }
        assert!(produced.contains(&lit_node(acc)));
    }
}
