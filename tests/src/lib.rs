pub fn placeholder() {}
