//! Hand-optimized arithmetic microcode — the paper's expert-written RTL
//! library (§V-B3), lowered directly to associative operations.
//!
//! Every routine is built from planned LUT applications
//! ([`crate::lut::Lut`]) and therefore executes under the Hyper-AP execution
//! model: multi-pattern searches accumulated into the tags, one write per
//! output column. The complex operations use the iterative methods the paper
//! cites: long division \[51\], the abacus integer square root \[26\], and the
//! shift-and-add exponential \[46\].
//!
//! Routines are *word-parallel*: one call computes the operation for every
//! row of the PE simultaneously, and the returned [`Field`] describes where
//! the per-row results live.
//!
//! # Example
//!
//! ```
//! use hyperap_core::machine::HyperPe;
//! use hyperap_core::microcode::Microcode;
//!
//! let mut mc = Microcode::new(64);
//! let (a, b) = mc.alloc_paired_inputs("a", "b", 8);
//! let sum = mc.add(&a, &b);
//! let mut pe = HyperPe::new(4, 64);
//! a.store(&mut pe, 0, 200);
//! b.store(&mut pe, 0, 99);
//! mc.program().run(&mut pe);
//! assert_eq!(sum.read(&pe, 0), 299);
//! ```

mod arith;
mod cmp;
mod divfused;
mod divsqrt;
mod exp;
mod logic;
mod mul;

use crate::field::{Field, FieldAllocator, Slot};
use crate::lut::{Lut, LutOutput};
use crate::program::Program;

/// Builder context for microcoded routines: owns the column allocator and
/// the program under construction.
#[derive(Debug, Clone)]
pub struct Microcode {
    alloc: FieldAllocator,
    prog: Program,
    zero_col: Option<usize>,
}

/// Enumerate the ON-set of an `n`-input boolean function.
pub fn on_set(n_inputs: usize, f: impl Fn(u16) -> bool) -> Vec<u16> {
    (0..1u16 << n_inputs).filter(|&m| f(m)).collect()
}

/// Extract logical input `i` from a minterm.
pub fn bit(m: u16, i: usize) -> bool {
    m >> i & 1 == 1
}

impl Microcode {
    /// New context for a PE with `n_cols` columns.
    pub fn new(n_cols: usize) -> Self {
        Microcode {
            alloc: FieldAllocator::new(n_cols),
            prog: Program::new(),
            zero_col: None,
        }
    }

    /// The program built so far.
    pub fn program(&self) -> &Program {
        &self.prog
    }

    /// Consume the context, returning the program.
    pub fn into_program(self) -> Program {
        self.prog
    }

    /// Allocate a plain field guaranteed to read as zero (recycled columns
    /// are zeroed with counted write operations).
    pub fn alloc_plain(&mut self, name: impl Into<String>, width: usize) -> Field {
        let (f, dirty) = self.alloc.alloc_plain(name, width);
        self.prog.zero_columns(&dirty);
        f
    }

    /// Allocate two operand fields stored as encoded pairs (bit `i` of the
    /// first is pair-high with bit `i` of the second). Intended for operands
    /// loaded by the host before execution; no zeroing is emitted because
    /// the host load initializes the pair codes.
    pub fn alloc_paired_inputs(
        &mut self,
        name_hi: impl Into<String>,
        name_lo: impl Into<String>,
        width: usize,
    ) -> (Field, Field) {
        let (a, b, _dirty) = self.alloc.alloc_paired(name_hi, name_lo, width);
        (a, b)
    }

    /// Allocate a plain field intended for host-loaded input data (no
    /// zeroing needed; the host load initializes it).
    pub fn alloc_plain_input(&mut self, name: impl Into<String>, width: usize) -> Field {
        let (f, _dirty) = self.alloc.alloc_plain(name, width);
        f
    }

    /// Allocate a host-loaded input whose **adjacent bits** are two-bit
    /// encoded with each other (bit 2k+1 pair-high, bit 2k pair-low; an odd
    /// top bit stays plain). Radix-4 algorithms search a whole 2-bit digit
    /// with one key this way.
    pub fn alloc_self_paired_input(&mut self, name: impl Into<String>, width: usize) -> Field {
        let name = name.into();
        let mut slots = Vec::with_capacity(width);
        for _ in 0..width / 2 {
            let (hi, lo, _d) = self
                .alloc
                .alloc_paired(format!("{name}.h"), format!("{name}.l"), 1);
            slots.push(lo.slot(0));
            slots.push(hi.slot(0));
        }
        if width % 2 == 1 {
            let (f, _d) = self.alloc.alloc_plain(format!("{name}.top"), 1);
            slots.push(f.slot(0));
        }
        Field::new(name, slots)
    }

    /// Return a field's columns to the allocator for recycling.
    ///
    /// The caller must ensure no live field aliases them (routines may
    /// return views into their inputs; free only fields you know are dead).
    pub fn free(&mut self, field: &Field) {
        // Never recycle the pinned shared zero column (views may hold it).
        let filtered: Vec<Slot> = field
            .slots
            .iter()
            .copied()
            .filter(|s| Some(s.base_col()) != self.zero_col)
            .collect();
        self.alloc.free(&Field::new("freed", filtered));
    }

    /// Free one scratch slot (single-column ripple state). Only plain slots
    /// are recycled; pair halves are never scratch.
    pub(crate) fn free_slot(&mut self, s: Slot) {
        if matches!(s, Slot::Single { .. }) {
            self.alloc.free(&Field::new("scratch", vec![s]));
        }
    }

    /// A field of `width` constant-zero bits (all slots share one pinned
    /// zero column; free).
    pub fn zero_field(&mut self, width: usize) -> Field {
        let col = match self.zero_col {
            Some(c) => c,
            None => {
                let (c, dirty) = self.alloc.alloc_col();
                if dirty {
                    self.prog.zero_columns(&[c]);
                }
                self.zero_col = Some(c);
                c
            }
        };
        Field::new("zero", vec![Slot::Single { col }; width])
    }

    /// Append a LUT application (lowered under the Hyper-AP model).
    pub fn apply_lut(&mut self, lut: &Lut) {
        self.prog.extend(&lut.lower_hyper());
    }

    /// Apply a LUT with the given inputs and one plain output computed by
    /// `f` over logical minterms; returns the (freshly allocated) output
    /// bit slot.
    pub(crate) fn lut1(&mut self, inputs: Vec<Slot>, f: impl Fn(u16) -> bool, name: &str) -> Slot {
        let out = self.alloc_plain(name, 1);
        let slot = out.slot(0);
        self.lut1_into(inputs, f, slot.base_col());
        slot
    }

    /// Apply a LUT writing into an existing pre-zeroed plain column.
    pub(crate) fn lut1_into(&mut self, inputs: Vec<Slot>, f: impl Fn(u16) -> bool, col: usize) {
        let n = inputs.len();
        let lut = Lut {
            inputs,
            outputs: vec![LutOutput::Plain {
                col,
                on_set: on_set(n, f),
            }],
        };
        self.apply_lut(&lut);
    }

    /// Apply a LUT with two plain outputs into existing pre-zeroed columns.
    pub(crate) fn lut2_into(
        &mut self,
        inputs: Vec<Slot>,
        f0: impl Fn(u16) -> bool,
        col0: usize,
        f1: impl Fn(u16) -> bool,
        col1: usize,
    ) {
        let n = inputs.len();
        let lut = Lut {
            inputs,
            outputs: vec![
                LutOutput::Plain {
                    col: col0,
                    on_set: on_set(n, f0),
                },
                LutOutput::Plain {
                    col: col1,
                    on_set: on_set(n, f1),
                },
            ],
        };
        self.apply_lut(&lut);
    }

    /// Apply a LUT writing an encoded pair output (hi, lo) at `col`.
    pub fn lut_encoded_into(
        &mut self,
        inputs: Vec<Slot>,
        f_hi: impl Fn(u16) -> bool,
        f_lo: impl Fn(u16) -> bool,
        col: usize,
    ) {
        let n = inputs.len();
        let lut = Lut {
            inputs,
            outputs: vec![LutOutput::EncodedPair {
                col,
                hi_on_set: on_set(n, f_hi),
                lo_on_set: on_set(n, f_lo),
            }],
        };
        self.apply_lut(&lut);
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    use super::*;
    use crate::machine::HyperPe;

    /// Run a builder callback, execute the program on fresh rows loaded with
    /// `values`, and return the result field's per-row values.
    pub fn run_unary(
        width: usize,
        values: &[u64],
        build: impl FnOnce(&mut Microcode, &Field) -> Field,
    ) -> Vec<u64> {
        let mut mc = Microcode::new(256);
        let a = mc.alloc_plain_input("a", width);
        let out = build(&mut mc, &a);
        let mut pe = HyperPe::new(values.len().max(1), 256);
        for (row, &v) in values.iter().enumerate() {
            a.store(&mut pe, row, v);
        }
        mc.program().run(&mut pe);
        (0..values.len()).map(|r| out.read(&pe, r)).collect()
    }

    /// Binary version of [`run_unary`] with paired operand storage.
    pub fn run_binary_paired(
        width: usize,
        pairs: &[(u64, u64)],
        build: impl FnOnce(&mut Microcode, &Field, &Field) -> Field,
    ) -> Vec<u64> {
        let mut mc = Microcode::new(256);
        let (a, b) = mc.alloc_paired_inputs("a", "b", width);
        let out = build(&mut mc, &a, &b);
        let mut pe = HyperPe::new(pairs.len().max(1), 256);
        for (row, &(va, vb)) in pairs.iter().enumerate() {
            a.store(&mut pe, row, va);
            b.store(&mut pe, row, vb);
        }
        mc.program().run(&mut pe);
        (0..pairs.len()).map(|r| out.read(&pe, r)).collect()
    }

    /// Binary version with plain operand storage.
    pub fn run_binary_plain(
        width: usize,
        pairs: &[(u64, u64)],
        build: impl FnOnce(&mut Microcode, &Field, &Field) -> Field,
    ) -> Vec<u64> {
        let mut mc = Microcode::new(256);
        let a = mc.alloc_plain_input("a", width);
        let b = mc.alloc_plain_input("b", width);
        let out = build(&mut mc, &a, &b);
        let mut pe = HyperPe::new(pairs.len().max(1), 256);
        for (row, &(va, vb)) in pairs.iter().enumerate() {
            a.store(&mut pe, row, va);
            b.store(&mut pe, row, vb);
        }
        mc.program().run(&mut pe);
        (0..pairs.len()).map(|r| out.read(&pe, r)).collect()
    }
}
