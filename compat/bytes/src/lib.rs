//! Offline shim for the `bytes` crate: the cursor-style [`Buf`] reader over
//! `&[u8]`, the [`BufMut`] writer, and a `Vec<u8>`-backed [`BytesMut`].
//! Multi-byte integers use big-endian byte order, matching the real crate.

/// Sequential big-endian reader (subset of `bytes::Buf`).
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// True if any bytes are left.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Read one byte and advance.
    ///
    /// # Panics
    ///
    /// Panics if the buffer is exhausted.
    fn get_u8(&mut self) -> u8;

    /// Read a big-endian `u16` and advance.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two bytes remain.
    fn get_u16(&mut self) -> u16;

    /// Read a big-endian `u32` and advance.
    ///
    /// # Panics
    ///
    /// Panics if fewer than four bytes remain.
    fn get_u32(&mut self) -> u32;

    /// Read a big-endian `u64` and advance.
    ///
    /// # Panics
    ///
    /// Panics if fewer than eight bytes remain.
    fn get_u64(&mut self) -> u64;

    /// Fill `dst` from the buffer and advance.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `dst.len()` bytes remain.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Skip `cnt` bytes.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `cnt` bytes remain.
    fn advance(&mut self, cnt: usize);
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn get_u8(&mut self) -> u8 {
        let b = self[0];
        *self = &self[1..];
        b
    }

    fn get_u16(&mut self) -> u16 {
        let v = u16::from_be_bytes([self[0], self[1]]);
        *self = &self[2..];
        v
    }

    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        b.copy_from_slice(&self[..4]);
        *self = &self[4..];
        u32::from_be_bytes(b)
    }

    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        b.copy_from_slice(&self[..8]);
        *self = &self[8..];
        u64::from_be_bytes(b)
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        dst.copy_from_slice(&self[..dst.len()]);
        *self = &self[dst.len()..];
    }

    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

/// Sequential big-endian writer (subset of `bytes::BufMut`).
pub trait BufMut {
    /// Append one byte.
    fn put_u8(&mut self, v: u8);

    /// Append a big-endian `u16`.
    fn put_u16(&mut self, v: u16);

    /// Append a big-endian `u32`.
    fn put_u32(&mut self, v: u32);

    /// Append a big-endian `u64`.
    fn put_u64(&mut self, v: u64);

    /// Append a slice.
    fn put_slice(&mut self, src: &[u8]);
}

/// Growable byte buffer (subset of `bytes::BytesMut`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// Empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Number of bytes written.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Copy out as a plain `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.buf.clone()
    }
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.buf
    }
}

impl From<BytesMut> for Vec<u8> {
    fn from(b: BytesMut) -> Self {
        b.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_read_round_trip() {
        let mut w = BytesMut::new();
        w.put_u8(0xAB);
        w.put_u16(0x1234);
        w.put_slice(&[1, 2, 3]);
        let bytes = w.to_vec();
        let mut r: &[u8] = &bytes;
        assert_eq!(r.remaining(), 6);
        assert_eq!(r.get_u8(), 0xAB);
        assert_eq!(r.get_u16(), 0x1234);
        let mut out = [0u8; 3];
        r.copy_to_slice(&mut out);
        assert_eq!(out, [1, 2, 3]);
        assert!(!r.has_remaining());
    }

    #[test]
    fn u16_is_big_endian() {
        let mut w = BytesMut::new();
        w.put_u16(0x0102);
        assert_eq!(w.as_ref(), &[0x01, 0x02]);
    }

    #[test]
    fn wide_integers_round_trip_big_endian() {
        let mut w = BytesMut::new();
        w.put_u32(0x0102_0304);
        w.put_u64(0x0506_0708_090A_0B0C);
        assert_eq!(
            w.as_ref(),
            &[0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09, 0x0A, 0x0B, 0x0C]
        );
        let mut r: &[u8] = w.as_ref();
        assert_eq!(r.get_u32(), 0x0102_0304);
        assert_eq!(r.get_u64(), 0x0506_0708_090A_0B0C);
        assert!(!r.has_remaining());
    }

    #[test]
    fn advance_skips() {
        let bytes = [1u8, 2, 3, 4];
        let mut r: &[u8] = &bytes;
        r.advance(2);
        assert_eq!(r.get_u8(), 3);
    }
}
