//! Round-trip properties of full + incremental snapshots: a machine that
//! runs, checkpoints, runs more, delta-checkpoints, and is restored into a
//! **fresh** machine — possibly with a different chunk width — is
//! bit-identical to a machine that ran the same ops straight through, and
//! keeps behaving identically afterwards. Mirrors the engine-equivalence
//! pattern of `crates/arch/tests/fault_equivalence.rs`: chunk widths 1, 3,
//! 4 (whole group), with and without a seeded fault model.

mod common;

use common::{assert_identical, assert_matches_snap, build_machine, snap, stream_pair};
use hyperap_arch::SlabMachine;
use hyperap_ckpt::{CheckpointSink, Checkpointer, CkptError, MachineCheckpoint, MemSink};
use proptest::prelude::*;

fn fresh(chunk_pes: usize, faulty: bool) -> SlabMachine {
    let mut cfg = hyperap_arch::ArchConfig::tiny();
    if faulty {
        cfg.faults = common::dense_faults();
    }
    SlabMachine::with_chunk_pes(cfg, chunk_pes)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// run A → full checkpoint → run B → incremental checkpoint → restore
    /// into a fresh machine of a (possibly different) chunk width ≡ the
    /// straight-line machine after A;B — and still ≡ after running C on
    /// both.
    #[test]
    fn incremental_snapshot_restores_the_straight_line_machine(
        chunk_a in (0usize..3).prop_map(|i| [1usize, 3, 4][i]),
        chunk_b in (0usize..3).prop_map(|i| [1usize, 3, 4][i]),
        faulty in any::<bool>(),
        salt_a in 0u8..32,
        salt_b in 0u8..32,
        salt_c in 0u8..32,
    ) {
        // Straight-line witness (chunk width is semantically irrelevant).
        let mut straight = build_machine(chunk_a, faulty);
        let _ = straight.try_run(&stream_pair(salt_a));
        let _ = straight.try_run(&stream_pair(salt_b));

        // Checkpointed twin: full epoch after A, dirty-chunk delta after B.
        let mut twin = build_machine(chunk_a, faulty);
        let _ = twin.try_run(&stream_pair(salt_a));
        let mut ck = Checkpointer::new(MemSink::new());
        let full = twin.checkpoint_to(&mut ck).unwrap();
        prop_assert_eq!(full.epoch, 0);
        prop_assert_eq!(full.chunks_clean, 0);
        let _ = twin.try_run(&stream_pair(salt_b));
        let delta = twin.checkpoint_to(&mut ck).unwrap();
        prop_assert_eq!(delta.epoch, 1);

        // Restore into a fresh machine — same or different chunking.
        let mut restored = fresh(chunk_b, faulty);
        let epoch = restored.resume_from(&mut ck).unwrap();
        prop_assert_eq!(epoch, 1);
        assert_identical(&restored, &straight, "restore ≡ straight-line");

        // The restored machine must keep behaving identically.
        let r1 = restored.try_run(&stream_pair(salt_c));
        let r2 = straight.try_run(&stream_pair(salt_c));
        match (r1, r2) {
            (Ok(a), Ok(b)) => {
                prop_assert_eq!(a.group_cycles, b.group_cycles);
                prop_assert_eq!(a.group_ops, b.group_ops);
                prop_assert_eq!(a.count_results, b.count_results);
                prop_assert_eq!(a.index_results, b.index_results);
                prop_assert_eq!(a.pe_health, b.pe_health);
            }
            (Err(a), Err(b)) => prop_assert_eq!(a, b),
            (a, b) => panic!("post-restore results diverged: {a:?} vs {b:?}"),
        }
        assert_identical(&restored, &straight, "post-restore run diverged");
    }

    /// Checkpoint → restore → checkpoint again: the second commit's chunk
    /// payloads content-address to the same files (restore is lossless at
    /// the byte level, not merely equivalent).
    #[test]
    fn reencoding_a_restored_machine_is_byte_identical(
        chunk in (0usize..3).prop_map(|i| [1usize, 3, 4][i]),
        faulty in any::<bool>(),
        salt in 0u8..32,
    ) {
        let mut m = build_machine(chunk, faulty);
        let _ = m.try_run(&stream_pair(salt));
        let mut ck = Checkpointer::new(MemSink::new());
        m.checkpoint_to(&mut ck).unwrap();
        let chunk_files = |s: &MemSink| -> Vec<String> {
            s.files().keys().filter(|n| n.starts_with("c-")).cloned().collect()
        };
        let original = chunk_files(ck.sink());

        let mut restored = fresh(chunk, faulty);
        restored.resume_from(&mut ck).unwrap();
        let mut ck2 = Checkpointer::new(MemSink::new());
        restored.checkpoint_to(&mut ck2).unwrap();
        prop_assert_eq!(original, chunk_files(ck2.sink()));
    }
}

/// Dirty-chunk tracking actually skips clean chunks: touch only group 0
/// between commits and the delta re-writes at most group 0's chunks.
#[test]
fn delta_checkpoint_skips_clean_chunks() {
    // Pin a zero-fault machine regardless of the `HYPERAP_FAULTS` override:
    // active fault bookkeeping legitimately dirties untouched chunks, and
    // this test asserts the exact clean/dirty split of the tracker.
    let mut cfg = hyperap_arch::ArchConfig::tiny();
    cfg.faults = hyperap_arch::FaultConfig::default();
    let mut m = SlabMachine::with_chunk_pes(cfg, 1); // 8 chunks of 1 PE
    for pe in 0..8 {
        for col in 0..24 {
            for row in 0..4 {
                m.load_bit(pe, row, col, (pe * 7 + col * 3 + row) % 5 < 2);
            }
        }
    }
    // Group-0-only stream without mesh traffic (MovR conservatively dirties
    // the neighbor chunk across the group boundary).
    let g0 = vec![
        hyperap_isa::Instruction::SetKey {
            key: hyperap_tcam::SearchKey::parse(&"1-".repeat(32)).unwrap(),
        },
        hyperap_isa::Instruction::Search {
            acc: false,
            encode: false,
        },
        hyperap_isa::Instruction::Write {
            col: 9,
            encode: false,
        },
        hyperap_isa::Instruction::Count,
        hyperap_isa::Instruction::Index,
    ];
    let group0_only = vec![g0, Vec::new()];
    let _ = m.try_run(&group0_only);

    let mut ck = Checkpointer::new(MemSink::new());
    let full = ck.checkpoint(&m).unwrap();
    assert_eq!(full.chunks_total, 8);
    assert_eq!(full.chunks_clean, 0);

    let _ = m.try_run(&group0_only);
    let delta = ck.checkpoint(&m).unwrap();
    assert!(
        delta.chunks_clean >= 4,
        "group 1 chunks must be clean, got {}",
        delta.chunks_clean
    );
    assert!(delta.chunks_written <= 4);
    assert!(delta.bytes_written < full.bytes_written);

    // An untouched machine is a fully clean delta: only a manifest lands.
    let noop = ck.checkpoint(&m).unwrap();
    assert_eq!(noop.chunks_clean, 8);
    assert_eq!(noop.chunks_written, 0);
    assert_eq!(noop.bytes_written, noop.manifest_bytes);
}

/// Resume prefers the newest epoch, survives losing it, and reports
/// `NoCheckpoint` on an empty sink.
#[test]
fn resume_walks_back_through_epochs() {
    let mut m = build_machine(3, true);
    let _ = m.try_run(&stream_pair(4));
    let after_a = snap(&m);

    let mut ck = Checkpointer::new(MemSink::new());
    ck.set_keep(2);
    ck.checkpoint(&m).unwrap();
    let _ = m.try_run(&stream_pair(8));
    let after_b = snap(&m);
    ck.checkpoint(&m).unwrap();

    // Newest epoch wins.
    let mut r = fresh(3, true);
    let mut rck = Checkpointer::new(ck.sink().clone());
    assert_eq!(rck.resume(&mut r).unwrap(), 1);
    assert_matches_snap(&r, &after_b, "epoch 1");

    // Delete epoch 1's manifest: epoch 0 must still restore.
    let mut crippled = ck.sink().clone();
    let names: Vec<String> = crippled.files().keys().cloned().collect();
    for n in names {
        if n.starts_with("m-") && n.ends_with("1.ckpt") {
            CheckpointSink::remove(&mut crippled, &n).unwrap();
        }
    }
    let mut r0 = fresh(3, true);
    let mut rck0 = Checkpointer::new(crippled);
    assert_eq!(rck0.resume(&mut r0).unwrap(), 0);
    assert_matches_snap(&r0, &after_a, "epoch 0 fallback");

    // Empty sink: typed NoCheckpoint.
    let mut none = fresh(3, true);
    let mut nck = Checkpointer::new(MemSink::new());
    assert!(matches!(
        nck.resume(&mut none),
        Err(CkptError::NoCheckpoint)
    ));
}
