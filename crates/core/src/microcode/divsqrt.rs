//! Division, remainder, and integer square root via the iterative methods
//! the paper cites: restoring long division \[51\] and the abacus ("Mr. Woo")
//! square-root algorithm \[26\].
//!
//! Shifts inside the loops are free layout renames; each iteration costs a
//! compare chain plus a predicated subtract, and the quotient / root bits
//! are simply the predicate columns (zero extra operations).

use super::Microcode;
use crate::field::{Field, Slot};

impl Microcode {
    /// Unsigned `a / b` (quotient). Division by zero yields all-ones,
    /// matching a restoring divider that never subtracts successfully...
    /// every compare `R >= 0` succeeds, so each quotient bit is 1.
    pub fn div(&mut self, a: &Field, b: &Field) -> Field {
        self.div_rem(a, b).0
    }

    /// Unsigned `a % b` (remainder; `a` when `b` is zero... see [`div`]).
    ///
    /// [`div`]: Self::div
    pub fn rem(&mut self, a: &Field, b: &Field) -> Field {
        self.div_rem(a, b).1
    }

    /// Restoring long division: returns `(quotient, remainder)`.
    ///
    /// Per iteration (MSB to LSB of the dividend): shift the partial
    /// remainder left by renaming, bring in the next dividend bit, compare
    /// against the divisor, and subtract predicated on the comparison; the
    /// predicate column *is* the quotient bit.
    pub fn div_rem(&mut self, a: &Field, b: &Field) -> (Field, Field) {
        let w = a.width();
        let cap = b.width() + 1; // R < b after each subtract, so R fits.
        let mut r = Field::new("R", Vec::new());
        let mut r_owned = false;
        let mut q_slots: Vec<Slot> = vec![Slot::Single { col: usize::MAX }; w];
        for step in 0..w {
            let i = w - 1 - step; // dividend bit index, MSB first
                                  // R = (R << 1) | a_i — free renames, zero-padded to cap width.
            let mut slots = vec![a.slot(i)];
            slots.extend(r.slots.iter().copied());
            while slots.len() < cap {
                slots.push(self.zero_field(1).slot(0));
            }
            slots.truncate(cap);
            let r_in = Field::new("R", slots);
            let pred = self.cmp_ge(&r_in, b);
            let r_next = self.cond_sub(&r_in, b, &pred);
            q_slots[i] = pred.slot(0);
            if r_owned {
                self.free(&r); // previous partial remainder is dead
            }
            r = r_next;
            r_owned = true;
        }
        (
            Field::new(format!("{}/{}", a.name, b.name), q_slots),
            Field::new(format!("{}%{}", a.name, b.name), r.slots.clone()),
        )
    }

    /// Restoring division by a constant: `(a / k, a % k)` with the divisor
    /// embedded into every compare and subtract lookup table (operand
    /// embedding, §V-B4c) — the compare chain collapses to the
    /// first-difference search pattern with a single write per iteration.
    pub fn div_rem_imm(&mut self, a: &Field, k: u64) -> (Field, Field) {
        let w = a.width();
        if k == 0 {
            // Matches the variable-divisor behaviour: all-ones quotient.
            let q = self.const_field(((1u128 << w) - 1) as u64, w);
            let r = Field::new("rem", a.slots.clone());
            return (q, r);
        }
        let kw = 64 - k.leading_zeros() as usize;
        let cap = kw + 1;
        let mut r = Field::new("R", Vec::new());
        let mut r_owned = false;
        let mut q_slots: Vec<Slot> = vec![Slot::Single { col: usize::MAX }; w];
        for step in 0..w {
            let i = w - 1 - step;
            let mut slots = vec![a.slot(i)];
            slots.extend(r.slots.iter().copied());
            while slots.len() < cap {
                slots.push(self.zero_field(1).slot(0));
            }
            slots.truncate(cap);
            let r_in = Field::new("R", slots);
            let pred = self.cmp_ge_imm(&r_in, k);
            let r_next = self.cond_sub_imm(&r_in, k, &pred);
            q_slots[i] = pred.slot(0);
            if r_owned {
                self.free(&r);
            }
            r = r_next;
            r_owned = true;
        }
        (
            Field::new(format!("{}/{k:#x}", a.name), q_slots),
            Field::new(format!("{}%{k:#x}", a.name), r.slots.clone()),
        )
    }

    /// Integer square root: `floor(sqrt(a))`, result width `⌈w/2⌉`.
    ///
    /// The abacus algorithm: for each result bit (high to low), trial-
    /// subtract `res + one` and fold the predicate into the running root.
    pub fn isqrt(&mut self, a: &Field) -> Field {
        let w = a.width();
        let rw = w.div_ceil(2);
        let mut op = Field::new("op", a.slots.clone());
        let mut op_owned = false;
        // res: represented as slots, built up from predicates; starts empty
        // (value 0, width grows as bits become potentially non-zero).
        let mut res = self.zero_field(w);
        let one_bit = self.const_bit(true);
        let mut one_pos = 2 * (rw - 1); // highest even position < w
        loop {
            // t = res + (1 << one_pos): res bits below one_pos are zero at
            // this point, and bits [one_pos, one_pos+2) of res are zero too,
            // so t = res | (1 << one_pos): a free splice.
            let mut t_slots = res.slots.clone();
            t_slots[one_pos] = one_bit;
            let t = Field::new("t", t_slots);
            let pred = self.cmp_ge(&op, &t);
            // op = pred ? op - t : op
            let op_next = self.cond_sub(&op, &t, &pred);
            if op_owned {
                self.free(&op);
            }
            op = op_next;
            op_owned = true;
            // res = (res >> 1) with bit (one_pos - 1)... after shifting, the
            // new root bit position is one_pos / 2... standard formulation:
            // res = res/2 + (pred ? one : 0) where one is still 1<<one_pos
            // *before* halving: equivalently res' >> ... we splice pred at
            // position one_pos after halving res (res/2 has zeros there).
            let shifted = self.shr(&res, 1);
            let mut res_slots = shifted.slots.clone();
            res_slots[one_pos] = pred.slot(0);
            res = Field::new("res", res_slots);
            if one_pos < 2 {
                break;
            }
            one_pos -= 2;
        }
        Field::new(format!("sqrt({})", a.name), res.slots[..rw].to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::*;
    use super::*;
    use crate::machine::HyperPe;

    #[test]
    fn div_rem_8bit_is_correct() {
        let cases: Vec<(u64, u64)> = vec![
            (100, 7),
            (255, 1),
            (255, 255),
            (0, 5),
            (13, 13),
            (250, 3),
            (7, 9),
        ];
        let mut mc = Microcode::new(256);
        let a = mc.alloc_plain_input("a", 8);
        let b = mc.alloc_plain_input("b", 8);
        let (q, r) = mc.div_rem(&a, &b);
        let mut pe = HyperPe::new(cases.len(), 256);
        for (row, &(va, vb)) in cases.iter().enumerate() {
            a.store(&mut pe, row, va);
            b.store(&mut pe, row, vb);
        }
        mc.program().run(&mut pe);
        for (row, &(va, vb)) in cases.iter().enumerate() {
            assert_eq!(q.read(&pe, row), va / vb, "{va} / {vb}");
            assert_eq!(r.read(&pe, row), va % vb, "{va} % {vb}");
        }
    }

    #[test]
    fn div_by_zero_saturates_quotient() {
        let outs = run_binary_plain(4, &[(9, 0)], |mc, a, b| mc.div(a, b));
        assert_eq!(outs[0], 0xF);
    }

    #[test]
    fn div_exhaustive_4bit() {
        let cases: Vec<(u64, u64)> = (0..16).flat_map(|a| (1..16).map(move |b| (a, b))).collect();
        let qs = run_binary_plain(4, &cases, |mc, a, b| mc.div(a, b));
        for ((a, b), q) in cases.iter().zip(&qs) {
            assert_eq!(*q, a / b, "{a} / {b}");
        }
    }

    #[test]
    fn div_rem_imm_is_correct() {
        for k in [1u64, 2, 3, 7, 13, 255] {
            let mut mc = Microcode::new(256);
            let a = mc.alloc_plain_input("a", 8);
            let (q, r) = mc.div_rem_imm(&a, k);
            let values = [0u64, 1, 12, 100, 255];
            let mut pe = HyperPe::new(values.len(), 256);
            for (row, &v) in values.iter().enumerate() {
                a.store(&mut pe, row, v);
            }
            mc.program().run(&mut pe);
            for (row, &v) in values.iter().enumerate() {
                assert_eq!(q.read(&pe, row), v / k, "{v} / {k}");
                assert_eq!(r.read(&pe, row), v % k, "{v} % {k}");
            }
        }
    }

    #[test]
    fn div_imm_zero_saturates() {
        let mut mc = Microcode::new(64);
        let a = mc.alloc_plain_input("a", 4);
        let (q, r) = mc.div_rem_imm(&a, 0);
        let mut pe = HyperPe::new(1, 64);
        a.store(&mut pe, 0, 9);
        mc.program().run(&mut pe);
        assert_eq!(q.read(&pe, 0), 0xF);
        assert_eq!(r.read(&pe, 0), 9);
    }

    #[test]
    fn isqrt_8bit_exhaustive() {
        let values: Vec<u64> = (0..256).collect();
        let outs = run_unary(8, &values, |mc, a| mc.isqrt(a));
        for (v, o) in values.iter().zip(&outs) {
            assert_eq!(*o, (*v as f64).sqrt().floor() as u64, "sqrt({v})");
        }
    }

    #[test]
    fn isqrt_wide_values() {
        let values: Vec<u64> = vec![0, 1, 2, 3, 4, 65535, 65025, 10000, 99980001];
        let outs = run_unary(27, &values, |mc, a| mc.isqrt(a));
        for (v, o) in values.iter().zip(&outs) {
            assert_eq!(*o, (*v as f64).sqrt().floor() as u64, "sqrt({v})");
        }
    }

    #[test]
    fn quotient_bits_are_free_predicates() {
        // The quotient field must not cost extra searches beyond the
        // compare + conditional-subtract chains: count ops for div vs the
        // same loop without quotient collection — they are identical by
        // construction (the quotient aliases predicate columns).
        let mut mc = Microcode::new(256);
        let a = mc.alloc_plain_input("a", 6);
        let b = mc.alloc_plain_input("b", 6);
        let (q, _r) = mc.div_rem(&a, &b);
        assert_eq!(q.width(), 6);
    }
}
