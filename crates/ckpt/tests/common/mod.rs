//! Shared helpers for the checkpoint test suites: deterministic machine
//! construction, instruction streams, and a bit-level machine snapshot
//! that is comparable across chunk widths.

// Each test binary uses a different subset of these helpers.
#![allow(dead_code)]

use hyperap_arch::{ArchConfig, FaultConfig, MachineExtras, SlabMachine};
use hyperap_core::HyperPe;
use hyperap_isa::{Direction, Instruction};
use hyperap_model::timing::OpCounts;
use hyperap_tcam::{FaultModel, KeyBit, SearchKey, TagVector};

/// A seeded fault model dense enough to produce stuck cells, transient
/// misses, wear, and the occasional column retirement on `tiny()`.
pub fn dense_faults() -> FaultConfig {
    FaultConfig {
        model: FaultModel {
            seed: 0x5eed_cafe,
            stuck_per_million: 25_000,
            miss_per_million: 12_000,
            endurance_limit: Some(40),
        },
        spare_cols: 2,
    }
}

/// A `tiny()` slab machine (2 groups × 4 PEs of 16×64) at the given chunk
/// width, optionally under [`dense_faults`], with a deterministic load
/// pattern.
pub fn build_machine(chunk_pes: usize, faulty: bool) -> SlabMachine {
    let mut cfg = ArchConfig::tiny();
    if faulty {
        cfg.faults = dense_faults();
    }
    let mut m = SlabMachine::with_chunk_pes(cfg, chunk_pes);
    for pe in 0..8 {
        for col in 0..24 {
            for row in 0..4 {
                m.load_bit(pe, row, col, (pe * 7 + col * 3 + row) % 5 < 2);
            }
        }
    }
    m
}

fn key(pattern: u8) -> SearchKey {
    SearchKey::from_bits(
        (0..64u8)
            .map(|c| match (c.wrapping_add(pattern)) % 4 {
                0 => KeyBit::Zero,
                1 => KeyBit::One,
                2 => KeyBit::Z,
                _ => KeyBit::Masked,
            })
            .collect(),
    )
}

/// A deterministic two-group stream pair that exercises every state the
/// checkpoint must carry: storage writes (wear), searches under a key
/// (key/plan registers), tags and latches, MovR over the mesh, the data
/// registers and controller buffers, Count/Index op counts.
pub fn stream_pair(salt: u8) -> Vec<Vec<Instruction>> {
    let mk = |g: u8| {
        vec![
            Instruction::SetKey { key: key(salt + g) },
            Instruction::Search {
                acc: false,
                encode: false,
            },
            Instruction::Write {
                col: (salt + g) % 62,
                encode: false,
            },
            Instruction::SetTag,
            Instruction::Search {
                acc: true,
                encode: false,
            },
            Instruction::Count,
            Instruction::MovR {
                dir: if g == 0 {
                    Direction::Right
                } else {
                    Direction::Down
                },
            },
            Instruction::WriteR {
                addr: u32::from(g),
                imm: vec![salt, g, 3],
            },
            Instruction::ReadR {
                addr: u32::from(g) + 1,
            },
            Instruction::Index,
            Instruction::Write {
                col: (salt + g + 17) % 62,
                encode: true,
            },
            Instruction::ReadTag,
        ]
    };
    vec![mk(0), mk(1)]
}

/// Everything a checkpoint must restore, captured per-PE so machines with
/// different chunk widths compare equal iff they are bit-identical:
/// storage cells + wear + fault bookkeeping (all inside `HyperPe`'s
/// equality), data registers, controller buffers, key/plan/mask registers,
/// and per-PE op counters.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineSnap {
    pub pes: Vec<HyperPe>,
    pub regs: Vec<TagVector>,
    pub buffers: Vec<TagVector>,
    pub extras: MachineExtras,
    pub ops: Vec<OpCounts>,
}

/// Capture a comparable snapshot of `m`.
pub fn snap(m: &SlabMachine) -> MachineSnap {
    let total = m.config().total_pes();
    let groups = m.config().groups;
    let mut ops = Vec::with_capacity(total);
    for c in 0..m.num_chunks() {
        ops.extend_from_slice(m.chunk_state(c).ops);
    }
    MachineSnap {
        pes: (0..total).map(|p| m.pe_snapshot(p)).collect(),
        regs: (0..total).map(|p| m.data_reg(p)).collect(),
        buffers: (0..groups).map(|g| m.data_buffer(g).clone()).collect(),
        extras: m.machine_extras(),
        ops,
    }
}

/// Assert two machines are bit-identical (chunk-width independent).
pub fn assert_identical(a: &SlabMachine, b: &SlabMachine, what: &str) {
    let (sa, sb) = (snap(a), snap(b));
    for (i, (pa, pb)) in sa.pes.iter().zip(&sb.pes).enumerate() {
        assert_eq!(pa, pb, "{what}: PE {i} state diverged");
        assert_eq!(
            pa.fault(),
            pb.fault(),
            "{what}: PE {i} fault bookkeeping diverged"
        );
    }
    assert_eq!(sa.regs, sb.regs, "{what}: data registers diverged");
    assert_eq!(
        sa.buffers, sb.buffers,
        "{what}: controller buffers diverged"
    );
    assert_eq!(sa.extras, sb.extras, "{what}: key/mask registers diverged");
    assert_eq!(sa.ops, sb.ops, "{what}: per-PE op counters diverged");
}

/// Assert a machine matches a previously captured snapshot.
pub fn assert_matches_snap(m: &SlabMachine, s: &MachineSnap, what: &str) {
    assert_eq!(&snap(m), s, "{what}");
}
