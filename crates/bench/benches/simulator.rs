//! Criterion micro-benchmarks for the simulator substrate and the compiler.

use criterion::{criterion_group, criterion_main, Criterion};
use hyperap_arch::{ApMachine, ArchConfig, ExecMode};
use hyperap_compiler::{compile, CompileOptions};
use hyperap_core::machine::HyperPe;
use hyperap_core::microcode::Microcode;
use hyperap_isa::lower::lower;
use hyperap_tcam::array::TcamArray;
use hyperap_tcam::key::SearchKey;
use hyperap_tcam::mvsop::{minimize, Cover, PosKind};
use hyperap_tcam::tags::TagVector;
use std::hint::black_box;

fn bench_tcam_search(c: &mut Criterion) {
    let mut array = TcamArray::pe_sized();
    for row in 0..256 {
        array.store_field(row, 0, 64, row as u64 * 0x9E37_79B9);
    }
    let mut key = SearchKey::masked(256);
    key.set_field(0, 12, 0xABC);
    c.bench_function("tcam_search_256x256", |b| {
        b.iter(|| black_box(array.search(black_box(&key))))
    });
}

fn bench_tcam_search_into(c: &mut Criterion) {
    // Same workload as `tcam_search_256x256`, but through the
    // buffer-reusing API — the steady-state engine path.
    let mut array = TcamArray::pe_sized();
    for row in 0..256 {
        array.store_field(row, 0, 64, row as u64 * 0x9E37_79B9);
    }
    let mut key = SearchKey::masked(256);
    key.set_field(0, 12, 0xABC);
    let mut tags = TagVector::zeros(256);
    c.bench_function("tcam_search_into_256x256", |b| {
        b.iter(|| {
            array.search_into(black_box(&key), &mut tags);
            black_box(tags.blocks()[0])
        })
    });
}

fn bench_slab_word_kernels(c: &mut Criterion) {
    use hyperap_tcam::bit::TernaryBit;
    use hyperap_tcam::slab::{pe_range_mask, TagSlab, TcamSlab};
    use hyperap_tcam::KeyBit;

    // 1024 PEs × 256 rows (16 PE words per plane row): each plan entry is a
    // straight AND/OR sweep over rows × pe_words = 4096 words, the
    // innermost loop of every slab search.
    let (pes, rows, cols) = (1024usize, 256usize, 16usize);
    let mut slab = TcamSlab::new(pes, rows, cols);
    for pe in 0..pes {
        for row in 0..rows {
            for col in 0..cols {
                let v = match (pe + 3 * row + 7 * col) % 3 {
                    0 => TernaryBit::Zero,
                    1 => TernaryBit::One,
                    _ => TernaryBit::X,
                };
                slab.set_cell(pe, row, col, v);
            }
        }
    }
    let plane = slab.plane_words();
    let plan = [(0usize, KeyBit::One), (3, KeyBit::Zero)];
    let mut out = vec![0u64; plane];
    c.bench_function("slab_word_search_1024pe_2entry", |b| {
        b.iter(|| {
            slab.search_plan_multi_into(black_box(&plan), None, &mut out);
            black_box(&out);
        })
    });

    // Masked word store: a column write gated by a selection mask whose
    // active range starts and ends mid-word — the ragged-broadcast path.
    let tags = {
        let mut t = TagSlab::zeros(pes, rows);
        for pe in 0..pes {
            let tv =
                hyperap_tcam::tags::TagVector::from_bools((0..rows).map(|row| (pe + row) % 3 == 0));
            t.set_pe(pe, &tv);
        }
        t
    };
    let sel = pe_range_mask(pes, 40, 1000);
    c.bench_function("slab_masked_word_store_1024pe", |b| {
        b.iter(|| {
            slab.write_column_multi(5, TernaryBit::One, black_box(tags.words()), Some(&sel));
            black_box(slab.pe_words());
        })
    });
}

fn bench_slab_hamming(c: &mut Criterion) {
    use hyperap_tcam::bit::TernaryBit;
    use hyperap_tcam::slab::TcamSlab;
    use hyperap_tcam::KeyBit;

    // Word-parallel Hamming kernels on a 1024-PE arena: the full-distance
    // accumulate (per-plane miss → ripple-carry counters) and the
    // progressive masked top-k (accumulate + bit-sliced threshold rounds).
    let (pes, rows, cols) = (1024usize, 64usize, 64usize);
    let mut slab = TcamSlab::new(pes, rows, cols);
    for pe in 0..pes {
        for row in 0..rows {
            for col in 0..cols {
                let v = if (pe ^ (3 * row) ^ (7 * col)) & 1 == 0 {
                    TernaryBit::Zero
                } else {
                    TernaryBit::One
                };
                slab.set_cell(pe, row, col, v);
            }
        }
    }
    let plan: Vec<(usize, KeyBit)> = (0..cols)
        .map(|col| {
            (
                col,
                if col % 3 == 0 {
                    KeyBit::One
                } else {
                    KeyBit::Zero
                },
            )
        })
        .collect();
    let mut out = vec![0u32; pes * rows];
    c.bench_function("slab_hamming_into_1024pe_64bit", |b| {
        b.iter(|| {
            slab.hamming_into(black_box(&plan), rows, &mut out);
            black_box(&out);
        })
    });
    c.bench_function("slab_hamming_topk16_1024pe_64bit", |b| {
        b.iter(|| black_box(slab.hamming_topk(black_box(&plan), rows, 16)))
    });
}

fn bench_group_run(c: &mut Criterion) {
    // Group-level engine fan-out: add32 on every PE of a 4-group machine,
    // sequential vs threaded dispatch.
    let mut mc = Microcode::new(256);
    let (x, y) = mc.alloc_paired_inputs("a", "b", 32);
    let _ = mc.add(&x, &y);
    let stream = lower(&mc.into_program());
    for (id, mode) in [
        ("group_run_add32_seq", ExecMode::Sequential),
        ("group_run_add32_par", ExecMode::Parallel),
    ] {
        let mut cfg = ArchConfig::paper_scaled(64);
        cfg.groups = 4;
        cfg.exec = mode;
        let streams: Vec<_> = (0..cfg.groups).map(|_| stream.clone()).collect();
        let mut m = ApMachine::new(cfg);
        c.bench_function(id, |b| b.iter(|| black_box(m.run(&streams))));
    }
}

fn bench_mvsop(c: &mut Criterion) {
    // The 1-bit full-adder Sum cover (Fig 5d).
    let cover = Cover::new(
        vec![PosKind::Pair, PosKind::Single],
        vec![vec![0b10, 0], vec![0b01, 0], vec![0b00, 1], vec![0b11, 1]],
    );
    c.bench_function("mvsop_minimize_full_adder", |b| {
        b.iter(|| black_box(minimize(black_box(&cover))))
    });
}

fn bench_microcode_add(c: &mut Criterion) {
    c.bench_function("microcode_build_add32", |b| {
        b.iter(|| {
            let mut mc = Microcode::new(256);
            let (x, y) = mc.alloc_paired_inputs("a", "b", 32);
            black_box(mc.add(&x, &y));
        })
    });
}

fn bench_machine_run(c: &mut Criterion) {
    let mut mc = Microcode::new(256);
    let (x, y) = mc.alloc_paired_inputs("a", "b", 32);
    let _ = mc.add(&x, &y);
    let prog = mc.into_program();
    c.bench_function("pe_run_add32_256rows", |b| {
        b.iter(|| {
            let mut pe = HyperPe::new(256, 256);
            black_box(prog.run(&mut pe));
        })
    });
}

fn bench_compile(c: &mut Criterion) {
    let src = "unsigned int (9) main(unsigned int (8) a, unsigned int (8) b) {
        return (a & b) + (a ^ b);
    }";
    c.bench_function("compile_merge_8bit", |b| {
        b.iter(|| black_box(compile(black_box(src), &CompileOptions::default()).unwrap()))
    });
}

criterion_group!(
    benches,
    bench_tcam_search,
    bench_tcam_search_into,
    bench_slab_word_kernels,
    bench_slab_hamming,
    bench_mvsop,
    bench_microcode_add,
    bench_machine_run,
    bench_group_run,
    bench_compile
);
criterion_main!(benches);
