//! The hierarchical Hyper-AP micro-architecture simulator (§IV-B, Fig 6/7).
//!
//! The machine is organized as **groups → banks → subarrays → PEs**:
//!
//! * Banks in the same group share one instruction memory and dispatch unit
//!   and execute the same instruction stream (SIMD); different groups run
//!   different streams (ILP / multi-tenancy), making the whole chip MIMD.
//! * A group's `Broadcast` instruction sets the group-mask register that
//!   gates which of its banks execute the following instructions.
//! * Each subarray has a local controller that drives the shared key/mask
//!   registers of its PEs; each PE is a 256×256 TCAM with tags, accumulation
//!   unit, two-bit encoder, and reduction tree ([`hyperap_core::HyperPe`]).
//! * Each PE owns a 256-bit data register. `ReadTag`/`SetTag` move data
//!   between tags and the data register; `MovR` shifts data registers across
//!   the PE mesh (the low-cost, low-latency neighbor interface of §IV-B);
//!   `ReadR`/`WriteR` connect the global data path.
//!
//! Timing: instructions have deterministic latency (Table I), so groups run
//! an event-stepped loop with `Wait`-based synchronization, exactly the
//! compile-time synchronization scheme of §IV-A12.
//!
//! Execution trace-compiles each stream ([`trace`]) into per-PE segment
//! traces bounded by cross-PE synchronization points, paying one fork-join
//! per segment; the instruction-at-a-time interpreter remains as the
//! bit-identical reference engine
//! ([`ApMachine::run_interpreted`](machine::ApMachine::run_interpreted)).
//! [`SlabMachine`] ([`slab`]) runs the same compiled traces over contiguous
//! multi-PE [`hyperap_tcam::slab::TcamSlab`] arenas — each micro-op executes
//! once per chunk as a fused linear sweep instead of once per PE — and is
//! bit-identical to [`ApMachine`] (property-tested in
//! `tests/slab_engine_equivalence.rs`).
//!
//! # Example
//!
//! ```
//! use hyperap_arch::{ApMachine, ArchConfig};
//! use hyperap_isa::Instruction;
//! use hyperap_tcam::SearchKey;
//!
//! let mut m = ApMachine::new(ArchConfig::tiny());
//! m.pe_mut(0).load_bit(3, 0, true);
//! let stats = m.run(&[vec![
//!     Instruction::SetKey { key: SearchKey::parse("1").unwrap() },
//!     Instruction::Search { acc: false, encode: false },
//!     Instruction::Count,
//! ]]);
//! assert_eq!(stats.count_results[0][0], (0, 1)); // PE 0 counted one tag
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod machine;
pub mod par;
pub mod similarity;
pub mod slab;
pub mod stats;
pub mod trace;
pub mod transfer;

pub use config::{env_faults, ArchConfig, ExecMode, FaultConfig};
pub use hyperap_tcam::{FaultError, FaultModel};
pub use machine::ApMachine;
pub use similarity::{SimilarityHit, SimilarityOutcome};
pub use slab::{ChunkPayload, ChunkState, MachineExtras, RestoreError, SlabMachine};
pub use stats::{PeHealth, RunStats};
pub use trace::{stream_set_hash, CompiledTrace};
