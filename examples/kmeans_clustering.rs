//! The kmeans kernel of the Fig 18 benchmark set: nearest-centroid
//! assignment compiled from C-like source, with the centroids embedded into
//! the lookup tables (operand embedding, §V-B4c).

use hyper_ap::workloads::kernels::all_kernels;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let kernels = all_kernels();
    let kmeans = kernels
        .iter()
        .find(|k| k.name == "kmeans")
        .expect("bundled");
    let compiled = kmeans.compile();

    // A small synthetic point cloud around the four embedded centroids.
    let points: Vec<Vec<u64>> = vec![
        vec![9, 11],
        vec![48, 16],
        vec![21, 44],
        vec![41, 54],
        vec![5, 8],
        vec![55, 13],
        vec![25, 47],
        vec![38, 60],
    ];
    let refs: Vec<&[u64]> = points.iter().map(|p| p.as_slice()).collect();
    let assignments = compiled.run_rows(&refs)?;
    println!("point      -> cluster (centroids: (8,10) (50,15) (22,45) (40,55))");
    for (p, c) in points.iter().zip(&assignments) {
        println!("  ({:>2},{:>2})  -> {c}", p[0], p[1]);
        assert_eq!(*c, (kmeans.reference)(p)[0]);
    }

    let ops = compiled.op_counts();
    println!(
        "\nper-element cost: {} searches, {} writes ({} columns of the 256-column PE)",
        ops.searches,
        ops.writes(),
        compiled.columns()
    );
    println!("at chip scale one pass assigns 33.5M points simultaneously");
    Ok(())
}
