//! Wire-format stability and typed decode errors, pinned by the on-disk
//! `ckpt_v1` fixture (`crates/tcam/tests/golden/ckpt_v1/`, written by
//! `examples/gen_golden_ckpt.rs`): the fixture must restore bit-identically
//! into today's machine (including across a different chunk width), today's
//! encoder must reproduce the fixture byte-for-byte, and damaged variants
//! must fail with the right typed [`CkptError`].

mod common;

use common::assert_identical;
use hyperap_arch::{ArchConfig, SlabMachine};
use hyperap_ckpt::manifest::MANIFEST_VERSION;
use hyperap_ckpt::testing::golden_machine;
use hyperap_ckpt::{fnv1a64, CheckpointSink, Checkpointer, CkptError, Manifest, MemSink};

const FIXTURE_DIR: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../tcam/tests/golden/ckpt_v1");

/// Load the fixture directory into a [`MemSink`].
fn fixture_sink() -> MemSink {
    let mut sink = MemSink::new();
    for entry in std::fs::read_dir(FIXTURE_DIR).expect("fixture dir present") {
        let entry = entry.unwrap();
        let name = entry.file_name().into_string().unwrap();
        sink.insert(name, std::fs::read(entry.path()).unwrap());
    }
    assert!(
        sink.files().keys().any(|n| n.starts_with("m-")),
        "fixture must contain a manifest"
    );
    sink
}

fn manifest_name(sink: &MemSink) -> String {
    sink.files()
        .keys()
        .find(|n| n.starts_with("m-"))
        .unwrap()
        .clone()
}

/// A machine shaped like the fixture's, with nothing loaded.
fn blank(chunk_pes: usize) -> SlabMachine {
    let mut cfg = ArchConfig::tiny();
    cfg.faults = golden_machine().config().faults;
    SlabMachine::with_chunk_pes(cfg, chunk_pes)
}

#[test]
fn fixture_restores_bit_identically_and_reencodes_byte_identically() {
    let rebuilt = golden_machine();

    // Restore at the native chunk width and through a migration.
    for chunk_pes in [3usize, 1, 4] {
        let mut restored = blank(chunk_pes);
        let mut ck = Checkpointer::new(fixture_sink());
        assert_eq!(ck.resume(&mut restored).unwrap(), 0);
        assert_identical(&restored, &rebuilt, &format!("fixture @ chunk {chunk_pes}"));
    }

    // Today's encoder must reproduce the fixture exactly: same manifest
    // bytes, same content-addressed chunk files.
    let fixture = fixture_sink();
    let mut ck = Checkpointer::new(MemSink::new());
    ck.set_keep(1);
    ck.checkpoint(&rebuilt).unwrap();
    let fresh = ck.into_sink();
    assert_eq!(
        fixture.files().keys().collect::<Vec<_>>(),
        fresh.files().keys().collect::<Vec<_>>(),
        "file set drifted — the wire format changed; bump the version and \
         regenerate via gen_golden_ckpt"
    );
    for (name, bytes) in fixture.files() {
        assert_eq!(
            Some(bytes.as_slice()),
            fresh.get(name),
            "{name} bytes drifted"
        );
    }
}

#[test]
fn truncated_manifest_fails_typed_at_every_byte_boundary() {
    let sink = fixture_sink();
    let blob = sink.read(&manifest_name(&sink)).unwrap();
    assert!(Manifest::decode(&blob).is_ok());
    for len in 0..blob.len() {
        match Manifest::decode(&blob[..len]) {
            Err(CkptError::Truncated) | Err(CkptError::BadChecksum) => {}
            other => panic!("prefix {len}/{} decoded as {other:?}", blob.len()),
        }
    }
    // Trailing garbage is torn too, not silently ignored.
    let mut padded = blob.clone();
    padded.push(0);
    assert!(matches!(
        Manifest::decode(&padded),
        Err(CkptError::Truncated) | Err(CkptError::BadChecksum)
    ));
}

#[test]
fn version_skew_is_a_hard_typed_error() {
    let mut sink = fixture_sink();
    let name = manifest_name(&sink);
    let mut blob = sink.read(&name).unwrap();
    // Bump the version byte (after the 4-byte magic) and re-seal the
    // checksum so the manifest is intact-but-future.
    blob[4] = MANIFEST_VERSION + 1;
    let body_len = blob.len() - 8;
    let sum = fnv1a64(&blob[..body_len]).to_be_bytes();
    blob[body_len..].copy_from_slice(&sum);
    assert!(matches!(
        Manifest::decode(&blob),
        Err(CkptError::BadVersion(v)) if v == MANIFEST_VERSION + 1
    ));
    sink.insert(name, blob);
    let mut ck = Checkpointer::new(sink);
    assert!(matches!(
        ck.resume(&mut blank(3)),
        Err(CkptError::BadVersion(_))
    ));
}

#[test]
fn geometry_mismatch_is_a_hard_typed_error() {
    // Wrong shape.
    let mut cfg = ArchConfig::tiny();
    cfg.rows = 8;
    cfg.faults = golden_machine().config().faults;
    let mut wrong = SlabMachine::new(cfg);
    let mut ck = Checkpointer::new(fixture_sink());
    assert!(matches!(
        ck.resume(&mut wrong),
        Err(CkptError::GeometryMismatch)
    ));

    // Right shape, wrong fault universe.
    let mut cfg = ArchConfig::tiny();
    let mut faults = golden_machine().config().faults;
    faults.model.seed ^= 1;
    cfg.faults = faults;
    let mut wrong_faults = SlabMachine::with_chunk_pes(cfg, 3);
    let mut ck = Checkpointer::new(fixture_sink());
    assert!(matches!(
        ck.resume(&mut wrong_faults),
        Err(CkptError::GeometryMismatch)
    ));
}

#[test]
fn chunk_version_skew_is_a_hard_typed_error() {
    // Re-version one chunk payload (first byte), re-address it, and point
    // the manifest at the new file: the manifest is intact, the chunk is
    // intact-but-future — a hard BadVersion, not a silent fallback.
    let mut sink = fixture_sink();
    let name = manifest_name(&sink);
    let mut man = Manifest::decode(&sink.read(&name).unwrap()).unwrap();
    let old = man.chunks[0];
    let old_name = format!("c-{:016x}-{}.bin", old.hash, old.len);
    let mut payload = sink.read(&old_name).unwrap();
    payload[0] += 1;
    let (hash, len) = (fnv1a64(&payload), payload.len() as u64);
    sink.insert(format!("c-{hash:016x}-{len}.bin"), payload);
    man.chunks[0].hash = hash;
    man.chunks[0].len = len;
    sink.insert(name, man.encode());
    let mut ck = Checkpointer::new(sink);
    assert!(matches!(
        ck.resume(&mut blank(3)),
        Err(CkptError::BadVersion(_))
    ));
}

#[test]
fn damaged_chunks_fall_back_softly() {
    // Corrupt one chunk file: the only epoch no longer verifies, and with
    // no older epoch the typed result is NoCheckpoint — never a partial
    // restore.
    let mut sink = fixture_sink();
    let chunk = sink
        .files()
        .keys()
        .find(|n| n.starts_with("c-"))
        .unwrap()
        .clone();
    let mut bytes = sink.read(&chunk).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    sink.insert(chunk.clone(), bytes);
    let mut ck = Checkpointer::new(sink);
    assert!(matches!(
        ck.resume(&mut blank(3)),
        Err(CkptError::NoCheckpoint)
    ));

    // Remove it entirely: same typed fallback.
    let mut sink = fixture_sink();
    CheckpointSink::remove(&mut sink, &chunk).unwrap();
    let mut ck = Checkpointer::new(sink);
    assert!(matches!(
        ck.resume(&mut blank(3)),
        Err(CkptError::NoCheckpoint)
    ));
}
