//! Concurrency property tests for the serving layer's core guarantee:
//! N submitter threads sharing one [`ServePool`] — one program cache, one
//! machine pool, work stealing, batching, scrub-on-assign — get results
//! **bit-identical** to running each job alone on a fresh machine of its
//! own size.
//!
//! The cache is deliberately undersized (capacity 2, more distinct kernels
//! than that in flight), so entries are evicted and recompiled *while*
//! submitters race — a hit, a miss, and a post-eviction recompile must all
//! produce the same `RunStats`. A deterministic companion test covers the
//! seeded-fault path, where jobs are unbatchable and pinned to group
//! offset 0 precisely so that per-global-PE fault seeding matches an
//! isolated machine.

use std::collections::HashSet;
use std::thread;

use hyperap_arch::{ArchConfig, ExecMode, FaultConfig, RunStats, SlabMachine};
use hyperap_isa::Instruction;
use hyperap_serve::{CellLoad, JobSpec, ServeConfig, ServePool};
use hyperap_tcam::{FaultModel, KeyBit};
use proptest::prelude::*;

/// One group of [`ArchConfig::tiny`]: 4 PEs of 16x64.
const PES_PER_GROUP: usize = 4;
const ROWS: usize = 16;
const COLS: usize = 64;

/// The batchable instruction subset: everything except `MovR`/`ReadR`/
/// `WriteR`, whose mesh traffic pins a program to a full machine (the
/// pool rejects partial-machine submissions of those — covered by the
/// `typed_rejections` unit test).
fn inst_strategy() -> impl Strategy<Value = Instruction> {
    prop_oneof![
        prop::collection::vec(0u8..4, COLS).prop_map(|bits| Instruction::SetKey {
            key: bits
                .iter()
                .map(|b| match b {
                    0 => KeyBit::Zero,
                    1 => KeyBit::One,
                    2 => KeyBit::Z,
                    _ => KeyBit::Masked,
                })
                .collect(),
        }),
        (any::<bool>(), any::<bool>())
            .prop_map(|(acc, encode)| Instruction::Search { acc, encode }),
        // `encode` needs two adjacent columns, so stop one short.
        (0u8..(COLS as u8 - 1), any::<bool>())
            .prop_map(|(col, encode)| Instruction::Write { col, encode }),
        Just(Instruction::Count),
        Just(Instruction::Index),
        Just(Instruction::SetTag),
        Just(Instruction::ReadTag),
        any::<u8>().prop_map(|m| Instruction::Broadcast { group_mask: m }),
        (0u8..10).prop_map(|cycles| Instruction::Wait { cycles }),
    ]
}

/// A kernel: `groups` instruction streams (1 = half of a tiny machine,
/// 2 = a full machine, exercising both the batched and the solo path)
/// plus host preloads within the job's own PE span.
fn kernel_strategy() -> impl Strategy<Value = (Vec<Vec<Instruction>>, Vec<CellLoad>)> {
    (
        1usize..3,
        prop::collection::vec(prop::collection::vec(inst_strategy(), 1..16), 2),
        prop::collection::vec(
            (
                0usize..2 * PES_PER_GROUP,
                0usize..ROWS,
                0usize..COLS,
                any::<bool>(),
            )
                .prop_map(|(pe, row, col, value)| CellLoad {
                    pe,
                    row,
                    col,
                    value,
                }),
            0..24,
        ),
    )
        .prop_map(|(groups, mut streams, mut loads)| {
            streams.truncate(groups);
            loads.retain(|l| l.pe < groups * PES_PER_GROUP);
            (streams, loads)
        })
}

/// What the job must produce: the same program on a fresh, job-sized,
/// sequential machine.
fn isolated_stats(
    streams: &[Vec<Instruction>],
    loads: &[CellLoad],
    faults: FaultConfig,
) -> Result<RunStats, hyperap_tcam::FaultError> {
    let mut cfg = ArchConfig::tiny();
    cfg.groups = streams.len();
    cfg.exec = ExecMode::Sequential;
    cfg.faults = faults;
    let mut iso = SlabMachine::new(cfg);
    for l in loads {
        iso.load_bit(l.pe, l.row, l.col, l.value);
    }
    iso.try_run(streams)
}

proptest! {
    // Each case spins up a pool (worker threads) and three submitter
    // threads; keep the case count modest.
    #![proptest_config(ProptestConfig::with_cases(8))]
    #[test]
    fn racing_submitters_match_isolated_machines(
        kernels in prop::collection::vec(kernel_strategy(), 3..5),
        rounds in 2usize..4,
    ) {
        let zero_faults = FaultConfig::default();
        let expected: Vec<RunStats> = kernels
            .iter()
            .map(|(streams, loads)| {
                isolated_stats(streams, loads, zero_faults)
                    .expect("zero-fault run cannot fault")
            })
            .collect();

        let mut cfg = ServeConfig::new(ArchConfig::tiny());
        cfg.machines = 2;
        // Undersized on purpose: with >2 distinct kernels in flight the
        // LRU evicts and recompiles while submitters race.
        cfg.cache_capacity = 2;
        let pool = ServePool::new(cfg);

        const SUBMITTERS: u32 = 3;
        thread::scope(|s| {
            for t in 0..SUBMITTERS {
                let pool = &pool;
                let kernels = &kernels;
                let expected = &expected;
                s.spawn(move || {
                    for i in 0..rounds * kernels.len() {
                        // Stagger starting kernels per tenant so threads
                        // race on different entries, not in lockstep.
                        let k = (i + t as usize) % kernels.len();
                        let (streams, loads) = &kernels[k];
                        let out = pool
                            .submit(JobSpec {
                                tenant: t,
                                streams: streams.clone(),
                                loads: loads.clone(),
                            })
                            .expect("admission under the depth bound")
                            .wait()
                            .expect("zero-fault job cannot fail");
                        assert_eq!(
                            out.stats, expected[k],
                            "kernel {k} (tenant {t}) diverged from its isolated machine"
                        );
                    }
                });
            }
        });

        let stats = pool.shutdown();
        let jobs = u64::from(SUBMITTERS) * (rounds * kernels.len()) as u64;
        prop_assert_eq!(stats.completed_jobs, jobs);
        prop_assert_eq!(stats.faulted_jobs, 0);
        prop_assert_eq!(stats.healthy_machines, stats.machines);
        // Every distinct kernel compiled at least once; randomly equal
        // kernels share an entry, so count distinct content keys.
        let distinct: HashSet<u64> = kernels
            .iter()
            .map(|(streams, _)| hyperap_arch::stream_set_hash(streams))
            .collect();
        prop_assert!(stats.cache.misses >= distinct.len() as u64);
        if distinct.len() > 2 {
            prop_assert!(
                stats.cache.evictions > 0,
                "{} distinct kernels through a 2-entry cache must evict",
                distinct.len()
            );
        }
    }
}

/// The seeded-fault path: fault-configured pools disable batching and pin
/// every job to group offset 0, so per-global-PE fault seeding (stuck
/// cells, transient misses, wear) lines up with an isolated machine of the
/// job's size — results must still be bit-identical, concurrently.
#[test]
fn seeded_fault_jobs_match_isolated_fault_machine() {
    let faults = FaultConfig {
        model: FaultModel {
            seed: 0xFA_17,
            stuck_per_million: 30_000,
            miss_per_million: 10_000,
            endurance_limit: None,
        },
        spare_cols: 1,
    };
    let setkey = |s: &str| Instruction::SetKey {
        key: hyperap_tcam::SearchKey::parse(s).unwrap(),
    };
    let search = || Instruction::Search {
        acc: false,
        encode: false,
    };
    // Two kernels that see stuck bits and miss injection from different
    // key angles, plus wear from writes.
    let kernels: Vec<(Vec<Vec<Instruction>>, Vec<CellLoad>)> = vec![
        (
            vec![vec![
                setkey("1-"),
                search(),
                Instruction::Write {
                    col: 2,
                    encode: false,
                },
                setkey("-0"),
                search(),
                Instruction::Count,
                Instruction::Index,
            ]],
            vec![CellLoad {
                pe: 1,
                row: 3,
                col: 0,
                value: true,
            }],
        ),
        (
            vec![vec![
                setkey("01"),
                search(),
                Instruction::SetTag,
                setkey("1-"),
                Instruction::Search {
                    acc: true,
                    encode: false,
                },
                Instruction::Count,
            ]],
            vec![CellLoad {
                pe: 3,
                row: 0,
                col: 1,
                value: true,
            }],
        ),
    ];
    let expected: Vec<RunStats> = kernels
        .iter()
        .map(|(streams, loads)| {
            isolated_stats(streams, loads, faults).expect("no endurance limit set")
        })
        .collect();

    let mut arch = ArchConfig::tiny();
    arch.faults = faults;
    let mut cfg = ServeConfig::new(arch);
    cfg.machines = 2;
    let pool = ServePool::new(cfg);
    thread::scope(|s| {
        for t in 0..3u32 {
            let pool = &pool;
            let kernels = &kernels;
            let expected = &expected;
            s.spawn(move || {
                for i in 0..6 {
                    let k = (i + t as usize) % kernels.len();
                    let (streams, loads) = &kernels[k];
                    let out = pool
                        .submit(JobSpec {
                            tenant: t,
                            streams: streams.clone(),
                            loads: loads.clone(),
                        })
                        .unwrap()
                        .wait()
                        .expect("no endurance limit: faults degrade, not latch");
                    assert_eq!(out.stats, expected[k]);
                    assert_eq!(out.batch_size, 1, "fault-seeded jobs never batch");
                }
            });
        }
    });
    let stats = pool.shutdown();
    assert_eq!(stats.completed_jobs, 18);
    assert_eq!(stats.batched_jobs, 0);
    assert_eq!(stats.healthy_machines, stats.machines);
}
