//! Loop summarization over the unrolled op stream.
//!
//! The codegen unrolls every multi-bit operation into per-bit repetition:
//! the same shape of search series, one per bit position, each ending in a
//! single-column write at a constant column stride. This pass (1) detects
//! those repetition trains — the op-stream residue of the source loops —
//! and (2) re-emits adjacent pairs of single-column write blocks in closed
//! form as *one* encoded-pair write:
//!
//! ```text
//!   searches_A … ; Write p ← 1        searches_A … ; Latch
//!   searches_B … ; Write p+1 ← 1  ⇒   searches_B … ; WriteEncoded p
//! ```
//!
//! The two-bit encoder stores `(latch, tags)` — block A's result lands in
//! the pair's hi half, block B's in the lo half — so the output field
//! layout is remapped from `Single{p}, Single{p+1}` to
//! `PairHi{p}, PairLo{p}`: same machine-visible value, one fewer write op
//! and a shorter stream for the downstream trace peephole to fuse.
//!
//! Fusion is only legal when the pair of columns is write-once, never
//! searched, not host-loaded, read out as plain `Single` output bits, and
//! no later `WriteEncoded` observes the clobbered latch without an
//! intervening `Latch`. Untagged rows are covered by the encoding itself:
//! an all-zero `(latch, tags)` row stores the code for `(0, 0)`, exactly
//! what the unfused writes leave behind.

use std::collections::{HashMap, HashSet};

use hyperap_core::field::{Field, Slot};
use hyperap_core::program::{ApOp, Program};
use hyperap_tcam::bit::KeyBit;

/// One `[Search(overwrite), Search(accumulate)*, Write{col, One}]` block.
#[derive(Debug, Clone, Copy)]
struct Block {
    /// Index of the first search.
    start: usize,
    /// Index of the terminating write.
    write: usize,
    /// The written column.
    col: usize,
}

/// Scan the op stream for write blocks.
fn find_blocks(ops: &[ApOp]) -> Vec<Block> {
    let mut blocks = Vec::new();
    let mut i = 0;
    while i < ops.len() {
        if !matches!(
            ops[i],
            ApOp::Search {
                accumulate: false,
                ..
            }
        ) {
            i += 1;
            continue;
        }
        let start = i;
        let mut j = i + 1;
        while matches!(
            ops.get(j),
            Some(ApOp::Search {
                accumulate: true,
                ..
            })
        ) {
            j += 1;
        }
        match ops.get(j) {
            Some(ApOp::Write {
                col,
                value: KeyBit::One,
            }) => {
                blocks.push(Block {
                    start,
                    write: j,
                    col: *col,
                });
                i = j + 1;
            }
            // A new overwrite search restarts the scan from there.
            Some(ApOp::Search { .. }) => i = j,
            _ => i = j + 1,
        }
    }
    blocks
}

/// Count maximal trains of ≥2 stream-consecutive blocks with the same
/// search count and a constant column stride — the summarizable unrolled
/// loops.
fn count_loops(blocks: &[Block]) -> usize {
    let mut loops = 0;
    let mut run = 1usize;
    let mut stride: Option<isize> = None;
    for w in blocks.windows(2) {
        let (a, b) = (w[0], w[1]);
        let d = b.col as isize - a.col as isize;
        let contiguous = b.start == a.write + 1
            && b.write - b.start == a.write - a.start
            && stride.is_none_or(|s| s == d);
        if contiguous {
            run += 1;
            stride = Some(d);
        } else {
            loops += usize::from(run >= 2);
            run = 1;
            stride = None;
        }
    }
    loops + usize::from(run >= 2)
}

/// Summarize `program` in place; returns `(loop trains found, block pairs
/// fused)`. Output fields are remapped when their columns move into pair
/// encoding.
pub fn run(program: &mut Program, inputs: &[Field], outputs: &mut [Field]) -> (usize, usize) {
    let ops = program.ops();
    let blocks = find_blocks(ops);
    let loops = count_loops(&blocks);
    if blocks.len() < 2 {
        return (loops, 0);
    }

    // Global column usage: searched columns, write counts, host-loaded
    // input columns, and how each column is exposed in the outputs.
    let mut searched: HashSet<usize> = HashSet::new();
    let mut writes: HashMap<usize, usize> = HashMap::new();
    for op in ops {
        match op {
            ApOp::Search { key, .. } => searched.extend(key.active_bits().map(|(c, _)| c)),
            ApOp::Write { col, .. } => *writes.entry(*col).or_default() += 1,
            ApOp::WriteEncoded { col } => {
                for c in [*col, *col + 1] {
                    *writes.entry(c).or_default() += 1;
                }
            }
            _ => {}
        }
    }
    let input_cols: HashSet<usize> = inputs
        .iter()
        .flat_map(|f| f.slots.iter())
        .flat_map(|s| s.columns())
        .collect();
    // col → is it exposed *only* as Single{col}? (A pair slot overlapping
    // the column rules it out.)
    let mut out_single: HashMap<usize, bool> = HashMap::new();
    for slot in outputs.iter().flat_map(|f| f.slots.iter()) {
        for c in slot.columns() {
            let plain = matches!(slot, Slot::Single { .. });
            out_single
                .entry(c)
                .and_modify(|v| *v &= plain)
                .or_insert(plain);
        }
    }
    // Latch-clobber guard: the first WriteEncoded after index i must see a
    // fresh Latch, not ours.
    let latch_safe_after = |i: usize| -> bool {
        for op in &ops[i + 1..] {
            match op {
                ApOp::Latch => return true,
                ApOp::WriteEncoded { .. } => return false,
                _ => {}
            }
        }
        true
    };
    let fusable_col = |c: usize| -> bool {
        !searched.contains(&c)
            && writes.get(&c) == Some(&1)
            && !input_cols.contains(&c)
            && out_single.get(&c) == Some(&true)
    };

    // Greedy left-to-right pairing of adjacent blocks over adjacent columns.
    let mut fused: Vec<(Block, Block)> = Vec::new();
    let mut k = 0;
    while k + 1 < blocks.len() {
        let (a, b) = (blocks[k], blocks[k + 1]);
        if b.start == a.write + 1
            && b.col == a.col + 1
            && fusable_col(a.col)
            && fusable_col(b.col)
            && latch_safe_after(b.write)
        {
            fused.push((a, b));
            k += 2;
        } else {
            k += 1;
        }
    }
    if fused.is_empty() {
        return (loops, 0);
    }

    // Rewrite: block A's write becomes a Latch, block B's becomes the
    // encoded-pair write; everything else is copied through.
    let mut replace: HashMap<usize, ApOp> = HashMap::new();
    for (a, b) in &fused {
        replace.insert(a.write, ApOp::Latch);
        replace.insert(b.write, ApOp::WriteEncoded { col: a.col });
    }
    let mut out = Program::new();
    for (i, op) in ops.iter().enumerate() {
        out.push(replace.remove(&i).unwrap_or_else(|| op.clone()));
    }
    *program = out;

    // Remap the output layout: hi half ← latch (block A), lo ← tags (B).
    for (a, b) in &fused {
        for slot in outputs.iter_mut().flat_map(|f| f.slots.iter_mut()) {
            if *slot == (Slot::Single { col: a.col }) {
                *slot = Slot::PairHi { col: a.col };
            } else if *slot == (Slot::Single { col: b.col }) {
                *slot = Slot::PairLo { col: a.col };
            }
        }
    }
    (loops, fused.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyperap_core::machine::HyperPe;
    use hyperap_tcam::key::SearchKey;

    fn single(col: usize) -> Field {
        Field::new(format!("c{col}"), vec![Slot::Single { col }])
    }

    /// Two inverter-style blocks: out bit0 = !a, out bit1 = !b.
    fn two_blocks() -> (Program, Vec<Field>, Vec<Field>) {
        let mut p = Program::new();
        p.search(SearchKey::masked(4).with_bit(0, KeyBit::Zero), false);
        p.write(2, KeyBit::One);
        p.search(SearchKey::masked(4).with_bit(1, KeyBit::Zero), false);
        p.write(3, KeyBit::One);
        let inputs = vec![single(0), single(1)];
        let outputs = vec![Field::new(
            "out",
            vec![Slot::Single { col: 2 }, Slot::Single { col: 3 }],
        )];
        (p, inputs, outputs)
    }

    #[test]
    fn fuses_adjacent_blocks_and_preserves_values() {
        for a in 0..2u64 {
            for b in 0..2u64 {
                let (reference, inputs, outputs) = two_blocks();
                let mut pe = HyperPe::new(1, 4);
                inputs[0].store(&mut pe, 0, a);
                inputs[1].store(&mut pe, 0, b);
                reference.run(&mut pe);
                let want = outputs[0].read(&pe, 0);

                let (mut p, inputs, mut outputs) = two_blocks();
                let (_, fused) = run(&mut p, &inputs, &mut outputs);
                assert_eq!(fused, 1);
                assert_eq!(p.len(), 4);
                assert!(matches!(p.ops()[3], ApOp::WriteEncoded { col: 2 }));
                assert_eq!(outputs[0].slot(0), Slot::PairHi { col: 2 });
                assert_eq!(outputs[0].slot(1), Slot::PairLo { col: 2 });
                let mut pe = HyperPe::new(1, 4);
                inputs[0].store(&mut pe, 0, a);
                inputs[1].store(&mut pe, 0, b);
                p.run(&mut pe);
                assert_eq!(outputs[0].read(&pe, 0), want, "a={a} b={b}");
            }
        }
    }

    #[test]
    fn refuses_searched_columns() {
        let (mut p, inputs, mut outputs) = two_blocks();
        // A later search reads col 2: the pair encoding would change what
        // it matches.
        p.search(SearchKey::masked(4).with_bit(2, KeyBit::One), false);
        p.push(ApOp::Count);
        assert_eq!(run(&mut p, &inputs, &mut outputs).1, 0);
    }

    #[test]
    fn refuses_non_adjacent_columns() {
        let mut p = Program::new();
        p.search(SearchKey::masked(5).with_bit(0, KeyBit::Zero), false);
        p.write(2, KeyBit::One);
        p.search(SearchKey::masked(5).with_bit(1, KeyBit::Zero), false);
        p.write(4, KeyBit::One);
        let inputs = vec![single(0), single(1)];
        let mut outputs = vec![single(2), single(4)];
        assert_eq!(run(&mut p, &inputs, &mut outputs).1, 0);
    }

    #[test]
    fn refuses_when_a_later_encoded_write_reads_the_latch() {
        let (mut p, inputs, _) = two_blocks();
        // A pre-existing encoded write whose latch was set before the
        // blocks: fusing would clobber it.
        p.push(ApOp::WriteEncoded { col: 4 });
        let mut outputs = vec![
            Field::new(
                "out",
                vec![Slot::Single { col: 2 }, Slot::Single { col: 3 }],
            ),
            Field::new("pair", vec![Slot::PairHi { col: 4 }]),
        ];
        let inputs2 = inputs;
        assert_eq!(run(&mut p, &inputs2, &mut outputs).1, 0);
    }

    #[test]
    fn counts_unrolled_loop_trains() {
        let mut p = Program::new();
        for bit in 0..4 {
            p.search(SearchKey::masked(16).with_bit(bit, KeyBit::Zero), false);
            p.write(8 + bit, KeyBit::One);
        }
        let inputs: Vec<Field> = (0..4).map(single).collect();
        let mut outputs: Vec<Field> = (8..12).map(single).collect();
        let (loops, fused) = run(&mut p, &inputs, &mut outputs);
        assert_eq!(loops, 1);
        assert_eq!(fused, 2);
    }
}
